//! # gsnp — facade crate
//!
//! Re-exports the full GSNP reproduction: the paper's contribution
//! ([`core`]), the SOAPsnp baseline ([`baseline`]), and the substrates it
//! runs on (simulated GPU, sequence I/O, sorting networks, compression).
//!
//! See the repository README for a tour and `DESIGN.md` for the
//! paper-to-module map.

pub use compress;
pub use gpu_sim;
pub use gsnp_core as core;
pub use seqio;
pub use soapsnp as baseline;
pub use sortnet;
