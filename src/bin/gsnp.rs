//! `gsnp` — command-line SNP caller (the shape of the tool the paper
//! released as a SOAPsnp drop-in).
//!
//! ```text
//! gsnp synth   <out_dir> [--sites N] [--depth X] [--seed S]
//!              [--samples N] [--shared-rate X]
//! gsnp call    <alignments.soap> <reference.fa> <priors.txt> <out.gsnp>
//!              [--window N] [--devices N] [--batch N] [--backend B] [--cpu]
//!              [--contracts] [--text <out.txt>] [--trace <out.json>]
//!              [--metrics <out.prom>] [--auto-threshold N]
//!              [--progress] [--quiet|-q] [--journal <run.jsonl>]
//!              [--stats-addr HOST:PORT] [--stats-hold MS]
//! gsnp call    --cohort <cohort.tsv> <reference.fa> <priors.txt> <out_dir>
//!              [--min-quality Q] [--min-depth D] [--bad-sites <file>]
//!              [--bad-site-threshold N] [...call flags]
//! gsnp profile [--sites N] [--depth X] [--devices N] [--pipeline-depth N]
//!              [--batch N] [--backend B] [--seed S] [--samples N]
//!              [--auto-threshold N] [--trace <out.json>]
//! gsnp analyze [--sites N] [--window N] [--seed S]
//! gsnp decode  <in.gsnp> [<out.txt>]
//! gsnp stats   <in.gsnp> [--format prom]
//! gsnp report  <run.jsonl>
//! gsnp validate-trace <trace.json>
//! ```
//!
//! `synth --samples N` writes a *cohort*: per-sample alignment files over
//! one shared reference plus a `cohort.tsv` manifest; `call --cohort`
//! consumes the manifest and calls all samples in one run, paying the
//! reference-shaped work (score-table upload, window scan) once. With
//! `--bad-sites <file>` the run both *applies* the persistent bad-site
//! list and *feeds back* its own noisy sites into the file for the next
//! run.
//!
//! Live introspection for long `call` runs: `--progress` prints a
//! heartbeat line to stderr every half second (windows done/total,
//! Msites/s, ETA, per-lane utilization); `--stats-addr` serves the same
//! snapshot over HTTP (`/health`, `/progress`, `/metrics` in Prometheus
//! text format) while the run executes; `--journal` appends a structured
//! JSONL run journal — manifest, per-batch lifecycle, device and gate
//! tallies, end-of-run latency digests — that `gsnp report` validates
//! and renders after the fact. Diagnostics go to stderr (suppressed by
//! `--quiet`); stdout stays clean for piped data.
//!
//! `--trace` writes a Chrome trace-event file loadable in Perfetto
//! (`ui.perfetto.dev`): one process per simulated device (kernel,
//! transfer, pool and sanitizer tracks on the paced device clock) plus a
//! `pipeline` process with one host-clock track per stage and device
//! lane. `profile` is the paper's Table III/IV analogue on a synthetic
//! workload; `validate-trace` schema-checks an exported file.

use std::fs;
use std::io::{BufReader, Write};
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gsnp::compress::column::WindowStream;
use gsnp::core::journal;
use gsnp::core::metrics::cohort_metrics;
use gsnp::core::pipeline::{ComponentTimes, PipelineStats};
use gsnp::core::{
    call_metrics, BadSiteList, CohortCallConfig, CohortPipeline, GsnpConfig, GsnpCpuPipeline,
    GsnpPipeline, Journal, ProgressTracker, QualityGates, SampleReads, StatsServer,
};
use gsnp::gpu_sim::{
    AutoPolicy, BackendChoice, MetricKind, MetricsSnapshot, TraceRecorder, TraceSnapshot,
};
use gsnp::seqio::fasta::Reference;
use gsnp::seqio::prior::PriorMap;
use gsnp::seqio::soap::{write_alignments, AlignmentReader};
use gsnp::seqio::synth::{Cohort, CohortConfig, Dataset, SynthConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("synth") => cmd_synth(&args[1..]),
        Some("call") => cmd_call(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("decode") => cmd_decode(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("validate-trace") => cmd_validate_trace(&args[1..]),
        _ => {
            eprintln!(
                "usage: gsnp <synth|call|profile|analyze|decode|stats|report|validate-trace> ...\n\
                 synth  <out_dir> [--sites N] [--depth X] [--seed S] [--samples N] [--shared-rate X]\n\
                 call   <alignments.soap> <reference.fa> <priors.txt> <out.gsnp> [--window N] [--devices N] [--batch N] [--backend sim|native|auto] [--auto-threshold N] [--cpu] [--contracts] [--text out.txt] [--trace out.json] [--metrics out.prom] [--progress] [--quiet|-q] [--journal run.jsonl] [--stats-addr HOST:PORT] [--stats-hold MS]\n\
                 call   --cohort <cohort.tsv> <reference.fa> <priors.txt> <out_dir> [--min-quality Q] [--min-depth D] [--bad-sites file] [--bad-site-threshold N] [...call flags]\n\
                 profile [--sites N] [--depth X] [--devices N] [--pipeline-depth N] [--batch N] [--backend sim|auto] [--auto-threshold N] [--seed S] [--samples N] [--trace out.json]\n\
                 analyze [--sites N] [--window N] [--seed S]\n\
                 decode <in.gsnp> [<out.txt>]\n\
                 stats  <in.gsnp> [--format prom]\n\
                 report <run.jsonl>\n\
                 validate-trace <trace.json>"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gsnp: error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn backend_flag(args: &[String]) -> Result<BackendChoice, Box<dyn std::error::Error>> {
    match flag_value(args, "--backend") {
        None => Ok(BackendChoice::Sim),
        Some(s) => BackendChoice::parse(s)
            .ok_or_else(|| format!("unknown backend {s:?} (expected sim, native, or auto)").into()),
    }
}

/// Auto-dispatch policy from `--auto-threshold` (minimum grid blocks for
/// the native backend; smaller launches stay on the simulator where the
/// per-launch fixed cost is lower).
fn auto_flag(args: &[String]) -> Result<AutoPolicy, Box<dyn std::error::Error>> {
    let mut policy = AutoPolicy::default();
    if let Some(v) = flag_value(args, "--auto-threshold") {
        policy.native_min_blocks = v.parse()?;
    }
    Ok(policy)
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a == "-q" {
            continue;
        }
        if a.starts_with("--") {
            // value-less flags don't consume the next arg
            skip = !matches!(
                a.as_str(),
                "--cpu" | "--contracts" | "--progress" | "--quiet"
            );
            continue;
        }
        out.push(a);
    }
    out
}

/// Live-introspection plumbing shared by `call` and `call --cohort`:
/// the progress tracker is always created (it feeds `PipelineStats::
/// hists` and the end-of-run journal digest); the heartbeat thread,
/// HTTP endpoint and journal are each opt-in flags.
struct Introspection {
    tracker: Arc<ProgressTracker>,
    journal: Option<Arc<Journal>>,
    server: Option<StatsServer>,
    heartbeat: Option<(Arc<AtomicBool>, std::thread::JoinHandle<()>)>,
    /// `--stats-hold`: keep the endpoint answering this long after the
    /// run finishes, so a scraper can catch the final counters.
    hold: Duration,
    quiet: bool,
}

impl Introspection {
    fn from_args(args: &[String]) -> Result<Self, Box<dyn std::error::Error>> {
        let quiet = args.iter().any(|a| a == "--quiet" || a == "-q");
        let tracker = Arc::new(ProgressTracker::new());
        let journal = match flag_value(args, "--journal") {
            Some(p) => Some(Arc::new(
                Journal::create(Path::new(p)).map_err(|e| format!("--journal {p}: {e}"))?,
            )),
            None => None,
        };
        let server = match flag_value(args, "--stats-addr") {
            Some(addr) => {
                let s = StatsServer::start(addr, Arc::clone(&tracker))
                    .map_err(|e| format!("--stats-addr {addr}: {e}"))?;
                if !quiet {
                    eprintln!(
                        "gsnp: stats endpoint on http://{}/ (routes: /health /progress /metrics)",
                        s.addr()
                    );
                }
                Some(s)
            }
            None => None,
        };
        let hold =
            Duration::from_millis(flag_value(args, "--stats-hold").map_or(Ok(0), str::parse)?);
        let heartbeat = match args.iter().any(|a| a == "--progress") {
            false => None,
            true => {
                let stop = Arc::new(AtomicBool::new(false));
                let (t, s) = (Arc::clone(&tracker), Arc::clone(&stop));
                let handle = std::thread::Builder::new()
                    .name("gsnp-progress".into())
                    .spawn(move || {
                        while !s.load(Ordering::Relaxed) {
                            std::thread::sleep(Duration::from_millis(500));
                            eprintln!("{}", t.progress().render_line());
                        }
                    })?;
                Some((stop, handle))
            }
        };
        Ok(Introspection {
            tracker,
            journal,
            server,
            heartbeat,
            hold,
            quiet,
        })
    }

    /// Journal `run_start`: schema, crate version, subcommand, the
    /// reproducibility-relevant config fields, and the input manifest
    /// (path, size, FNV-1a 64 checksum per file).
    fn journal_run_start(&self, cmd: &str, cfg: &GsnpConfig, inputs: &[&str]) -> CliResult {
        let Some(j) = &self.journal else {
            return Ok(());
        };
        let mut manifest = String::new();
        for (i, path) in inputs.iter().enumerate() {
            let bytes = fs::read(path).map_err(|e| format!("{path}: {e}"))?;
            if i > 0 {
                manifest.push(',');
            }
            manifest.push_str(&format!(
                "{{\"path\":\"{}\",\"bytes\":{},\"fnv64\":\"{:016x}\"}}",
                journal::json_escape(path),
                bytes.len(),
                journal::fnv64(&bytes),
            ));
        }
        j.event(
            "run_start",
            &format!(
                "\"schema\":{},\"version\":\"{}\",\"cmd\":\"{}\",\
                 \"config\":{{\"window_size\":{},\"num_devices\":{},\"launch_batch\":{},\
                 \"pipeline_depth\":{},\"backend\":\"{}\",\"contracts\":{}}},\
                 \"inputs\":[{}]",
                journal::SCHEMA_VERSION,
                env!("CARGO_PKG_VERSION"),
                cmd,
                cfg.window_size,
                cfg.num_devices,
                cfg.launch_batch,
                cfg.pipeline_depth,
                cfg.backend.name(),
                cfg.contracts,
                manifest,
            ),
        );
        Ok(())
    }

    /// End of run: flip the tracker to done, stop the heartbeat (its
    /// final line reports 100%), write the journal `run_end` summary
    /// with the latency digests, hold the endpoint for late scrapers,
    /// then tear it down.
    fn finish(self, stats: &PipelineStats) -> CliResult {
        self.tracker.finish();
        if let Some((stop, handle)) = self.heartbeat {
            stop.store(true, Ordering::Relaxed);
            handle
                .join()
                .map_err(|_| "progress heartbeat thread panicked")?;
            eprintln!("{}", self.tracker.progress().render_line());
        }
        let wall = self.tracker.elapsed_seconds();
        if let Some(j) = &self.journal {
            let hists: Vec<String> = stats
                .hists
                .digest_rows()
                .iter()
                .map(|(name, d)| journal::digest_json(name, d))
                .collect();
            j.event(
                "run_end",
                &format!(
                    "\"windows\":{},\"sites\":{},\"snp_calls\":{},\"samples\":{},\
                     \"wall_seconds\":{:.6},\"sites_per_second\":{:.3},\"hists\":[{}]",
                    stats.windows,
                    stats.num_sites,
                    stats.snp_count,
                    stats.samples,
                    wall,
                    stats.num_sites as f64 / wall.max(1e-9),
                    hists.join(","),
                ),
            );
            j.flush();
            if j.take_error() {
                return Err("journal write failed (disk full or file removed?)".into());
            }
        }
        if let Some(server) = self.server {
            if !self.hold.is_zero() {
                if !self.quiet {
                    eprintln!(
                        "gsnp: holding stats endpoint {:.1}s (--stats-hold)",
                        self.hold.as_secs_f64()
                    );
                }
                std::thread::sleep(self.hold);
            }
            server.shutdown();
        }
        Ok(())
    }
}

fn cmd_synth(args: &[String]) -> CliResult {
    let pos = positional(args);
    let dir = Path::new(pos.first().ok_or("synth requires an output directory")?);
    fs::create_dir_all(dir)?;
    let mut cfg = SynthConfig::tiny(flag_value(args, "--seed").map_or(Ok(1), str::parse)?);
    cfg.chr_name = "chrS".into();
    cfg.num_sites = flag_value(args, "--sites").map_or(Ok(50_000), str::parse)?;
    cfg.depth = flag_value(args, "--depth").map_or(Ok(10.0), str::parse)?;
    cfg.read_len = 100;

    let num_samples: usize = flag_value(args, "--samples").map_or(Ok(0), str::parse)?;
    if num_samples > 0 {
        let shared_rate = flag_value(args, "--shared-rate").map_or(Ok(0.6), str::parse)?;
        let c = Cohort::generate(CohortConfig {
            base: cfg,
            num_samples,
            shared_rate,
        });
        let mut f = fs::File::create(dir.join("reference.fa"))?;
        c.reference.write_fasta(&mut f)?;
        let mut f = fs::File::create(dir.join("priors.txt"))?;
        c.priors.write(&c.config.base.chr_name, &mut f)?;
        let mut manifest = String::new();
        let mut total_reads = 0usize;
        for s in &c.samples {
            let reads_file = format!("{}.soap", s.name);
            let mut f = fs::File::create(dir.join(&reads_file))?;
            write_alignments(&s.reads, &mut f)?;
            let mut f = fs::File::create(dir.join(format!("truth.{}.txt", s.name)))?;
            for t in &s.truth {
                writeln!(
                    f,
                    "{}\t{}\t{}{}",
                    c.config.base.chr_name,
                    t.pos + 1,
                    t.alleles.0.to_ascii() as char,
                    t.alleles.1.to_ascii() as char
                )?;
            }
            manifest.push_str(&format!("{}\t{}\n", s.name, reads_file));
            total_reads += s.reads.len();
        }
        fs::write(dir.join("cohort.tsv"), manifest)?;
        println!(
            "wrote cohort of {} samples ({} reads, {} shared sites of {}) to {}",
            num_samples,
            total_reads,
            c.sites.iter().filter(|s| s.owner.is_none()).count(),
            c.sites.len(),
            dir.display()
        );
        return Ok(());
    }
    let d = Dataset::generate(cfg);

    let mut f = fs::File::create(dir.join("reads.soap"))?;
    write_alignments(&d.reads, &mut f)?;
    let mut f = fs::File::create(dir.join("reference.fa"))?;
    d.reference.write_fasta(&mut f)?;
    let mut f = fs::File::create(dir.join("priors.txt"))?;
    d.priors.write(&d.config.chr_name, &mut f)?;
    let mut f = fs::File::create(dir.join("truth.txt"))?;
    for t in &d.truth {
        writeln!(
            f,
            "{}\t{}\t{}{}",
            d.config.chr_name,
            t.pos + 1,
            t.alleles.0.to_ascii() as char,
            t.alleles.1.to_ascii() as char
        )?;
    }
    println!(
        "wrote {} reads over {} sites ({} planted SNPs) to {}",
        d.reads.len(),
        d.config.num_sites,
        d.truth.len(),
        dir.display()
    );
    Ok(())
}

fn cmd_call(args: &[String]) -> CliResult {
    if flag_value(args, "--cohort").is_some() {
        return cmd_call_cohort(args);
    }
    let pos = positional(args);
    let [aln, fa, prior, out] = pos.as_slice() else {
        return Err("call requires <alignments> <reference> <priors> <out.gsnp>".into());
    };
    let reference = Reference::read_fasta(BufReader::new(open(fa)?))?;
    let priors = PriorMap::read(BufReader::new(open(prior)?))?;
    let reads: Vec<_> =
        AlignmentReader::new(BufReader::new(open(aln)?)).collect::<Result<_, _>>()?;

    let cpu = args.iter().any(|a| a == "--cpu");
    let backend = backend_flag(args)?;
    let recorder = match flag_value(args, "--trace") {
        Some(_) if cpu => return Err("--trace requires the device pipeline (drop --cpu)".into()),
        Some(_) if backend == BackendChoice::Native => {
            return Err(
                "--backend native cannot trace (kernel counters are sim-only); \
                 use --backend sim or auto"
                    .into(),
            )
        }
        Some(_) => Some(Arc::new(TraceRecorder::new(
            gsnp::gpu_sim::trace::DEFAULT_CAPACITY,
        ))),
        None => None,
    };
    let contracts = args.iter().any(|a| a == "--contracts");
    let intro = Introspection::from_args(args)?;
    let cfg = GsnpConfig {
        window_size: flag_value(args, "--window").map_or(Ok(256_000), str::parse)?,
        num_devices: flag_value(args, "--devices").map_or(Ok(1), str::parse)?,
        launch_batch: flag_value(args, "--batch").map_or(Ok(0), str::parse)?,
        contracts,
        trace: recorder.clone(),
        backend,
        auto: auto_flag(args)?,
        progress: Some(Arc::clone(&intro.tracker)),
        journal: intro.journal.clone(),
        ..Default::default()
    };
    intro.journal_run_start("call", &cfg, &[aln, fa, prior])?;
    let result = if cpu {
        GsnpCpuPipeline::new(cfg).run(&reads, &reference, &priors)
    } else {
        GsnpPipeline::new(cfg).run(&reads, &reference, &priors)
    };
    fs::write(out, &result.compressed).map_err(|e| format!("{out}: {e}"))?;
    if let Some(text_path) = flag_value(args, "--text") {
        let mut f = fs::File::create(text_path).map_err(|e| format!("{text_path}: {e}"))?;
        for t in &result.tables {
            t.write_text(&mut f)?;
        }
    }
    if let (Some(rec), Some(path)) = (&recorder, flag_value(args, "--trace")) {
        write_trace(rec, path, intro.quiet)?;
    }
    if let Some(path) = flag_value(args, "--metrics") {
        fs::write(path, call_metrics(&result).render_text()).map_err(|e| format!("{path}: {e}"))?;
        if !intro.quiet {
            eprintln!("wrote metrics to {path}");
        }
    }
    if contracts && !intro.quiet {
        let t = result.stats.contracts.totals();
        eprintln!(
            "contracts: {} verified, {} refuted, {} assumed across {} kernels",
            t.verified,
            t.refuted,
            t.assumed,
            result.stats.contracts.per_kernel.len()
        );
    }
    let quiet = intro.quiet;
    intro.finish(&result.stats)?;
    if !quiet {
        eprintln!(
            "{} sites in {} windows, {} variants → {} ({} bytes)",
            result.stats.num_sites,
            result.stats.windows,
            result.stats.snp_count,
            out,
            result.compressed.len()
        );
    }
    Ok(())
}

/// `gsnp call --cohort`: call every sample of a manifest in one cohort
/// run. The manifest is TSV (`sample<TAB>reads-file`, paths relative to
/// the manifest); outputs land in `<out_dir>/<sample>.gsnp`, byte-
/// identical to what per-sample single runs sharing the cohort's pooled
/// calibration would write.
fn cmd_call_cohort(args: &[String]) -> CliResult {
    let manifest_path = flag_value(args, "--cohort").expect("checked by caller");
    if args.iter().any(|a| a == "--cpu") {
        return Err("--cohort uses the device pipeline (drop --cpu)".into());
    }
    let pos = positional(args);
    let [fa, prior, out_dir] = pos.as_slice() else {
        return Err("call --cohort requires <cohort.tsv> <reference> <priors> <out_dir>".into());
    };
    let reference = Reference::read_fasta(BufReader::new(open(fa)?))?;
    let priors = PriorMap::read(BufReader::new(open(prior)?))?;

    let manifest_dir = Path::new(manifest_path)
        .parent()
        .unwrap_or_else(|| Path::new("."));
    let mut names = Vec::new();
    let mut sample_reads = Vec::new();
    for line in fs::read_to_string(manifest_path)
        .map_err(|e| format!("{manifest_path}: {e}"))?
        .lines()
    {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, reads_file) = line
            .split_once('\t')
            .ok_or_else(|| format!("manifest line {line:?}: expected sample<TAB>reads-file"))?;
        let reads_path = manifest_dir.join(reads_file);
        let reads: Vec<_> = AlignmentReader::new(BufReader::new(
            fs::File::open(&reads_path).map_err(|e| format!("{}: {e}", reads_path.display()))?,
        ))
        .collect::<Result<_, _>>()?;
        names.push(name.to_string());
        sample_reads.push(reads);
    }
    if names.is_empty() {
        return Err("cohort manifest lists no samples".into());
    }
    let samples: Vec<SampleReads<'_>> = names
        .iter()
        .zip(&sample_reads)
        .map(|(name, reads)| SampleReads { name, reads })
        .collect();

    let backend = backend_flag(args)?;
    let recorder = match flag_value(args, "--trace") {
        Some(_) if backend == BackendChoice::Native => {
            return Err(
                "--backend native cannot trace (kernel counters are sim-only); \
                 use --backend sim or auto"
                    .into(),
            )
        }
        Some(_) => Some(Arc::new(TraceRecorder::new(
            gsnp::gpu_sim::trace::DEFAULT_CAPACITY,
        ))),
        None => None,
    };
    let contracts = args.iter().any(|a| a == "--contracts");
    let intro = Introspection::from_args(args)?;
    let base = GsnpConfig {
        window_size: flag_value(args, "--window").map_or(Ok(256_000), str::parse)?,
        num_devices: flag_value(args, "--devices").map_or(Ok(1), str::parse)?,
        launch_batch: flag_value(args, "--batch").map_or(Ok(0), str::parse)?,
        contracts,
        trace: recorder.clone(),
        backend,
        auto: auto_flag(args)?,
        progress: Some(Arc::clone(&intro.tracker)),
        journal: intro.journal.clone(),
        ..Default::default()
    };
    intro.journal_run_start("call --cohort", &base, &[manifest_path, fa, prior])?;
    let gates = QualityGates {
        min_quality: flag_value(args, "--min-quality").map_or(Ok(0), str::parse)?,
        min_depth: flag_value(args, "--min-depth").map_or(Ok(0), str::parse)?,
    };
    let mut bad_sites = match flag_value(args, "--bad-sites") {
        Some(p) if Path::new(p).exists() => BadSiteList::parse(&fs::read_to_string(p)?)?,
        _ => BadSiteList::new(),
    };
    if let Some(t) = flag_value(args, "--bad-site-threshold") {
        bad_sites.threshold = t.parse()?;
    }

    let result = CohortPipeline::new(CohortCallConfig {
        base,
        gates,
        bad_sites,
    })
    .run(&samples, &reference, &priors);

    fs::create_dir_all(out_dir)?;
    let dir = Path::new(out_dir.as_str());
    for lane in &result.samples {
        fs::write(dir.join(format!("{}.gsnp", lane.name)), &lane.compressed)?;
        if !intro.quiet {
            eprintln!(
                "  {}: {} variants, {} gated, {} forced → {} bytes",
                lane.name,
                lane.snp_count,
                lane.gated_nocalls,
                lane.forced_nocalls,
                lane.compressed.len()
            );
        }
    }
    if let (Some(rec), Some(path)) = (&recorder, flag_value(args, "--trace")) {
        write_trace(rec, path, intro.quiet)?;
    }
    if let Some(path) = flag_value(args, "--metrics") {
        fs::write(path, cohort_metrics(&result).render_text())
            .map_err(|e| format!("{path}: {e}"))?;
        if !intro.quiet {
            eprintln!("wrote metrics to {path}");
        }
    }
    // Persistent feedback: sites gated in at least half the covered
    // samples earn a strike; the rewritten file downweights them next run.
    if let Some(path) = flag_value(args, "--bad-sites") {
        let mut list = match Path::new(path).exists() {
            true => BadSiteList::parse(&fs::read_to_string(path)?)?,
            false => BadSiteList::new(),
        };
        list.absorb(&result.noisy_sites);
        fs::write(path, list.serialize()).map_err(|e| format!("{path}: {e}"))?;
        if !intro.quiet {
            eprintln!(
                "bad-site feedback: {} noisy sites this run, {} tracked in {path}",
                result.noisy_sites.len(),
                list.len()
            );
        }
    }
    let quiet = intro.quiet;
    intro.finish(&result.stats)?;
    let n = result.samples.len() as u64;
    if !quiet {
        eprintln!(
            "cohort of {}: {} sites x {} samples in {} windows, one table upload per device ({} bytes x{})",
            n,
            result.stats.num_sites / n.max(1),
            n,
            result.stats.windows / n.max(1),
            result.stats.table_bytes,
            result.stats.ledgers.len()
        );
    }
    Ok(())
}

/// Open a file for reading with the path baked into any error (bare
/// `io::Error` strings like "No such file or directory" are useless
/// once the shell line has scrolled away).
fn open(path: &str) -> Result<fs::File, String> {
    fs::File::open(path).map_err(|e| format!("{path}: {e}"))
}

/// Snapshot a recorder and write the Chrome trace-event JSON.
fn write_trace(rec: &Arc<TraceRecorder>, path: &str, quiet: bool) -> CliResult {
    let snap = rec.snapshot();
    fs::write(path, snap.to_chrome_json()).map_err(|e| format!("{path}: {e}"))?;
    if snap.dropped > 0 {
        eprintln!(
            "gsnp: warning: trace ring overflowed, {} oldest events dropped",
            snap.dropped
        );
    }
    if !quiet {
        eprintln!(
            "wrote {} trace events on {} tracks to {path} (load at ui.perfetto.dev)",
            snap.events.len(),
            snap.tracks.len()
        );
    }
    Ok(())
}

/// `gsnp report <run.jsonl>`: parse a structured run journal, check its
/// invariants, and render the human-readable post-run report from the
/// journal alone — no other run artifact needed. The report goes to
/// stdout (it IS the data); an invalid journal exits nonzero.
fn cmd_report(args: &[String]) -> CliResult {
    let pos = positional(args);
    let input = pos.first().ok_or("report requires a journal file")?;
    let text = fs::read_to_string(input.as_str()).map_err(|e| format!("{input}: {e}"))?;
    let report =
        journal::render_report(&text).map_err(|e| format!("{input}: invalid journal: {e}"))?;
    print!("{report}");
    Ok(())
}

/// `gsnp profile`: run the traced pipeline on an in-memory synthetic
/// workload and print the per-stage / per-kernel attribution tables (the
/// paper's Tables III and IV, derived from the trace instead of ad-hoc
/// timers).
fn cmd_profile(args: &[String]) -> CliResult {
    let mut synth = SynthConfig::tiny(flag_value(args, "--seed").map_or(Ok(1), str::parse)?);
    synth.chr_name = "chrS".into();
    synth.num_sites = flag_value(args, "--sites").map_or(Ok(50_000), str::parse)?;
    synth.depth = flag_value(args, "--depth").map_or(Ok(10.0), str::parse)?;
    synth.read_len = 100;

    let backend = backend_flag(args)?;
    if backend == BackendChoice::Native {
        return Err("profile always traces, and kernel counters are sim-only; \
             use --backend sim or auto (auto dispatches all-sim under trace)"
            .into());
    }
    let recorder = Arc::new(TraceRecorder::new(gsnp::gpu_sim::trace::DEFAULT_CAPACITY));
    let cfg = GsnpConfig {
        window_size: flag_value(args, "--window").map_or(Ok(16_000), str::parse)?,
        num_devices: flag_value(args, "--devices").map_or(Ok(1), str::parse)?,
        pipeline_depth: flag_value(args, "--pipeline-depth").map_or(Ok(2), str::parse)?,
        launch_batch: flag_value(args, "--batch").map_or(Ok(0), str::parse)?,
        trace: Some(Arc::clone(&recorder)),
        backend,
        auto: auto_flag(args)?,
        ..Default::default()
    };
    let num_samples: usize = flag_value(args, "--samples").map_or(Ok(0), str::parse)?;
    if num_samples > 0 {
        // Cohort profile: one run over N synthetic samples sharing the
        // reference; the per-stage tables then show the amortized shape.
        let c = Cohort::generate(CohortConfig {
            base: synth,
            num_samples,
            shared_rate: 0.6,
        });
        let samples: Vec<SampleReads<'_>> = c
            .samples
            .iter()
            .map(|s| SampleReads {
                name: &s.name,
                reads: &s.reads,
            })
            .collect();
        let result = CohortPipeline::new(CohortCallConfig {
            base: cfg,
            ..Default::default()
        })
        .run(&samples, &c.reference, &c.priors);
        let snap = recorder.snapshot();
        print_profile(&result.stats, &result.times, &result.wall, &snap);
        if let Some(path) = flag_value(args, "--trace") {
            write_trace(&recorder, path, false)?;
        }
        return Ok(());
    }
    let d = Dataset::generate(synth);
    let result = GsnpPipeline::new(cfg).run(&d.reads, &d.reference, &d.priors);
    let snap = recorder.snapshot();
    print_profile(&result.stats, &result.times, &result.wall, &snap);
    if let Some(path) = flag_value(args, "--trace") {
        write_trace(&recorder, path, false)?;
    }
    Ok(())
}

fn print_profile(
    stats: &PipelineStats,
    times: &ComponentTimes,
    wall: &ComponentTimes,
    snap: &TraceSnapshot,
) {
    println!(
        "profile: {} samples, {} sites, {} obs, {} windows, {} devices, depth {}",
        stats.samples,
        stats.num_sites,
        stats.num_obs,
        stats.windows,
        stats.ledgers.len(),
        stats.overlap.depth
    );

    // Table III analogue: per-component time in both clock domains.
    println!("\nper-stage attribution (seconds)");
    println!(
        "  {:<16} {:>12} {:>12}",
        "component", "device-model", "host-wall"
    );
    let t = times;
    let w = wall;
    for (name, tv, wv) in [
        ("cal_p", t.cal_p, w.cal_p),
        ("read_site", t.read_site, w.read_site),
        ("counting", t.counting, w.counting),
        ("likelihood_sort", t.likelihood_sort, w.likelihood_sort),
        ("likelihood_comp", t.likelihood_comp, w.likelihood_comp),
        ("posterior", t.posterior, w.posterior),
        ("output", t.output, w.output),
        ("recycle", t.recycle, w.recycle),
    ] {
        println!("  {name:<16} {tv:>12.6} {wv:>12.6}");
    }
    println!("  {:<16} {:>12.6} {:>12.6}", "total", t.total(), w.total());

    // Window-loop overlap: busy vs stall per stage and device lane.
    let ov = &stats.overlap;
    println!("\nwindow-loop stages (seconds; wall {:.6})", ov.wall);
    println!(
        "  {:<12} {:>10} {:>10} {:>10}",
        "stage", "busy", "stall_in", "stall_out"
    );
    for (name, st) in [
        ("read", &ov.read),
        ("device", &ov.device),
        ("posterior", &ov.posterior),
        ("output", &ov.output),
    ] {
        println!(
            "  {:<12} {:>10.6} {:>10.6} {:>10.6}",
            name, st.busy, st.stall_in, st.stall_out
        );
    }
    for (i, lane) in ov.devices.iter().enumerate() {
        println!(
            "  {:<12} {:>10.6} {:>10.6} {:>10.6}  ({} windows, {} steals)",
            format!("lane{i}"),
            lane.stage.busy,
            lane.stage.stall_in,
            lane.stage.stall_out,
            lane.windows,
            lane.steals
        );
    }

    // Launch-batching figure of merit: launches per site and the fixed
    // overhead the mega-batch amortizes, straight from the group ledger.
    if !stats.kernel_launches.is_empty() {
        let sites = stats.num_sites.max(1) as f64;
        println!("\nper-kernel launch tallies (group sum)");
        println!(
            "  {:<24} {:>8} {:>8} {:>14} {:>14} {:>10}",
            "kernel", "launches", "backend", "launches/site", "overhead-sec", "wall-sec"
        );
        let mut launches = 0u64;
        let mut overhead = 0.0;
        let mut wall = 0.0;
        for tally in &stats.kernel_launches {
            launches += tally.launches;
            overhead += tally.overhead_seconds;
            wall += tally.wall_seconds;
            let backend = if tally.native_launches == 0 {
                "sim"
            } else if tally.native_launches == tally.launches {
                "native"
            } else {
                "mixed"
            };
            println!(
                "  {:<24} {:>8} {:>8} {:>14.6} {:>14.6} {:>10.4}",
                tally.name,
                tally.launches,
                backend,
                tally.launches as f64 / sites,
                tally.overhead_seconds,
                tally.wall_seconds
            );
        }
        println!(
            "  {:<24} {:>8} {:>8} {:>14.6} {:>14.6} {:>10.4}",
            "total",
            launches,
            "",
            launches as f64 / sites,
            overhead,
            wall
        );
        // Backend dispatch totals (Auto decisions included).
        let mut backend = gsnp::gpu_sim::BackendTallies::default();
        for led in &stats.ledgers {
            backend.sum(&led.backend);
        }
        println!(
            "  backend launches: {} sim, {} native (auto decisions: {} sim, {} native)",
            backend.sim, backend.native, backend.auto_sim, backend.auto_native
        );
    }

    // Latency quantile digests from the log-bucketed histograms the
    // tracker records on the hot path (estimates are bucket upper
    // bounds — within 2x of the true quantile, exact for max).
    let rows = stats.hists.digest_rows();
    if rows.iter().any(|(_, d)| d.count > 0) {
        println!("\nlatency quantiles (host-wall seconds; log-bucketed upper bounds)");
        println!(
            "  {:<22} {:>8} {:>12} {:>12} {:>12} {:>12}",
            "series", "count", "p50", "p95", "p99", "max"
        );
        for (name, d) in &rows {
            if d.count == 0 {
                continue;
            }
            println!(
                "  {:<22} {:>8} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
                name, d.count, d.p50, d.p95, d.p99, d.max
            );
        }
    }

    // Table IV analogue: per-kernel breakdown from the trace.
    let profiles = snap.kernel_profiles();
    if !profiles.is_empty() {
        println!("\nper-kernel attribution (from trace; modelled seconds)");
        println!(
            "  {:<24} {:>8} {:>10} {:>10} {:>10} {:>10} {:>12}",
            "kernel", "launches", "sim", "compute", "memory", "transfer", "g_accesses"
        );
        for p in &profiles {
            println!(
                "  {:<24} {:>8} {:>10.6} {:>10.6} {:>10.6} {:>10.6} {:>12}",
                p.name,
                p.launches,
                p.sim_time,
                p.compute,
                p.memory,
                p.transfer,
                p.counters.g_load() + p.counters.g_store()
            );
        }
    }
    if snap.dropped > 0 {
        println!(
            "\n(note: ring overflowed — {} oldest events not in the tables above)",
            snap.dropped
        );
    }
}

/// `gsnp analyze`: statically prove every paper kernel's access contract.
///
/// Runs a synthetic workload through the device pipeline once per
/// `likelihood_comp` variant with contract checking on — covering the
/// counting-fused likelihood kernel, the multipass-sort batch kernels,
/// and the scan/RLE/DICT compression chain — plus the Fig. 5 dense
/// strawman kernel directly, then prints the merged per-kernel proof
/// table. Exits nonzero if any launch was refuted or ran unverified
/// (`assumed`), so CI can gate on the proof.
fn cmd_analyze(args: &[String]) -> CliResult {
    use gsnp::core::counting::{base_occ_index, DenseWindow, SparseWindow};
    use gsnp::core::likelihood::{
        likelihood_dense_gpu, upload_dense_transposed, DeviceTables, KernelVariant,
    };
    use gsnp::core::tables::{LogTable, NewPMatrix, PMatrix};
    use gsnp::core::ModelParams;
    use gsnp::gpu_sim::{ContractReport, Device};
    use gsnp::seqio::window::WindowReader;

    let mut synth = SynthConfig::tiny(flag_value(args, "--seed").map_or(Ok(1), str::parse)?);
    synth.chr_name = "chrS".into();
    synth.num_sites = flag_value(args, "--sites").map_or(Ok(10_000), str::parse)?;
    synth.read_len = 100;
    let d = Dataset::generate(synth);
    let window = flag_value(args, "--window").map_or(Ok(4_000), str::parse)?;

    let mut report = ContractReport::default();
    for variant in KernelVariant::ALL {
        let cfg = GsnpConfig {
            window_size: window,
            variant,
            contracts: true,
            ..Default::default()
        };
        let out = GsnpPipeline::new(cfg).run(&d.reads, &d.reference, &d.priors);
        report.merge(&out.stats.contracts);
    }

    // The dense strawman runs outside the pipeline; prove it directly.
    let p = PMatrix::calibrate(&d.reads, &d.reference, &ModelParams::default());
    let np = NewPMatrix::precompute(&p);
    let lt = LogTable::new();
    let mut wr = WindowReader::new(d.reads.iter().cloned().map(Ok), d.config.num_sites, 64);
    if let Ok(Some(w)) = wr.next_window() {
        let sw = SparseWindow::count(&w);
        let sites = sw.num_sites().min(16);
        let mut dense = DenseWindow::alloc(sites);
        for site in 0..sites {
            let m = dense.site_mut(site);
            for &word in sw.site_words(site) {
                let (b, s, c, st, _) = gsnp::core::baseword::unpack(word);
                let idx = base_occ_index(b, s, c, st);
                m[idx] = m[idx].saturating_add(1);
            }
        }
        let dev = Device::m2050().with_contracts();
        let tables = DeviceTables::upload(&dev, &p, &np, &lt);
        let occ = upload_dense_transposed(&dev, &dense, sites);
        likelihood_dense_gpu(&dev, &occ, sites, &tables);
        report.merge(&dev.contract_report());
    }

    println!("static contract proof table");
    println!(
        "  {:<28} {:>9} {:>8} {:>8}",
        "kernel", "verified", "refuted", "assumed"
    );
    for (kernel, t) in &report.per_kernel {
        println!(
            "  {:<28} {:>9} {:>8} {:>8}",
            kernel, t.verified, t.refuted, t.assumed
        );
    }
    let t = report.totals();
    println!(
        "  {:<28} {:>9} {:>8} {:>8}",
        "total", t.verified, t.refuted, t.assumed
    );
    for diag in &report.diagnostics {
        eprintln!("gsnp: refutation: {diag}");
    }
    if t.refuted > 0 || t.assumed > 0 {
        return Err(format!(
            "{} refuted and {} unverified (assumed) launches — every kernel must \
             carry a statically proved contract",
            t.refuted, t.assumed
        )
        .into());
    }
    println!("all {} launches statically verified", t.verified);
    Ok(())
}

fn cmd_decode(args: &[String]) -> CliResult {
    let pos = positional(args);
    let input = pos.first().ok_or("decode requires an input file")?;
    let bytes = fs::read(input.as_str()).map_err(|e| format!("{input}: {e}"))?;
    let mut sink: Box<dyn Write> = match pos.get(1) {
        Some(p) => Box::new(fs::File::create(p)?),
        None => Box::new(std::io::stdout().lock()),
    };
    for window in WindowStream::new(&bytes) {
        window?.write_text(&mut sink)?;
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> CliResult {
    let pos = positional(args);
    let input = pos.first().ok_or("stats requires an input file")?;
    let bytes = fs::read(input.as_str()).map_err(|e| format!("{input}: {e}"))?;
    let mut sites = 0u64;
    let mut variants = 0u64;
    let mut windows = 0u64;
    let mut depth_sum = 0u64;
    let mut chr = String::new();
    for window in WindowStream::new(&bytes) {
        let w = window?;
        chr = w.chr.clone();
        windows += 1;
        sites += w.len() as u64;
        for r in &w.rows {
            depth_sum += u64::from(r.depth);
            variants += u64::from(r.is_variant());
        }
    }
    if flag_value(args, "--format") == Some("prom") {
        // Decode-side snapshot sharing the call-side `gsnp_` naming
        // scheme, so a decoded file and a live run scrape identically.
        use MetricKind::{Counter, Gauge};
        let mut m = MetricsSnapshot::new();
        let l = &[("chr", chr.as_str())];
        m.push(
            "gsnp_sites_total",
            "Reference sites processed",
            Counter,
            l,
            sites as f64,
        );
        m.push(
            "gsnp_windows_total",
            "Windows processed",
            Counter,
            l,
            windows as f64,
        );
        m.push(
            "gsnp_snp_calls_total",
            "Variant calls emitted",
            Counter,
            l,
            variants as f64,
        );
        m.push(
            "gsnp_observations_total",
            "Aligned-base observations processed",
            Counter,
            l,
            depth_sum as f64,
        );
        m.push(
            "gsnp_compressed_output_bytes",
            "Size of the compressed result file",
            Gauge,
            l,
            bytes.len() as f64,
        );
        print!("{}", m.render_text());
        return Ok(());
    }
    println!("{chr}: {sites} sites in {windows} windows");
    println!(
        "  mean depth : {:.2}",
        depth_sum as f64 / sites.max(1) as f64
    );
    println!("  variants   : {variants}");
    println!(
        "  compressed : {} bytes ({:.2} bytes/site)",
        bytes.len(),
        bytes.len() as f64 / sites.max(1) as f64
    );
    Ok(())
}

fn cmd_validate_trace(args: &[String]) -> CliResult {
    let pos = positional(args);
    let input = pos.first().ok_or("validate-trace requires a trace file")?;
    let text = fs::read_to_string(input)?;
    match gsnp::gpu_sim::validate_chrome_json(&text) {
        Ok(n) => {
            println!("{input}: valid Chrome trace, {n} events");
            Ok(())
        }
        Err(e) => Err(format!("{input}: invalid trace: {e}").into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: an invalid trace must come back as `Err`, which `main`
    /// maps to `ExitCode::FAILURE` — CI greps rely on the nonzero exit.
    #[test]
    fn validate_trace_rejects_violations_with_an_error() {
        let dir = std::env::temp_dir().join(format!("gsnp_vt_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json");
        fs::write(&bad, "{\"traceEvents\": [{\"ph\": \"X\"}]").unwrap();
        let err = cmd_validate_trace(&[bad.display().to_string()]);
        assert!(err.is_err(), "invalid trace must yield Err (exit FAILURE)");
        assert!(err.unwrap_err().to_string().contains("invalid trace"));

        let good = dir.join("good.json");
        let rec = TraceRecorder::new(64);
        let t = rec.register_track("device0", "kernels", gsnp::gpu_sim::TrackKind::Spans);
        rec.span(
            t,
            rec.intern("work"),
            0.0,
            1.0,
            gsnp::gpu_sim::SpanArgs::None,
        );
        fs::write(&good, rec.snapshot().to_chrome_json()).unwrap();
        assert!(cmd_validate_trace(&[good.display().to_string()]).is_ok());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_trace_file_is_an_error() {
        assert!(cmd_validate_trace(&["/nonexistent/trace.json".to_string()]).is_err());
    }
}
