//! `gsnp` — command-line SNP caller (the shape of the tool the paper
//! released as a SOAPsnp drop-in).
//!
//! ```text
//! gsnp synth  <out_dir> [--sites N] [--depth X] [--seed S]
//! gsnp call   <alignments.soap> <reference.fa> <priors.txt> <out.gsnp>
//!             [--window N] [--devices N] [--cpu] [--text <out.txt>]
//! gsnp decode <in.gsnp> [<out.txt>]
//! gsnp stats  <in.gsnp>
//! ```

use std::fs;
use std::io::{BufReader, Write};
use std::path::Path;
use std::process::ExitCode;

use gsnp::compress::column::WindowStream;
use gsnp::core::{GsnpConfig, GsnpCpuPipeline, GsnpPipeline};
use gsnp::seqio::fasta::Reference;
use gsnp::seqio::prior::PriorMap;
use gsnp::seqio::soap::{write_alignments, AlignmentReader};
use gsnp::seqio::synth::{Dataset, SynthConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("synth") => cmd_synth(&args[1..]),
        Some("call") => cmd_call(&args[1..]),
        Some("decode") => cmd_decode(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        _ => {
            eprintln!(
                "usage: gsnp <synth|call|decode|stats> ...\n\
                 synth  <out_dir> [--sites N] [--depth X] [--seed S]\n\
                 call   <alignments.soap> <reference.fa> <priors.txt> <out.gsnp> [--window N] [--devices N] [--cpu] [--text out.txt]\n\
                 decode <in.gsnp> [<out.txt>]\n\
                 stats  <in.gsnp>"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gsnp: error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = a != "--cpu"; // value-less flags don't consume the next arg
            continue;
        }
        out.push(a);
    }
    out
}

fn cmd_synth(args: &[String]) -> CliResult {
    let pos = positional(args);
    let dir = Path::new(pos.first().ok_or("synth requires an output directory")?);
    fs::create_dir_all(dir)?;
    let mut cfg = SynthConfig::tiny(flag_value(args, "--seed").map_or(Ok(1), str::parse)?);
    cfg.chr_name = "chrS".into();
    cfg.num_sites = flag_value(args, "--sites").map_or(Ok(50_000), str::parse)?;
    cfg.depth = flag_value(args, "--depth").map_or(Ok(10.0), str::parse)?;
    cfg.read_len = 100;
    let d = Dataset::generate(cfg);

    let mut f = fs::File::create(dir.join("reads.soap"))?;
    write_alignments(&d.reads, &mut f)?;
    let mut f = fs::File::create(dir.join("reference.fa"))?;
    d.reference.write_fasta(&mut f)?;
    let mut f = fs::File::create(dir.join("priors.txt"))?;
    d.priors.write(&d.config.chr_name, &mut f)?;
    let mut f = fs::File::create(dir.join("truth.txt"))?;
    for t in &d.truth {
        writeln!(
            f,
            "{}\t{}\t{}{}",
            d.config.chr_name,
            t.pos + 1,
            t.alleles.0.to_ascii() as char,
            t.alleles.1.to_ascii() as char
        )?;
    }
    println!(
        "wrote {} reads over {} sites ({} planted SNPs) to {}",
        d.reads.len(),
        d.config.num_sites,
        d.truth.len(),
        dir.display()
    );
    Ok(())
}

fn cmd_call(args: &[String]) -> CliResult {
    let pos = positional(args);
    let [aln, fa, prior, out] = pos.as_slice() else {
        return Err("call requires <alignments> <reference> <priors> <out.gsnp>".into());
    };
    let reference = Reference::read_fasta(BufReader::new(fs::File::open(fa)?))?;
    let priors = PriorMap::read(BufReader::new(fs::File::open(prior)?))?;
    let reads: Vec<_> =
        AlignmentReader::new(BufReader::new(fs::File::open(aln)?)).collect::<Result<_, _>>()?;

    let cfg = GsnpConfig {
        window_size: flag_value(args, "--window").map_or(Ok(256_000), str::parse)?,
        num_devices: flag_value(args, "--devices").map_or(Ok(1), str::parse)?,
        ..Default::default()
    };
    let result = if args.iter().any(|a| a == "--cpu") {
        GsnpCpuPipeline::new(cfg).run(&reads, &reference, &priors)
    } else {
        GsnpPipeline::new(cfg).run(&reads, &reference, &priors)
    };
    fs::write(out, &result.compressed)?;
    if let Some(text_path) = flag_value(args, "--text") {
        let mut f = fs::File::create(text_path)?;
        for t in &result.tables {
            t.write_text(&mut f)?;
        }
    }
    println!(
        "{} sites in {} windows, {} variants → {} ({} bytes)",
        result.stats.num_sites,
        result.stats.windows,
        result.stats.snp_count,
        out,
        result.compressed.len()
    );
    Ok(())
}

fn cmd_decode(args: &[String]) -> CliResult {
    let pos = positional(args);
    let input = pos.first().ok_or("decode requires an input file")?;
    let bytes = fs::read(input)?;
    let mut sink: Box<dyn Write> = match pos.get(1) {
        Some(p) => Box::new(fs::File::create(p)?),
        None => Box::new(std::io::stdout().lock()),
    };
    for window in WindowStream::new(&bytes) {
        window?.write_text(&mut sink)?;
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> CliResult {
    let pos = positional(args);
    let input = pos.first().ok_or("stats requires an input file")?;
    let bytes = fs::read(input)?;
    let mut sites = 0u64;
    let mut variants = 0u64;
    let mut windows = 0u64;
    let mut depth_sum = 0u64;
    let mut chr = String::new();
    for window in WindowStream::new(&bytes) {
        let w = window?;
        chr = w.chr.clone();
        windows += 1;
        sites += w.len() as u64;
        for r in &w.rows {
            depth_sum += u64::from(r.depth);
            variants += u64::from(r.is_variant());
        }
    }
    println!("{chr}: {sites} sites in {windows} windows");
    println!(
        "  mean depth : {:.2}",
        depth_sum as f64 / sites.max(1) as f64
    );
    println!("  variants   : {variants}");
    println!(
        "  compressed : {} bytes ({:.2} bytes/site)",
        bytes.len(),
        bytes.len() as f64 / sites.max(1) as f64
    );
    Ok(())
}
