//! Offline shim for the `crossbeam` crate.
//!
//! Provides [`channel::bounded`] / [`channel::unbounded`] MPMC channels
//! with crossbeam's disconnect semantics (send fails once all receivers
//! are gone; recv drains the buffer then fails once all senders are
//! gone), built on `Mutex` + `Condvar`. This is the exact surface the
//! streaming pipeline executor uses; throughput is more than adequate for
//! window-granularity hand-offs (a few messages per second).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        buf: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty but senders remain.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Sending half of a channel. Clonable (MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel. Clonable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// A channel holding at most `cap` in-flight messages; `send` blocks
    /// while full. `cap` of zero is bumped to one (this shim does not
    /// implement rendezvous channels).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }

    /// A channel with no capacity limit; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                buf: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Block until there is room, then enqueue. Fails if every
        /// receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                let full = st.cap.is_some_and(|c| st.buf.len() >= c);
                if !full {
                    st.buf.push_back(msg);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self.shared.not_full.wait(st).unwrap();
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is gone and the
        /// buffer is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = st.buf.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            if let Some(msg) = st.buf.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Messages currently buffered.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().buf.len()
        }

        /// Whether the buffer is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Borrowing blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    /// Owning blocking iterator over received messages.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fifo_order() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = channel::bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let handle = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a recv frees a slot
            "sent"
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(handle.join().unwrap(), "sent");
    }

    #[test]
    fn recv_fails_after_senders_drop() {
        let (tx, rx) = channel::bounded::<u8>(4);
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = channel::bounded::<u8>(4);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn cross_thread_pipeline() {
        let (tx, rx) = channel::bounded(1);
        let producer = std::thread::spawn(move || {
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
        });
        let sum: u64 = rx.iter().sum();
        producer.join().unwrap();
        assert_eq!(sum, 4950);
    }
}
