//! Offline shim for the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace uses:
//! integer-range strategies, tuples, [`Just`], `prop_map`, weighted
//! [`prop_oneof!`], [`collection::vec`], `any::<T>()`, and the
//! [`proptest!`] / `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//! - **Deterministic**: inputs derive from a seed hashed from the test
//!   function's name, so failures reproduce exactly on re-run.
//! - **No shrinking**: a failing case reports its case index and panics
//!   with the assertion message; minimization is up to the reader.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary byte string (e.g. the test name).
    pub fn from_name(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = u128::from(rng.next_u64()) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128) - (lo as u128) + 1;
                let v = u128::from(rng.next_u64()) % span;
                ((lo as u128) + v) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                // Uniform in [0, 1) with 53 random mantissa bits, scaled
                // into the range (upstream draws uniform-in-value too).
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:ident),+))+) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy over a type's whole domain.
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Weighted union of boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms; total weight must be > 0.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            arms.iter().map(|(w, _)| u64::from(*w)).sum::<u64>() > 0,
            "prop_oneof! needs positive total weight"
        );
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights covered the draw")
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length distributions accepted by [`vec`].
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `vec(element, len)`: vectors whose length is drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// How many random cases each `proptest!` test executes.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of cases.
        pub cases: u32,
    }

    impl Config {
        /// Override the case count.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Upstream-compatible `prop::` alias (`prop::collection::vec(...)`).
pub mod prop {
    pub use crate::collection;
}

/// Everything tests import.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted (or unweighted) choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Define property tests. Each `fn name(bindings) { body }` becomes a
/// `#[test]` running the body over `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let __outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $crate::__proptest_bind! { __rng; { $($args)* , } $body }
                }));
                if let Err(panic) = __outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (deterministic seed; re-run reproduces it)",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; { , } $body:block) => { $body };
    ($rng:ident; { } $body:block) => { $body };
    ($rng:ident; { mut $name:ident in $strategy:expr, $($rest:tt)* } $body:block) => {{
        #[allow(unused_mut)]
        let mut $name = $crate::Strategy::generate(&($strategy), &mut $rng);
        $crate::__proptest_bind! { $rng; { $($rest)* } $body }
    }};
    ($rng:ident; { $name:ident in $strategy:expr, $($rest:tt)* } $body:block) => {{
        let $name = $crate::Strategy::generate(&($strategy), &mut $rng);
        $crate::__proptest_bind! { $rng; { $($rest)* } $body }
    }};
    ($rng:ident; { mut $name:ident: $ty:ty, $($rest:tt)* } $body:block) => {{
        #[allow(unused_mut)]
        let mut $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind! { $rng; { $($rest)* } $body }
    }};
    ($rng:ident; { $name:ident: $ty:ty, $($rest:tt)* } $body:block) => {{
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind! { $rng; { $($rest)* } $body }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        let strat = (0u8..4, 10u32..=20, 0usize..100);
        for _ in 0..1000 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!(a < 4);
            assert!((10..=20).contains(&b));
            assert!(c < 100);
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::TestRng::from_name("lens");
        let strat = crate::collection::vec(0u8..=255, 3..7);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_weights_bias_the_draw() {
        let mut rng = crate::TestRng::from_name("oneof");
        let strat = prop_oneof![9 => Just(0u32), 1 => 1u32..100];
        let zeros = (0..10_000)
            .filter(|_| strat.generate(&mut rng) == 0)
            .count();
        assert!((8_300..9_700).contains(&zeros), "{zeros}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_all_forms(
            a in 0u8..4,
            mut v in crate::collection::vec(any::<u32>(), 0..10),
            b: u16,
        ) {
            v.push(u32::from(a) + u32::from(b));
            prop_assert!(!v.is_empty());
            prop_assert_eq!(v.last().copied().unwrap(), u32::from(a) + u32::from(b));
        }
    }

    proptest! {
        #[test]
        fn prop_map_transforms(x in (0u8..10).prop_map(|v| v * 3)) {
            prop_assert!(x % 3 == 0 && x < 30);
            prop_assert_ne!(x, 255);
        }
    }
}
