//! Offline shim for the `rand` crate.
//!
//! This workspace builds without network access, so the handful of `rand`
//! APIs it uses are reimplemented here: [`rngs::StdRng`] (xoshiro256++
//! seeded through SplitMix64), [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_bool`, and `gen_range` over the
//! integer/float range forms that appear in the tree.
//!
//! The stream differs from upstream `rand` 0.8 (which uses ChaCha12 for
//! `StdRng`); all in-tree consumers treat the generator as an arbitrary
//! deterministic stream keyed by a seed, which this shim preserves.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their whole domain by
/// [`Rng::gen`] (the shim analogue of the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`]. The element type is an
/// associated type (not a trait parameter) so integer-literal ranges
/// infer from the use site, e.g. `rng.gen_range(1..=16).min(n)`.
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = rng.next_u64() as u128 % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let v = rng.next_u64() as u128 % span;
                (lo as u128).wrapping_add(v) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample a value uniformly over the type's whole domain.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }

    /// Uniform draw from a half-open or inclusive range.
    #[inline]
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — fast, high-quality, and deterministic across
    /// platforms. Stands in for upstream's ChaCha12-based `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias — the shim does not distinguish a small generator.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let v = r.gen_range(0u8..=255);
            let _ = v;
            let v = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rates_are_sane() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn float_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
