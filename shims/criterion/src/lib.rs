//! Offline shim for the `criterion` crate.
//!
//! A small timed harness exposing the API the workspace's benches use:
//! [`Criterion::benchmark_group`], `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Reporting prints the median, mean, and spread of per-iteration times;
//! there is no statistical regression analysis, plotting, or baseline
//! store. Sample counts are honoured but capped (benches here simulate
//! whole pipelines, and the harness must stay usable on small hosts).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from eliminating a value or the work behind it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing for [`Bencher::iter_batched`]. The shim runs one input
/// per batch regardless of variant, which is `PerIteration` semantics —
/// correct for every variant, merely less amortized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: upstream batches many per allocation.
    SmallInput,
    /// Large inputs: fewer per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Work-rate annotation attached to a group (printed with results).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Render the id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Runs the measured closure and records per-sample times.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Time `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` over inputs built by `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: &str, id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let mut sorted: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("duration is finite"));
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let lo = sorted[0];
    let hi = sorted[sorted.len() - 1];
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:.3e} elem/s", n as f64 / median),
        Some(Throughput::Bytes(n)) => format!("  {:.3e} B/s", n as f64 / median),
        None => String::new(),
    };
    println!(
        "{group}/{id}: median {} mean {} range [{} .. {}] ({} samples){rate}",
        fmt_time(median),
        fmt_time(mean),
        fmt_time(lo),
        fmt_time(hi),
        sorted.len(),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Max samples per benchmark; the full criterion default (100) is far too
/// slow for pipeline-scale benches under simulation.
const MAX_SAMPLES: usize = 10;

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: MAX_SAMPLES,
        }
    }
}

impl Criterion {
    /// Default sample count for benches registered on this driver.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, MAX_SAMPLES);
        self
    }

    /// Run one free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut b);
        report("bench", id, &b.samples, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark in this group (capped by the shim).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, MAX_SAMPLES);
        self
    }

    /// Annotate subsequent benchmarks with a work rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<ID: IntoBenchmarkId, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut b);
        report(&self.name, &id.into_id(), &b.samples, self.throughput);
        self
    }

    /// Run one benchmark with a borrowed input.
    pub fn bench_with_input<ID: IntoBenchmarkId, I: ?Sized, F>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut b, input);
        report(&self.name, &id.into_id(), &b.samples, self.throughput);
        self
    }

    /// End the group (formatting no-op in the shim).
    pub fn finish(self) {}
}

/// Bundle bench functions under one entry function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.sample_size(3).bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        assert_eq!(runs, 3);
    }

    #[test]
    fn group_bench_with_input_and_batched() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.throughput(Throughput::Elements(4));
        let data = vec![1u32, 2, 3, 4];
        g.bench_with_input(BenchmarkId::new("sum", 4), &data, |b, d| {
            b.iter_batched(
                || d.clone(),
                |v| v.iter().sum::<u32>(),
                BatchSize::SmallInput,
            );
        });
        g.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 7));
        g.finish();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("a", 16).into_id(), "a/16");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
        assert_eq!("plain".into_id(), "plain");
    }
}
