//! Offline shim for the `rayon` crate.
//!
//! Implements the subset this workspace uses — `into_par_iter()` on ranges
//! and vectors, `par_iter_mut()` on slices, `map`/`for_each`/`collect`,
//! and [`join`] — on top of `std::thread::scope`. Work is split into
//! chunks pulled from a shared queue (dynamic load balancing, like rayon's
//! work stealing at chunk granularity); `map` results are reassembled in
//! input order, so ordered `collect` matches rayon semantics.
//!
//! On a single-CPU host every operation degrades to a straight serial
//! loop with no thread spawns, which is both the fast path and keeps
//! behaviour deterministic under `taskset -c 0`.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Number of worker threads a parallel operation may use. Cached: real
/// rayon sizes its pool once at startup, and `available_parallelism`
/// allocates on Linux (it reads cgroup quota files), which would put heap
/// traffic on every kernel launch of the allocation-free window loop.
pub fn current_num_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| std::thread::available_parallelism().map_or(1, usize::from))
}

fn run_mapped<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // More chunks than workers so a slow chunk doesn't serialize the tail.
    let nchunks = (threads * 4).min(n);
    let chunk_size = n.div_ceil(nchunks);
    let mut queue: VecDeque<(usize, Vec<T>)> = VecDeque::new();
    let mut it = items.into_iter();
    let mut idx = 0;
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        queue.push_back((idx, chunk));
        idx += 1;
    }
    let queue = Mutex::new(queue);
    let results: Mutex<Vec<Option<Vec<R>>>> = Mutex::new((0..idx).map(|_| None).collect());
    let f = &f;
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let job = queue.lock().unwrap().pop_front();
                let Some((i, chunk)) = job else { break };
                let mapped: Vec<R> = chunk.into_iter().map(f).collect();
                results.lock().unwrap()[i] = Some(mapped);
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .flat_map(|r| r.expect("worker completed every chunk"))
        .collect()
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join closure panicked"))
    })
}

/// A materialized parallel iterator.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        let _ = run_mapped(self.items, f);
    }

    /// Lazily map; consumed by [`ParMap::collect`] or [`ParMap::for_each`].
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Chunk-size hint — accepted for API compatibility, ignored.
    pub fn with_min_len(self, _len: usize) -> Self {
        self
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A mapped parallel iterator (the result of [`ParIter::map`]).
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Execute the map in parallel and collect results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_mapped(self.items, self.f).into_iter().collect()
    }

    /// Execute the map for its side effects.
    pub fn for_each<G: Fn(R) + Sync>(self, g: G) {
        let f = self.f;
        let _ = run_mapped(self.items, move |t| g(f(t)));
    }
}

/// A lazy parallel iterator over an integer range. Unlike [`ParIter`] it
/// never materializes the index space: the serial fast path is a plain
/// loop and the parallel path splits the range arithmetically, so kernel
/// launches in tight loops stay allocation-free.
pub struct ParRange<T> {
    range: std::ops::Range<T>,
}

macro_rules! par_range_impl {
    ($t:ty) => {
        impl ParRange<$t> {
            /// Apply `f` to every index.
            pub fn for_each<F: Fn($t) + Sync>(self, f: F) {
                let n = self.len();
                let threads = current_num_threads().min(n);
                if threads <= 1 {
                    for i in self.range {
                        f(i);
                    }
                    return;
                }
                // Chunked dynamic scheduling over index arithmetic: a
                // shared cursor hands out subranges, no queue allocation.
                let chunk = n.div_ceil(threads * 4).max(1) as $t;
                let start = self.range.start;
                let end = self.range.end;
                let cursor = std::sync::atomic::AtomicUsize::new(0);
                let f = &f;
                std::thread::scope(|s| {
                    for _ in 0..threads {
                        s.spawn(|| loop {
                            let k = cursor
                                .fetch_add(chunk as usize, std::sync::atomic::Ordering::Relaxed);
                            let lo = start.saturating_add(k as $t);
                            if lo >= end {
                                break;
                            }
                            let hi = lo.saturating_add(chunk).min(end);
                            for i in lo..hi {
                                f(i);
                            }
                        });
                    }
                });
            }

            /// Lazily map; consumed by `collect` or `for_each`.
            pub fn map<R: Send, F: Fn($t) -> R + Sync>(self, f: F) -> ParRangeMap<$t, F> {
                ParRangeMap {
                    range: self.range,
                    f,
                }
            }

            /// Chunk-size hint — accepted for API compatibility, ignored.
            pub fn with_min_len(self, _len: usize) -> Self {
                self
            }

            /// Number of indices.
            pub fn len(&self) -> usize {
                (self.range.end.saturating_sub(self.range.start)) as usize
            }

            /// Whether the range is empty.
            pub fn is_empty(&self) -> bool {
                self.range.is_empty()
            }
        }

        impl<R: Send, F: Fn($t) -> R + Sync> ParRangeMap<$t, F> {
            /// Execute the map in parallel and collect results in input
            /// order.
            pub fn collect<C: FromIterator<R>>(self) -> C {
                let n = (self.range.end.saturating_sub(self.range.start)) as usize;
                let threads = current_num_threads().min(n);
                if threads <= 1 {
                    return self.range.map(self.f).collect();
                }
                run_mapped(self.range.collect(), self.f)
                    .into_iter()
                    .collect()
            }

            /// Execute the map for its side effects.
            pub fn for_each<G: Fn(R) + Sync>(self, g: G) {
                let f = self.f;
                (ParRange { range: self.range }).for_each(move |i| g(f(i)));
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = ParRange<$t>;
            fn into_par_iter(self) -> ParRange<$t> {
                ParRange { range: self }
            }
        }
    };
}

/// A mapped lazy range (the result of [`ParRange::map`]).
pub struct ParRangeMap<T, F> {
    range: std::ops::Range<T>,
    f: F,
}

par_range_impl!(usize);
par_range_impl!(u32);

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Concrete iterator type ([`ParIter`] or the lazy [`ParRange`]).
    type Iter;
    /// Build the parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `par_iter()` over shared slices.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a shared reference).
    type Item: Send;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_iter_mut()` over exclusive slices.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type (an exclusive reference).
    type Item: Send;
    /// Borrowing parallel iterator.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// The traits users import wholesale.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter, ParMap,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        (0..100usize).into_par_iter().for_each(|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 4950);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v: Vec<u32> = (0..64).collect();
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, (1..65).collect::<Vec<_>>());
    }

    #[test]
    fn empty_inputs_are_fine() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }
}
