//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. A poisoned std lock (a panic while held) is recovered by
//! taking the inner guard, matching parking_lot's "no poisoning" model.

use std::sync;

/// Mutual exclusion lock whose `lock` never returns an error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock whose accessors never return errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 1); // no panic, value intact
    }
}
