//! # bench — the reproduction harness
//!
//! One function per table/figure of the paper's evaluation (§VI), all
//! runnable through the `reproduce` binary:
//!
//! ```text
//! cargo run --release -p bench --bin reproduce -- all --scale 0.02
//! ```
//!
//! Workloads are scale models of the paper's datasets (see `seqio::synth`
//! and DESIGN.md §2). "GPU" series report the simulated device time from
//! the `gpu-sim` cost model; "CPU" series report host wall-clock. Absolute
//! numbers are not comparable to the paper's testbed — the *shapes*
//! (ratios, orderings, crossovers) are the reproduction target, and
//! `EXPERIMENTS.md` records both side by side.

pub mod bandwidth;
pub mod check;
pub mod data;
pub mod experiments;
pub mod report;

/// Default scale factor for the `reproduce` binary: `mini` datasets are
/// 1/100 of the paper's, and this shrinks them by a further 1/50 so the
/// full suite completes in minutes on a laptop-class machine.
pub const DEFAULT_SCALE: f64 = 0.02;
