//! Workload construction for the experiments.

use seqio::synth::{Dataset, SynthConfig};

/// Chromosome-1 scale model at the given scale (× the 1/100 `mini`).
pub fn ch1(scale: f64) -> Dataset {
    Dataset::generate(SynthConfig::ch1_mini(scale))
}

/// Chromosome-21 scale model at the given scale.
pub fn ch21(scale: f64) -> Dataset {
    Dataset::generate(SynthConfig::ch21_mini(scale))
}

/// Window sizes used throughout, scaled from the paper's defaults so that
/// a scaled dataset still spans several windows.
pub fn scaled_window(paper_window: usize, scale: f64) -> usize {
    ((paper_window as f64 * scale) as usize).max(256)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_datasets_shrink() {
        let small = ch21(0.002);
        assert!(small.config.num_sites < 2_000);
        assert!(!small.reads.is_empty());
    }

    #[test]
    fn window_scaling_floors() {
        assert_eq!(scaled_window(256_000, 0.02), 5_120);
        assert_eq!(scaled_window(4_000, 0.0001), 256);
    }
}
