//! One function per table/figure of the paper's evaluation section.
//!
//! Each returns a plain-text report: the regenerated rows/series, the
//! paper's corresponding numbers where a direct comparison is meaningful,
//! and the shape property the reproduction targets.

use std::sync::Arc;
use std::time::Instant;

use gpu_sim::{Device, DeviceConfig, HwCounters, TraceRecorder, TraceSnapshot};
use gsnp_core::counting::{nonzero_cells_per_site, sparsity_histogram, SparseWindow};
use gsnp_core::likelihood::{
    likelihood_comp_gpu, likelihood_dense_gpu, sort_sparse_cpu, upload_dense_transposed,
    DeviceTables, KernelVariant,
};
use gsnp_core::model::ModelParams;
use gsnp_core::pipeline::{GsnpConfig, GsnpCpuPipeline, GsnpOutput, GsnpPipeline};
use gsnp_core::tables::{LogTable, NewPMatrix, PMatrix};
use seqio::synth::{Dataset, SynthConfig};
use seqio::window::WindowReader;
use soapsnp::{dense_access_time_estimate, SoapSnpConfig, SoapSnpOutput, SoapSnpPipeline};
use sortnet::{multipass_sort, noneq_sort, single_pass_sort, Span, PASS_BOUNDS};

use crate::bandwidth;
use crate::data::{ch1, ch21, scaled_window};
use crate::report::{bytes, ratio, secs, table};

// ---------------------------------------------------------------------
// Shared runners
// ---------------------------------------------------------------------

fn run_soapsnp(d: &Dataset) -> SoapSnpOutput {
    SoapSnpPipeline::new(SoapSnpConfig {
        window_size: 4_000,
        read_len: d.config.read_len,
        params: ModelParams::default(),
    })
    .run(&d.reads, &d.reference, &d.priors)
}

fn gsnp_cfg(d: &Dataset, scale: f64) -> GsnpConfig {
    let _ = d;
    let cfg = GsnpConfig {
        window_size: scaled_window(256_000, scale),
        ..Default::default()
    };
    // Measured experiments must never run under the sanitizer (its shadow
    // tracking is ~8x wall clock and is counter-neutral, so nothing is
    // gained); the sweep tests cover the checked configuration.
    assert!(!cfg.sanitize, "benchmark config has the sanitizer enabled");
    cfg
}

fn run_gsnp(d: &Dataset, scale: f64) -> GsnpOutput {
    GsnpPipeline::new(gsnp_cfg(d, scale)).run(&d.reads, &d.reference, &d.priors)
}

fn run_gsnp_cpu(d: &Dataset, scale: f64) -> GsnpOutput {
    GsnpCpuPipeline::new(gsnp_cfg(d, scale)).run(&d.reads, &d.reference, &d.priors)
}

/// All windows of a dataset as sorted sparse windows.
fn sparse_windows(d: &Dataset, window: usize, sorted: bool) -> Vec<SparseWindow> {
    let mut reader = WindowReader::new(d.reads.iter().cloned().map(Ok), d.config.num_sites, window);
    let mut out = Vec::new();
    while let Some(w) = reader.next_window().expect("synthetic input") {
        let mut sw = SparseWindow::count(&w);
        if sorted {
            sort_sparse_cpu(&mut sw);
        }
        out.push(sw);
    }
    out
}

struct GsnpKernelSetup {
    dev: Device,
    tables: DeviceTables,
    read_len: usize,
}

fn kernel_setup(d: &Dataset) -> GsnpKernelSetup {
    let p = PMatrix::calibrate(&d.reads, &d.reference, &ModelParams::default());
    let np = NewPMatrix::precompute(&p);
    let lt = LogTable::new();
    let dev = Device::m2050();
    let tables = DeviceTables::upload(&dev, &p, &np, &lt);
    GsnpKernelSetup {
        dev,
        tables,
        read_len: d.config.read_len,
    }
}

// ---------------------------------------------------------------------
// Table I — SOAPsnp component breakdown
// ---------------------------------------------------------------------

/// Table I: time breakdown by component in SOAPsnp.
pub fn table1(scale: f64) -> String {
    let mut rows = Vec::new();
    for d in [ch1(scale), ch21(scale)] {
        let out = run_soapsnp(&d);
        let t = out.times;
        rows.push(vec![
            d.config.chr_name.clone(),
            secs(t.cal_p),
            secs(t.read_site),
            secs(t.counting),
            secs(t.likelihood()),
            secs(t.posterior),
            secs(t.output),
            secs(t.recycle),
            secs(t.total()),
        ]);
    }
    format!(
        "Table I — SOAPsnp time breakdown (measured, scale {scale})\n{}\n\
         Paper (Ch.1, sec): cal_p 258  read 101  count 376  likeli 12267  post 113  output 550  recycle 8214  total 21879\n\
         Shape target: likelihood is the dominant component (~56%), recycle second.\n",
        table(
            &["dataset", "cal_p", "read.", "count.", "likeli.", "post.", "output", "recycle", "Total"],
            &rows
        )
    )
}

// ---------------------------------------------------------------------
// Table II — dataset characteristics
// ---------------------------------------------------------------------

/// Table II: characteristics of the Ch.1 / Ch.21 scale models.
pub fn table2(scale: f64) -> String {
    let mut rows = Vec::new();
    for d in [ch1(scale), ch21(scale)] {
        // Output size measured from the (cheap) sparse CPU pipeline.
        let out = run_gsnp_cpu(&d, scale);
        let mut text = Vec::new();
        for t in &out.tables {
            t.write_text(&mut text).expect("in-memory write");
        }
        rows.push(vec![
            d.config.chr_name.clone(),
            format!("{}", d.config.num_sites),
            format!("{:.1}X", d.realized_depth() / d.realized_coverage()),
            format!("{}", d.reads.len()),
            format!("{:.0}%", d.realized_coverage() * 100.0),
            bytes(d.input_text_size()),
            bytes(text.len() as u64),
        ]);
    }
    format!(
        "Table II — dataset characteristics (scale {scale}; paper: Ch.1 247M sites 11X 44M reads 88% 12GB/17GB, Ch.21 47M 9.6X 6M 68% 2GB/3GB)\n{}",
        table(
            &["dataset", "#sites", "Seq. dep", "#reads", "Coverage", "Input", "Output"],
            &rows
        )
    )
}

// ---------------------------------------------------------------------
// Table III — hardware counters per kernel variant
// ---------------------------------------------------------------------

fn accumulate_counters(d: &Dataset, scale: f64) -> Vec<(KernelVariant, HwCounters)> {
    let setup = kernel_setup(d);
    let windows = sparse_windows(d, scaled_window(256_000, scale), true);
    KernelVariant::ALL
        .iter()
        .map(|&variant| {
            let mut total = HwCounters::default();
            for sw in &windows {
                let words = setup.dev.upload(&sw.words);
                let (_, stats) = likelihood_comp_gpu(
                    &setup.dev,
                    variant,
                    &words,
                    &sw.spans,
                    setup.read_len,
                    &setup.tables,
                );
                total += stats.counters;
            }
            (variant, total)
        })
        .collect()
}

/// Table III: `likelihood_comp` hardware counters for the four variants.
pub fn table3(scale: f64) -> String {
    let d = ch1(scale);
    let counters = accumulate_counters(&d, scale);
    let warp = DeviceConfig::tesla_m2050().warp_size;
    let base = counters[0].1;
    let mut rows = Vec::new();
    type CounterField = (&'static str, fn(&HwCounters) -> u64);
    let fields: [CounterField; 5] = [
        ("#inst. PW", |c| c.instructions),
        ("#g_load", |c| c.g_load()),
        ("#g_store", |c| c.g_store()),
        ("#s_load PW", |c| c.s_load),
        ("#s_store PW", |c| c.s_store),
    ];
    for (name, get) in fields {
        let pw = name.ends_with("PW");
        let val = |c: &HwCounters| {
            let v = get(c);
            if pw {
                HwCounters::per_warp(v, warp)
            } else {
                v
            }
        };
        let mut row = vec![name.to_string()];
        for (_, c) in &counters {
            let v = val(c);
            let rel = if val(&base) > 0 {
                format!(" ({:.0}%)", v as f64 / val(&base) as f64 * 100.0)
            } else {
                String::new()
            };
            row.push(format!("{:.2e}{rel}", v as f64));
        }
        rows.push(row);
    }
    format!(
        "Table III — likelihood_comp hardware counters, Ch.1 (scale {scale})\n{}\n\
         Paper shape: optimized ≈ 70% of baseline instructions, ≈ 51% of its global accesses;\n\
         shared removes ~30% of loads / ~32% of stores; new table cuts loads to ~64%.\n",
        table(
            &[
                "counter",
                "baseline",
                "w/ shared",
                "w/ new table",
                "optimized"
            ],
            &rows
        )
    )
}

// ---------------------------------------------------------------------
// Table IV — GSNP component breakdown + speedups
// ---------------------------------------------------------------------

/// Table IV: GSNP time breakdown with per-component speedup vs SOAPsnp.
pub fn table4(scale: f64) -> String {
    let mut rows = Vec::new();
    for d in [ch1(scale), ch21(scale)] {
        let soap = run_soapsnp(&d).times;
        let gsnp = run_gsnp(&d, scale).times;
        let cell = |g: f64, s: f64| format!("{}({})", secs(g), ratio(s / g.max(1e-12)));
        rows.push(vec![
            d.config.chr_name.clone(),
            secs(gsnp.cal_p),
            cell(gsnp.read_site, soap.read_site),
            cell(gsnp.counting, soap.counting),
            cell(gsnp.likelihood(), soap.likelihood()),
            cell(gsnp.posterior, soap.posterior),
            cell(gsnp.output, soap.output),
            cell(gsnp.recycle, soap.recycle),
            cell(gsnp.total(), soap.total()),
        ]);
    }
    format!(
        "Table IV — GSNP time breakdown and speedup vs SOAPsnp (scale {scale})\n{}\n\
         Paper (Ch.1): cal_p 297  read 20(5x)  count 87(4x)  likeli 60(204x)  post 16(7x)  output 44(13x)  recycle 3(2738x)  total 527(42x)\n\
         Shape target: recycle has the largest speedup, then likelihood; total ≥ one order of magnitude.\n",
        table(
            &["dataset", "cal_p", "read.", "count.", "likeli.", "post.", "output", "recycle", "Total"],
            &rows
        )
    )
}

// ---------------------------------------------------------------------
// Fig. 4 — dense-representation analysis
// ---------------------------------------------------------------------

/// Fig. 4(a): estimated `base_occ` streaming time vs measured
/// likelihood/recycle time in SOAPsnp.
pub fn fig4a(scale: f64) -> String {
    let bw_read = bandwidth::sequential_read_bandwidth();
    let bw_write = bandwidth::sequential_write_bandwidth();
    let mut rows = Vec::new();
    for d in [ch1(scale), ch21(scale)] {
        let out = run_soapsnp(&d);
        let est_like = dense_access_time_estimate(d.config.num_sites, bw_read);
        let est_rec = dense_access_time_estimate(d.config.num_sites, bw_write);
        rows.push(vec![
            d.config.chr_name.clone(),
            secs(est_like),
            secs(out.times.likelihood()),
            format!("{:.0}%", est_like / out.times.likelihood() * 100.0),
            secs(est_rec),
            secs(out.times.recycle),
            format!("{:.0}%", est_rec / out.times.recycle * 100.0),
        ]);
    }
    format!(
        "Fig. 4(a) — estimated base_occ access time (Formula 1) vs measured (scale {scale})\n\
         measured sequential bandwidth: read {:.2} GB/s, write {:.2} GB/s\n{}\n\
         Paper shape: estimate covers 65–70% of likelihood and 89–92% of recycle —\n\
         i.e. both components are memory-bound on the dense matrix.\n",
        bw_read / 1e9,
        bw_write / 1e9,
        table(
            &[
                "dataset",
                "est likeli",
                "meas likeli",
                "est/meas",
                "est recycle",
                "meas recycle",
                "est/meas"
            ],
            &rows
        )
    )
}

/// Fig. 4(b): sparsity of `base_occ` — % of sites per non-zero bucket.
pub fn fig4b(scale: f64) -> String {
    let d = ch1(scale);
    let mut reader = WindowReader::new(
        d.reads.iter().cloned().map(Ok),
        d.config.num_sites,
        scaled_window(256_000, scale),
    );
    let mut all = Vec::new();
    while let Some(w) = reader.next_window().expect("synthetic input") {
        all.extend(nonzero_cells_per_site(&w));
    }
    let hist = sparsity_histogram(&all);
    let max_nz = all.iter().copied().max().unwrap_or(0);
    let labels = ["0", "1-10", "11-20", "21-40", "41-80", "81+"];
    let rows: Vec<Vec<String>> = labels
        .iter()
        .zip(hist)
        .map(|(l, f)| vec![l.to_string(), format!("{:.1}%", f * 100.0)])
        .collect();
    format!(
        "Fig. 4(b) — base_occ sparsity, Ch.1 (scale {scale})\n{}\n\
         max non-zero cells at any site: {max_nz} of 131,072 ({:.3}%)\n\
         Paper shape: most sites have only tens of non-zero elements (≤ ~0.08% of the matrix).\n",
        table(&["#non-zero cells", "% of sites"], &rows),
        max_nz as f64 / 131_072.0 * 100.0
    )
}

// ---------------------------------------------------------------------
// Fig. 5 / Fig. 6 — likelihood representations and split
// ---------------------------------------------------------------------

/// Fig. 5: likelihood time under dense/sparse × CPU/GPU.
pub fn fig5(scale: f64) -> String {
    let mut rows = Vec::new();
    for d in [ch1(scale), ch21(scale)] {
        let soap = run_soapsnp(&d).times.likelihood();
        let cpu = run_gsnp_cpu(&d, scale).times;
        let gsnp = run_gsnp(&d, scale).times;

        // GPU dense on a site subsample, scaled linearly (per-site cost is
        // constant by construction of the dense scan).
        let setup = kernel_setup(&d);
        let sample = 2_048usize.min(d.config.num_sites as usize);
        let mut reader = WindowReader::new(d.reads.iter().cloned().map(Ok), sample as u64, sample);
        let w = reader.next_window().expect("ok").expect("one window");
        let mut dense = gsnp_core::counting::DenseWindow::alloc(sample);
        dense.count(&w);
        let occ = upload_dense_transposed(&setup.dev, &dense, sample);
        let (_, dstats) = likelihood_dense_gpu(&setup.dev, &occ, sample, &setup.tables);
        let gpu_dense = dstats.sim_time * d.config.num_sites as f64 / sample as f64;

        rows.push(vec![
            d.config.chr_name.clone(),
            secs(soap),
            secs(gpu_dense),
            secs(cpu.likelihood()),
            secs(gsnp.likelihood()),
            ratio(soap / cpu.likelihood()),
            ratio(soap / gsnp.likelihood()),
            ratio(gpu_dense / gsnp.likelihood()),
        ]);
    }
    format!(
        "Fig. 5 — likelihood calculation by representation/processor (scale {scale})\n\
         (GPU columns: simulated device time; GPU-dense extrapolated from a site subsample)\n{}\n\
         Paper shape: GSNP_CPU 4–5x over SOAPsnp; GSNP ~2 orders of magnitude over SOAPsnp;\n\
         GPU-dense 14–17x slower than GSNP.\n",
        table(
            &[
                "dataset",
                "SOAPsnp",
                "GPU dense",
                "GSNP_CPU",
                "GSNP",
                "CPUsp/dense",
                "GSNP/SOAP",
                "dense/sparse GPU"
            ],
            &rows
        )
    )
}

/// Fig. 6: the likelihood_sort / likelihood_comp split on GPU and CPU.
pub fn fig6(scale: f64) -> String {
    let mut rows = Vec::new();
    for d in [ch1(scale), ch21(scale)] {
        let cpu = run_gsnp_cpu(&d, scale).times;
        let gsnp = run_gsnp(&d, scale).times;
        rows.push(vec![
            d.config.chr_name.clone(),
            secs(cpu.likelihood_sort),
            secs(gsnp.likelihood_sort),
            ratio(cpu.likelihood_sort / gsnp.likelihood_sort.max(1e-12)),
            secs(cpu.likelihood_comp),
            secs(gsnp.likelihood_comp),
            ratio(cpu.likelihood_comp / gsnp.likelihood_comp.max(1e-12)),
        ]);
    }
    format!(
        "Fig. 6 — likelihood_sort vs likelihood_comp, CPU (wall) vs GPU (simulated) (scale {scale})\n{}\n\
         Paper shape: comp speedup (~40x) exceeds sort speedup (~22x) — bitonic has a higher\n\
         complexity than the CPU quicksort, so sorting gains less from the device.\n",
        table(
            &["dataset", "sort CPU", "sort GPU", "sort spd", "comp CPU", "comp GPU", "comp spd"],
            &rows
        )
    )
}

// ---------------------------------------------------------------------
// Fig. 7 — sorting network studies
// ---------------------------------------------------------------------

/// Fig. 7(a): batch-sort throughput vs array size for the three sorters.
pub fn fig7a(_scale: f64) -> String {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let dev = Device::m2050();
    let mut rows = Vec::new();
    for size in [8usize, 16, 32, 64, 128, 256] {
        let n_arrays = (400_000 / size).max(64);
        let mut rng = StdRng::seed_from_u64(size as u64);
        let host: Vec<u32> = (0..n_arrays * size).map(|_| rng.gen()).collect();
        let spans: Vec<Span> = (0..n_arrays).map(|i| (i * size, size)).collect();
        let total = (n_arrays * size) as f64;

        let mut a = host.clone();
        let t0 = Instant::now();
        sortnet::baselines::parallel_cpu_qsort(&mut a, &spans);
        let t_qsort = t0.elapsed().as_secs_f64();

        let buf = dev.upload(&host);
        let stats = sortnet::batch_sort(&dev, &buf, &spans, size, 8);
        let t_batch = stats.sim_time;

        let mut b = host.clone();
        let t0 = Instant::now();
        sortnet::baselines::sequential_radix(&mut b, &spans);
        let t_radix = t0.elapsed().as_secs_f64();

        rows.push(vec![
            size.to_string(),
            format!("{:.1}", total / t_qsort / 1e6),
            format!("{:.1}", total / t_batch / 1e6),
            format!("{:.1}", total / t_radix / 1e6),
        ]);
    }
    format!(
        "Fig. 7(a) — batch sort throughput (Melements/s) vs array size\n\
         (CPU columns: wall clock on THIS host's single core — the paper's CPU baseline ran\n\
         16 threads; GPU batch: simulated device time)\n{}\n\
         Paper shape: GPU batch ≈ 1.5x the 16-thread CPU sort; per-array radix far below both;\n\
         throughput decreases as arrays grow.\n",
        table(
            &[
                "array size",
                "parallel CPU qsort",
                "GPU batch bitonic",
                "sequential radix"
            ],
            &rows
        )
    )
}

/// Fig. 7(b): multipass vs single-pass vs non-equal bitonic on the real
/// base_word size distribution.
pub fn fig7b(scale: f64) -> String {
    let d = ch1(scale);
    let dev = Device::m2050();
    // One whole-chromosome batch: the paper's window (256,000 sites) is
    // large enough that the batch always contains the full size spectrum,
    // which is what makes the single-pass padding pathological.
    let windows = sparse_windows(&d, d.config.num_sites as usize, false);
    let mut t_mp = 0.0;
    let mut t_sp = 0.0;
    let mut t_ne = 0.0;
    let (mut el_mp, mut el_sp, mut el_ne) = (0u64, 0u64, 0u64);
    let mut classes: Vec<sortnet::ClassTally> = Vec::new();
    for sw in &windows {
        let b1 = dev.upload(&sw.words);
        let mp = multipass_sort(&dev, &b1, &sw.spans);
        t_mp += mp.total().sim_time;
        el_mp += mp.elements_sorted;
        // Aggregate the per-size-class histogram (stable bucket layout:
        // [0,1] then one bucket per pass bound).
        if classes.is_empty() {
            classes = mp.classes.clone();
        } else {
            for (acc, c) in classes.iter_mut().zip(&mp.classes) {
                acc.arrays += c.arrays;
                acc.elements += c.elements;
                acc.padded += c.padded;
                acc.capacity = acc.capacity.max(c.capacity);
            }
        }
        let b2 = dev.upload(&sw.words);
        let sp = single_pass_sort(&dev, &b2, &sw.spans);
        t_sp += sp.total().sim_time;
        el_sp += sp.elements_sorted;
        let b3 = dev.upload(&sw.words);
        let ne = noneq_sort(&dev, &b3, &sw.spans);
        t_ne += ne.total().sim_time;
        el_ne += ne.elements_sorted;
    }
    let hist_rows: Vec<Vec<String>> = classes
        .iter()
        .map(|c| {
            vec![
                class_label(c.upper),
                format!("{}", c.arrays),
                format!("{}", c.elements),
                format!("{}", c.padded),
                if c.capacity == 0 {
                    "-".into()
                } else {
                    format!("{}", c.capacity)
                },
            ]
        })
        .collect();
    let rows = vec![
        vec![
            "bitonic MP".into(),
            secs(t_mp),
            format!("{el_mp}"),
            ratio(1.0),
        ],
        vec![
            "bitonic noneq".into(),
            secs(t_ne),
            format!("{el_ne}"),
            ratio(t_ne / t_mp),
        ],
        vec![
            "bitonic SP".into(),
            secs(t_sp),
            format!("{el_sp}"),
            ratio(t_sp / t_mp),
        ],
    ];
    format!(
        "Fig. 7(b) — multipass vs single-pass vs non-equal bitonic, Ch.1 base_word arrays (scale {scale})\n{}\n\
         Single pass sorts {:.1}x more (padded) elements than multipass.\n\
         Multipass size-class histogram (every class reported — no silent caps):\n{}\n\
         Paper shape: MP ~5x faster than SP (SP sorts ~4x more elements); MP also beats noneq.\n\
         Caveat: the simulator models work, divergence and block tails but not SM occupancy,\n\
         so noneq's underutilization penalty (the paper's reason MP beats it) is not captured\n\
         here; the MP-vs-SP padding result is the reproduced claim.\n",
        table(&["variant", "sim time", "elements sorted", "vs MP"], &rows),
        el_sp as f64 / el_mp as f64,
        table(
            &["size class", "arrays", "elements", "padded", "net capacity"],
            &hist_rows
        )
    )
}

/// Human-readable label for a multipass size class: `[0,1]` for the
/// trivial class, `(lo,hi]` for pass bounds, `>b` for the open fallback.
fn class_label(upper: usize) -> String {
    if upper <= 1 {
        return "[0,1]".into();
    }
    if upper == usize::MAX {
        // The open class: everything above the last finite bound.
        let last = PASS_BOUNDS
            .iter()
            .copied()
            .rfind(|&b| b != usize::MAX)
            .unwrap_or(1);
        return format!(">{last}");
    }
    let lower = PASS_BOUNDS
        .iter()
        .copied()
        .rfind(|&b| b < upper)
        .unwrap_or(1);
    format!("({lower},{upper}]")
}

// ---------------------------------------------------------------------
// Fig. 8 — kernel variant times
// ---------------------------------------------------------------------

/// Fig. 8: `likelihood_comp` time for the four kernel variants.
pub fn fig8(scale: f64) -> String {
    let mut rows = Vec::new();
    for d in [ch1(scale), ch21(scale)] {
        let setup = kernel_setup(&d);
        let windows = sparse_windows(&d, scaled_window(256_000, scale), true);
        let mut row = vec![d.config.chr_name.clone()];
        let mut baseline = 0.0f64;
        for variant in KernelVariant::ALL {
            let mut t = 0.0;
            for sw in &windows {
                let words = setup.dev.upload(&sw.words);
                let (_, stats) = likelihood_comp_gpu(
                    &setup.dev,
                    variant,
                    &words,
                    &sw.spans,
                    setup.read_len,
                    &setup.tables,
                );
                t += stats.sim_time;
            }
            if variant == KernelVariant::Baseline {
                baseline = t;
            }
            row.push(format!("{} ({:.0}%)", secs(t), t / baseline * 100.0));
        }
        rows.push(row);
    }
    format!(
        "Fig. 8 — likelihood_comp kernel variants, simulated device time (scale {scale})\n{}\n\
         Paper shape: optimized ≈ 2.4x faster than baseline; shared alone → ~55% of baseline,\n\
         new table alone → ~78%; shared memory contributes more than the new table.\n",
        table(
            &[
                "dataset",
                "baseline",
                "w/ shared",
                "w/ new table",
                "optimized"
            ],
            &rows
        )
    )
}

// ---------------------------------------------------------------------
// Fig. 9 / Fig. 10 — compression studies
// ---------------------------------------------------------------------

/// Fig. 9: output size and output speed for SOAPsnp / SOAPsnp+gz / GSNP.
pub fn fig9(scale: f64) -> String {
    let mut size_rows = Vec::new();
    let mut speed_rows = Vec::new();
    for d in [ch1(scale), ch21(scale)] {
        let out = run_gsnp_cpu(&d, scale);
        // Plain text (SOAPsnp).
        let t0 = Instant::now();
        let mut text = Vec::new();
        for t in &out.tables {
            t.write_text(&mut text).expect("in-memory write");
        }
        let t_text = t0.elapsed().as_secs_f64();
        // gzip-class general-purpose compression of that text.
        let t0 = Instant::now();
        let gz = compress::lz::compress(&text);
        let t_gz = t0.elapsed().as_secs_f64() + t_text;
        // GSNP column compression: CPU wall and simulated-GPU time.
        let t0 = Instant::now();
        let mut col = Vec::new();
        for t in &out.tables {
            compress::column::write_window(&mut col, t);
        }
        let t_col_cpu = t0.elapsed().as_secs_f64();
        let dev = Device::m2050();
        let mut col_gpu = Vec::new();
        let mut t_col_gpu = 0.0;
        for t in &out.tables {
            let t0 = Instant::now();
            let stats = compress::column::write_window_gpu(&dev, &mut col_gpu, t);
            t_col_gpu += stats.sim_time + t0.elapsed().as_secs_f64() * 0.25;
        }
        assert_eq!(col, col_gpu, "GPU output must be byte-identical");

        size_rows.push(vec![
            d.config.chr_name.clone(),
            bytes(text.len() as u64),
            bytes(gz.len() as u64),
            bytes(col.len() as u64),
            ratio(text.len() as f64 / col.len() as f64),
            ratio(gz.len() as f64 / col.len() as f64),
        ]);
        speed_rows.push(vec![
            d.config.chr_name.clone(),
            secs(t_text),
            secs(t_gz),
            secs(t_col_cpu),
            secs(t_col_gpu),
            ratio(t_text / t_col_gpu),
        ]);
    }
    format!(
        "Fig. 9(a) — output size (scale {scale})\n{}\n\
         Paper shape: plain text 14–16x larger than GSNP; gzip ~1.5x larger than GSNP.\n\n\
         Fig. 9(b) — output speed (compression + serialization)\n{}\n\
         Paper shape: gzip ~3x slower than GSNP_CPU; GSNP ~3x faster again; 13–15x vs SOAPsnp.\n",
        table(
            &[
                "dataset",
                "SOAPsnp text",
                "text+gz",
                "GSNP",
                "text/GSNP",
                "gz/GSNP"
            ],
            &size_rows
        ),
        table(
            &[
                "dataset",
                "SOAPsnp",
                "SOAPsnp+gz",
                "GSNP_CPU",
                "GSNP(sim)",
                "SOAP/GSNP"
            ],
            &speed_rows
        )
    )
}

/// Fig. 10: decompression speed and compressed temporary-input size.
pub fn fig10(scale: f64) -> String {
    let mut dec_rows = Vec::new();
    let mut in_rows = Vec::new();
    for d in [ch1(scale), ch21(scale)] {
        let out = run_gsnp_cpu(&d, scale);
        let mut text = Vec::new();
        for t in &out.tables {
            t.write_text(&mut text).expect("in-memory write");
        }
        let gz = compress::lz::compress(&text);
        let mut col = Vec::new();
        for t in &out.tables {
            compress::column::write_window(&mut col, t);
        }
        // Decompression = restoring all rows from each representation.
        let t0 = Instant::now();
        let parsed = seqio::result::SnpTable::read_text(std::io::Cursor::new(text.as_slice()))
            .expect("own text")
            .rows
            .len();
        let t_text = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let unz = compress::lz::decompress(&gz).expect("own stream");
        let t_gz = t0.elapsed().as_secs_f64() + {
            let t0 = Instant::now();
            let n = seqio::result::SnpTable::read_text(std::io::Cursor::new(unz.as_slice()))
                .expect("own text")
                .rows
                .len();
            assert_eq!(n, parsed);
            t0.elapsed().as_secs_f64()
        };
        let t0 = Instant::now();
        let n: usize = compress::column::WindowStream::new(&col)
            .map(|t| t.expect("own stream").rows.len())
            .sum();
        assert_eq!(n, parsed);
        let t_col = t0.elapsed().as_secs_f64();
        dec_rows.push(vec![
            d.config.chr_name.clone(),
            secs(t_text),
            secs(t_gz),
            secs(t_col),
            ratio(t_text / t_col),
            ratio(t_gz / t_col),
        ]);

        // Temporary input file sizes.
        let raw = d.input_text_size();
        let codec = compress::input_codec::compress_reads(&d.config.chr_name, &d.reads);
        let mut raw_text = Vec::new();
        seqio::soap::write_alignments(&d.reads, &mut raw_text).expect("in-memory");
        let gz_in = compress::lz::compress(&raw_text);
        in_rows.push(vec![
            d.config.chr_name.clone(),
            bytes(raw),
            bytes(codec.len() as u64),
            bytes(gz_in.len() as u64),
            format!("{:.0}%", codec.len() as f64 / raw as f64 * 100.0),
        ]);
    }
    format!(
        "Fig. 10(a) — result decompression / sequential-read speed (scale {scale})\n{}\n\
         Paper shape: GSNP ~40x faster than re-parsing SOAPsnp text, ~6x faster than gzip.\n\n\
         Fig. 10(b) — temporary input size\n{}\n\
         Paper shape: compressed temporary input ≈ 1/3 of the original text input,\n\
         comparable to (slightly larger than) gzip.\n",
        table(
            &[
                "dataset",
                "SOAPsnp text",
                "text+gz",
                "GSNP",
                "text/GSNP",
                "gz/GSNP"
            ],
            &dec_rows
        ),
        table(
            &["dataset", "original", "GSNP temp", "gz", "temp/orig"],
            &in_rows
        )
    )
}

// ---------------------------------------------------------------------
// Fig. 11 — window-size sweep
// ---------------------------------------------------------------------

/// Fig. 11: GSNP end-to-end time and memory vs window size.
pub fn fig11(scale: f64) -> String {
    let d = ch1(scale);
    let mut rows = Vec::new();
    for paper_window in [
        32_000usize,
        64_000,
        128_000,
        192_000,
        256_000,
        360_000,
        450_000,
    ] {
        let window = scaled_window(paper_window, scale);
        let out = GsnpPipeline::new(GsnpConfig {
            window_size: window,
            ..Default::default()
        })
        .run(&d.reads, &d.reference, &d.priors);
        rows.push(vec![
            format!("{paper_window}"),
            format!("{window}"),
            secs(out.times.total()),
            bytes(out.stats.peak_device_bytes),
            bytes(out.stats.peak_host_bytes),
        ]);
    }
    format!(
        "Fig. 11 — GSNP time and memory vs window size, Ch.1 (scale {scale}; windows scaled alike)\n{}\n\
         Paper shape: time rises sharply below ~128,000 sites/window (launch overhead +\n\
         under-utilization), is flat above ~256,000; memory grows linearly with the window.\n",
        table(
            &["paper window", "scaled window", "total time", "device mem", "host mem"],
            &rows
        )
    )
}

// ---------------------------------------------------------------------
// Fig. 12 — whole-genome end-to-end comparison
// ---------------------------------------------------------------------

/// Fig. 12: SOAPsnp vs GSNP_CPU vs GSNP across all 24 chromosomes.
pub fn fig12(scale: f64) -> String {
    let chr_scale = scale * 0.3; // 24 chromosomes: keep the sweep tractable
    let mut rows = Vec::new();
    let (mut tot_soap, mut tot_cpu, mut tot_gsnp) = (0.0f64, 0.0, 0.0);
    for i in 1..=24 {
        let d = Dataset::generate(SynthConfig::chromosome(i, chr_scale));
        let soap = run_soapsnp(&d).times.total();
        let cpu = run_gsnp_cpu(&d, chr_scale).times.total();
        let gsnp = run_gsnp(&d, chr_scale).times.total();
        tot_soap += soap;
        tot_cpu += cpu;
        tot_gsnp += gsnp;
        rows.push(vec![
            d.config.chr_name.clone(),
            secs(soap),
            secs(cpu),
            secs(gsnp),
            ratio(soap / gsnp),
        ]);
    }
    rows.push(vec![
        "TOTAL".into(),
        secs(tot_soap),
        secs(tot_cpu),
        secs(tot_gsnp),
        ratio(tot_soap / tot_gsnp),
    ]);
    format!(
        "Fig. 12 — end-to-end comparison over all 24 chromosomes (scale {chr_scale})\n{}\n\
         Paper shape: GSNP ≥ 40x over SOAPsnp on every chromosome (3 days → 2 hours);\n\
         GSNP_CPU sits in between.\n",
        table(
            &["chromosome", "SOAPsnp", "GSNP_CPU", "GSNP(sim)", "speedup"],
            &rows
        )
    )
}

// ---------------------------------------------------------------------
// Extensions beyond the paper (DESIGN.md §7)
// ---------------------------------------------------------------------

/// Ablation: multipass size-class boundaries. The paper fixes six classes
/// `[0,1],(1,8],(8,16],(16,32],(32,64],(64,…]`; this sweep shows the
/// trade-off between padding waste (few classes) and per-pass launch
/// overhead (many classes).
pub fn ablation_sort_classes(scale: f64) -> String {
    use sortnet::multipass_sort_with_bounds;
    let d = ch1(scale);
    let dev = Device::m2050();
    let windows = sparse_windows(&d, d.config.num_sites as usize, false);
    let schemes: [(&str, &[usize]); 5] = [
        ("1 class (=SP)", &[usize::MAX]),
        ("2 classes", &[16, usize::MAX]),
        ("paper: 6 classes", &[8, 16, 32, 64, usize::MAX]),
        ("9 classes", &[4, 8, 12, 16, 24, 32, 64, 128, usize::MAX]),
        ("pow2 ladder", &[2, 4, 8, 16, 32, 64, 128, 256, usize::MAX]),
    ];
    let mut rows = Vec::new();
    let mut baseline_time = 0.0f64;
    for (i, (name, bounds)) in schemes.iter().enumerate() {
        let mut t = 0.0;
        let (mut padded, mut real) = (0u64, 0u64);
        for sw in &windows {
            let buf = dev.upload(&sw.words);
            let r = multipass_sort_with_bounds(&dev, &buf, &sw.spans, bounds);
            t += r.total().sim_time;
            padded += r.elements_sorted;
            real += r.elements_real;
        }
        if i == 2 {
            baseline_time = t;
        }
        rows.push(vec![
            name.to_string(),
            secs(t),
            format!("{:.2}x", padded as f64 / real.max(1) as f64),
        ]);
    }
    format!(
        "Ablation — multipass size-class boundaries, Ch.1 (scale {scale})
{}
         The paper's six classes sit near the optimum: coarser classing pays padding,
         much finer classing pays launch overhead without reducing padding meaningfully.
         (paper scheme total: {})
",
        table(&["classing", "sim time", "padding factor"], &rows),
        secs(baseline_time)
    )
}

/// Ablation: the two levels of RLE-DICT, separately and together, on the
/// pipeline's real quality-related columns.
pub fn ablation_rledict(scale: f64) -> String {
    use compress::bitio::BitWriter;
    let d = ch1(scale);
    let out = run_gsnp_cpu(&d, scale);
    let rows_all: Vec<seqio::result::SnpRow> = out.all_rows();
    type ColumnGetter = (&'static str, fn(&seqio::result::SnpRow) -> u32);
    let columns: [ColumnGetter; 4] = [
        ("quality", |r| u32::from(r.quality)),
        ("avg_qual_best", |r| u32::from(r.avg_qual_best)),
        ("depth", |r| u32::from(r.depth)),
        ("rank_sum", |r| u32::from(r.rank_sum_milli)),
    ];
    let mut out_rows = Vec::new();
    for (name, get) in columns {
        let col: Vec<u32> = rows_all.iter().map(get).collect();
        let raw = col.len() * 4;
        // RLE only: two u32 arrays.
        let (values, lengths) = compress::rle::encode(&col);
        let rle_only = (values.len() + lengths.len()) * 4 + 8;
        // DICT only.
        let mut w = BitWriter::new();
        compress::dict::encode(&col, &mut w);
        let dict_only = w.finish().len();
        // Both.
        let both = compress::rledict::encode_to_vec(&col).len();
        out_rows.push(vec![
            name.to_string(),
            bytes(raw as u64),
            bytes(rle_only as u64),
            bytes(dict_only as u64),
            bytes(both as u64),
            ratio(raw as f64 / both as f64),
        ]);
    }
    format!(
        "Ablation — RLE vs DICT vs RLE-DICT on real result columns, Ch.1 (scale {scale})
{}
         Neither level alone wins everywhere; together they compound (§V-B's design).
",
        table(
            &[
                "column",
                "raw",
                "RLE only",
                "DICT only",
                "RLE-DICT",
                "vs raw"
            ],
            &out_rows
        )
    )
}

/// Extension: calling accuracy against the synthetic ground truth —
/// the sanity check the paper delegates to the SOAPsnp literature.
pub fn accuracy(scale: f64) -> String {
    use gsnp_core::accuracy::{quality_sweep, titv_ratio};
    let d = ch1(scale);
    let out = run_gsnp_cpu(&d, scale);
    let rows = out.all_rows();
    let sweep = quality_sweep(&rows, &d.truth, &[0, 10, 20, 30, 40, 60]);
    let table_rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|(q, c)| {
            vec![
                format!("Q>={q}"),
                format!("{}", c.true_positives),
                format!("{}", c.false_positives),
                format!("{}", c.false_negatives),
                format!("{:.3}", c.precision()),
                format!("{:.3}", c.recall()),
                format!("{:.3}", c.f1()),
                format!("{:.3}", c.genotype_concordance()),
            ]
        })
        .collect();
    format!(
        "Extension — calling accuracy vs planted truth, Ch.1 (scale {scale}; {} planted SNPs)
{}
         ti/tv of Q>=20 calls: {:.2} (generator plants at 2:1)
",
        d.truth.len(),
        table(
            &[
                "threshold",
                "TP",
                "FP",
                "FN",
                "precision",
                "recall",
                "F1",
                "GT concord"
            ],
            &table_rows
        ),
        titv_ratio(&rows, 20)
    )
}

/// Extension — the streaming window-loop executor (DESIGN.md §4): loop
/// wall-clock and per-stage busy/stall at pipeline depth 1..4, Ch.1.
///
/// The simulated device completes launches instantly, so to expose the
/// overlap a real GPU provides, the device is *paced*: every launch and
/// transfer occupies the device for `sim_time × pacing` of real time
/// (releasing the host core, like a thread blocked on a stream sync).
/// Pacing is calibrated from an unpaced serial probe so one window's
/// device occupancy ≈ 1.5× the host work of the other three stages — the
/// regime where double buffering pays, and conservative relative to the
/// paper's hardware, where kernels are far slower than this host's
/// per-window bookkeeping.
pub fn pipeline_overlap(scale: f64) -> String {
    let d = ch1(scale);
    let cfg = |depth: usize, pacing: f64| GsnpConfig {
        window_size: scaled_window(256_000, scale),
        device: DeviceConfig::tesla_m2050().paced(pacing),
        pipeline_depth: depth,
        ..Default::default()
    };

    let probe = GsnpPipeline::new(cfg(1, 0.0)).run(&d.reads, &d.reference, &d.priors);
    let po = probe.stats.overlap;
    let host_other = po.read.busy + po.posterior.busy + po.output.busy;
    // Modelled device seconds charged inside the device stage (h2d, sort,
    // comp, recycle): the components whose `times` are pure sim time plus
    // the h2d surcharge on counting.
    let sim_device = (probe.times.counting - probe.wall.counting)
        + probe.times.likelihood_sort
        + probe.times.likelihood_comp
        + probe.times.recycle;
    let pacing = if sim_device > 0.0 {
        1.5 * host_other / sim_device
    } else {
        0.0
    };

    let mut rows = Vec::new();
    let mut serial_wall = f64::NAN;
    let mut depth2_speedup = f64::NAN;
    let mut stage_breakdown = String::new();
    for depth in [1usize, 2, 3, 4] {
        // Every run is traced (uniform overhead keeps the sweep fair);
        // the depth-2 trace feeds the per-stage breakdown below.
        let rec = Arc::new(TraceRecorder::new(1 << 16));
        let mut c = cfg(depth, pacing);
        c.trace = Some(Arc::clone(&rec));
        let out = GsnpPipeline::new(c).run(&d.reads, &d.reference, &d.priors);
        let o = out.stats.overlap;
        if depth == 1 {
            serial_wall = o.wall;
        }
        let speedup = serial_wall / o.wall;
        if depth == 2 {
            depth2_speedup = speedup;
            let snap = rec.snapshot();
            gsnp_core::verify_overlap_consistency(&snap, &o)
                .expect("trace must reconcile with OverlapStats");
            stage_breakdown = stage_trace_table(&snap);
        }
        rows.push(vec![
            format!("{depth}"),
            secs(o.wall),
            ratio(speedup),
            format!("{:.2}", o.achieved_depth()),
            secs(o.device.busy),
            secs(o.read.busy + o.posterior.busy + o.output.busy),
            secs(o.device.stall_in + o.device.stall_out),
        ]);
    }
    format!(
        "Extension — streaming window-loop executor, Ch.1 (scale {scale}; paced device x{pacing:.1})
{}
Per-stage breakdown at depth 2, re-derived from the trace spans (the
verifier asserts these equal OverlapStats before the table is printed):
{stage_breakdown}
Paper shape: the §IV pipeline overlaps host stages with device kernels;
depth 2 (double buffering) should recover >=1.25x over the serial loop
(measured {depth2_speedup:.2}x), with diminishing returns at deeper queues
because one stage — the device — dominates.
",
        table(
            &[
                "depth",
                "loop wall",
                "speedup",
                "achieved depth",
                "device busy",
                "other busy",
                "device stall",
            ],
            &rows
        )
    )
}

/// Per-stage busy/stall table recomputed purely from a run's trace spans
/// (one row per `pipeline`-process track: the read stage, each device
/// lane, posterior, output). Shared by `pipeline_overlap` and `scaling`.
fn stage_trace_table(snap: &TraceSnapshot) -> String {
    let mut rows = Vec::new();
    for (i, tr) in snap.tracks.iter().enumerate() {
        if tr.process != "pipeline" {
            continue;
        }
        let mut busy = 0.0;
        let mut stall_in = 0.0;
        let mut stall_out = 0.0;
        let mut windows = 0u64;
        let mut steals = 0u64;
        for e in snap.events.iter().filter(|e| e.track.0 as usize == i) {
            let name = snap.name(e.name);
            match e.kind {
                gpu_sim::EventKind::Span { dur, .. } => match name {
                    "stall_in" => stall_in += dur,
                    "stall_out" => stall_out += dur,
                    _ => {
                        busy += dur;
                        if name == "window" {
                            windows += 1;
                        }
                    }
                },
                gpu_sim::EventKind::Instant if name == "steal" => steals += 1,
                _ => {}
            }
        }
        rows.push(vec![
            tr.thread.clone(),
            secs(busy),
            secs(stall_in),
            secs(stall_out),
            if tr.thread.starts_with("device lane") {
                format!("{windows}/{steals}")
            } else {
                "-".into()
            },
        ]);
    }
    table(
        &[
            "stage (trace track)",
            "busy",
            "stall in",
            "stall out",
            "windows/steals",
        ],
        &rows,
    )
}

/// Extension — the buffer-recycling window loop (DESIGN.md §5): wall-clock
/// of the window loop with pooled device buffers + host arenas (`pooled`,
/// the default since the allocation-free loop landed) against the
/// fresh-allocation baseline those optimizations replaced, at serial and
/// double-buffered depth. Unpaced: the device completes instantly, so the
/// loop wall is exactly the host-side work the pools remove (allocation,
/// zeroing sweeps, free-list churn). Best-of-N to suppress single-core
/// scheduler noise.
pub fn buffer_pool(scale: f64) -> String {
    let d = ch1(scale);
    let cfg = |pooled: bool, depth: usize| GsnpConfig {
        window_size: scaled_window(256_000, scale),
        pipeline_depth: depth,
        pooled,
        ..Default::default()
    };
    const REPS: usize = 5;
    let mut rows = Vec::new();
    let mut depth2_speedup = f64::NAN;
    for depth in [1usize, 2] {
        let mut wall = [f64::INFINITY; 2];
        let mut last = [None, None];
        for (i, pooled) in [false, true].into_iter().enumerate() {
            for _ in 0..REPS {
                let out =
                    GsnpPipeline::new(cfg(pooled, depth)).run(&d.reads, &d.reference, &d.priors);
                wall[i] = wall[i].min(out.stats.overlap.wall);
                last[i] = Some(out);
            }
        }
        let pooled_out = last[1].as_ref().expect("ran");
        let speedup = wall[0] / wall[1];
        if depth == 2 {
            depth2_speedup = speedup;
        }
        rows.push(vec![
            format!("{depth}"),
            secs(wall[0]),
            secs(wall[1]),
            ratio(speedup),
            format!("{:.0}%", 100.0 * pooled_out.stats.pool.hit_rate()),
            format!(
                "{}/{}",
                pooled_out.stats.arena.hits, pooled_out.stats.arena.misses
            ),
            bytes(pooled_out.stats.pool.high_water_bytes),
        ]);
    }
    format!(
        "Extension — pooled vs fresh window-loop allocation, Ch.1 (scale {scale}; unpaced, best of {REPS})
{}
Paper shape: sparse `recycle` is \"trivial\" (SS-IV-B) because nothing is
freed or re-allocated between windows; the pooled loop realizes that —
steady-state windows perform zero heap allocations
(tests/alloc_steady_state.rs) and the recycled path stays byte-identical
to fresh allocation (tests/pool_parity.rs). Measured depth-2 window-loop
speedup over the fresh-allocation baseline: {depth2_speedup:.2}x.
",
        table(
            &[
                "depth",
                "fresh wall",
                "pooled wall",
                "speedup",
                "pool hit rate",
                "arena hit/miss",
                "pool high-water",
            ],
            &rows
        )
    )
}

/// Extension — multi-device sharded window loop (DESIGN.md §8):
/// window-loop throughput vs `num_devices` at pipeline depths 1/2/4, Ch.1.
///
/// Same pacing machinery as `pipeline_overlap`, but calibrated so one
/// run's paced device occupancy ≈ 8× the *total* host work (all stages,
/// including the device workers' own host-side wall) — the device-bound
/// regime where adding GPUs pays. Each paced device sleeps on its own
/// worker thread, so N workers genuinely overlap even on one core and
/// the sweep measures the dispatcher, not the simulator. Every sharded
/// run is asserted byte-identical to the serial single-device output.
pub fn scaling(scale: f64) -> String {
    let d = ch1(scale);
    let cfg = |depth: usize, devices: usize, pacing: f64| GsnpConfig {
        window_size: scaled_window(256_000, scale),
        device: DeviceConfig::tesla_m2050().paced(pacing),
        pipeline_depth: depth,
        num_devices: devices,
        // Host-side output compression (byte-identical to the GPU path —
        // `compress::column` parity tests): the paced output-stage column
        // kernels are serial per-window sleeps in the reassembly stage
        // that no amount of device sharding can hide, and the window-loop
        // device stage is what this sweep measures.
        gpu_output: false,
        ..Default::default()
    };

    let probe = GsnpPipeline::new(cfg(1, 1, 0.0)).run(&d.reads, &d.reference, &d.priors);
    let po = &probe.stats.overlap;
    // Unpaced, device-lane busy is pure host wall (kernel bodies +
    // counting); fold it in so pacing dominates everything the host does.
    let host_device: f64 = po.devices.iter().map(|l| l.stage.busy).sum();
    let host_total = po.read.busy + po.posterior.busy + po.output.busy + host_device;
    let sim_device = (probe.times.counting - probe.wall.counting)
        + probe.times.likelihood_sort
        + probe.times.likelihood_comp
        + probe.times.recycle;
    let pacing = if sim_device > 0.0 {
        8.0 * host_total / sim_device
    } else {
        0.0
    };

    let mut rows = Vec::new();
    let mut speedups_at_4 = Vec::new();
    let mut lane_breakdown = String::new();
    for depth in [1usize, 2, 4] {
        let mut wall_1dev = f64::NAN;
        for devices in [1usize, 2, 3, 4] {
            let rec = Arc::new(TraceRecorder::new(1 << 16));
            let mut c = cfg(depth, devices, pacing);
            c.trace = Some(Arc::clone(&rec));
            let out = GsnpPipeline::new(c).run(&d.reads, &d.reference, &d.priors);
            // Traced sharded runs stay byte-identical to the untraced
            // serial probe: tracing observes, never perturbs.
            assert_eq!(
                out.compressed, probe.compressed,
                "sharded output diverged at depth {depth} x {devices} devices"
            );
            let o = &out.stats.overlap;
            if depth == 2 && devices == 4 {
                let snap = rec.snapshot();
                gsnp_core::verify_overlap_consistency(&snap, o)
                    .expect("trace must reconcile with OverlapStats");
                lane_breakdown = stage_trace_table(&snap);
            }
            if devices == 1 {
                wall_1dev = o.wall;
            }
            let speedup = wall_1dev / o.wall;
            if devices == 4 {
                speedups_at_4.push((depth, speedup));
            }
            let busy: Vec<String> = o
                .devices
                .iter()
                .map(|l| format!("{:.2}", l.stage.busy))
                .collect();
            rows.push(vec![
                format!("{depth}"),
                format!("{devices}"),
                secs(o.wall),
                format!("{:.2}", out.stats.num_sites as f64 / o.wall / 1e6),
                ratio(speedup),
                format!("{}", o.steals_total()),
                busy.join("/"),
            ]);
        }
    }
    let summary: Vec<String> = speedups_at_4
        .iter()
        .map(|(depth, s)| format!("depth {depth}: {s:.2}x"))
        .collect();
    format!(
        "Extension — multi-device sharded window loop, Ch.1 (scale {scale}; paced device x{pacing:.1})
{}
Speedup at 4 devices vs 1 (same depth): {}.
Per-stage/per-lane breakdown at depth 2 x 4 devices, re-derived from the
trace spans (the verifier asserts these equal OverlapStats first):
{lane_breakdown}
Paper shape: with the device stage dominant, sharding windows across N
devices through the work-stealing dispatcher approaches Nx on the window
loop (reassembly keeps output byte-identical, asserted above); returns
taper once the loop goes host-bound.
",
        table(
            &[
                "depth",
                "devices",
                "loop wall",
                "Msites/s",
                "speedup",
                "steals",
                "per-device busy (s)",
            ],
            &rows
        ),
        summary.join(", ")
    )
}

// ---------------------------------------------------------------------
// Extension — mega-batched launches (launches/site before/after)
// ---------------------------------------------------------------------

/// Extension: the launch-batching sweep. The same Ch.1 workload runs at
/// batch widths 1/2/4/8 (batch 1 IS the unbatched reference — the loop
/// has a single always-batched code path); the report tracks kernel
/// launches, launches/site, the fixed overhead charged, and modelled
/// device seconds, asserts byte-identity at every width, asserts the
/// 5x-or-better launches/site reduction the batching exists for, and emits
/// `BENCH_launch_batching.json` so the perf trajectory is recorded.
pub fn launch_batching(scale: f64) -> String {
    let d = ch1(scale);
    let cfg = |launch_batch: usize| GsnpConfig {
        // Quarter-size windows: the sweep needs several batches of 8 in
        // flight for the amortization to show (a mega-batch over 2
        // windows can at best halve the launch bill).
        window_size: scaled_window(64_000, scale),
        launch_batch,
        // Serial loop, GPU output: every launch the batch can coalesce —
        // sort passes, the fused counting+likelihood kernel, and the
        // scan/RLE/DICT output chain — is on the measured path.
        gpu_output: true,
        ..Default::default()
    };

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut baseline: Option<(Vec<u8>, u64, f64)> = None; // bytes, launches, launches/site
    let mut last_per_site = f64::NAN;
    for batch in [1usize, 2, 4, 8] {
        let out = GsnpPipeline::new(cfg(batch)).run(&d.reads, &d.reference, &d.priors);
        let launches: u64 = out.stats.ledgers.iter().map(|l| l.launches).sum();
        let overhead: f64 = out
            .stats
            .kernel_launches
            .iter()
            .map(|t| t.overhead_seconds)
            .sum();
        let sites = out.stats.num_sites.max(1) as f64;
        let per_site = launches as f64 / sites;
        last_per_site = per_site;
        match &baseline {
            None => baseline = Some((out.compressed.clone(), launches, per_site)),
            Some((bytes, _, _)) => assert_eq!(
                &out.compressed, bytes,
                "batch {batch} output diverged from batch 1"
            ),
        }
        let (_, base_launches, _) = baseline.as_ref().unwrap();
        rows.push(vec![
            format!("{batch}"),
            format!("{launches}"),
            format!("{per_site:.4}"),
            format!("{overhead:.6}"),
            ratio(*base_launches as f64 / launches as f64),
            secs(out.times.total()),
            secs(out.stats.overlap.wall),
        ]);
        json_rows.push(format!(
            "    {{\"batch\": {batch}, \"launches\": {launches}, \"launches_per_site\": {per_site:.6}, \"overhead_seconds\": {overhead:.9}, \"device_model_seconds\": {:.9}}}",
            out.times.total()
        ));
    }
    let (_, _, base_per_site) = baseline.unwrap();
    let reduction = base_per_site / last_per_site;
    assert!(
        reduction >= 5.0,
        "launch batching must cut launches/site >=5x (got {reduction:.2}x)"
    );

    // Launch counts are deterministic at a given scale, so the check
    // tolerance is tight; `dir: min` — only losing reduction regresses.
    let json = crate::check::bench_json(
        "launch_batching",
        scale,
        "reduction_at_batch_8",
        &[("reduction_at_batch_8", reduction)],
        &[("reduction_at_batch_8", 0.05, "min")],
        true,
        &json_rows,
    );
    let json_note = match std::fs::write("BENCH_launch_batching.json", &json) {
        Ok(()) => "Summary written to BENCH_launch_batching.json.".to_string(),
        Err(e) => format!("(BENCH_launch_batching.json not written: {e})"),
    };

    format!(
        "Extension — mega-batched multi-window launches, Ch.1 (scale {scale})
{}
Launches/site reduced {reduction:.1}x at batch 8 (output byte-identical at
every width, asserted above). {json_note}
Paper shape: the cost model charges a fixed overhead per launch (the
paper's kernel-invocation cost); coalescing N windows' sparse arrays into
one payload and issuing one launch per kernel per batch — with counting
fused into the likelihood scan — divides that fixed cost by N while the
per-site work stays bit-identical, the gpuPairHMM/Endeavor batching
shape applied to GSNP's window loop.
",
        table(
            &[
                "batch",
                "launches",
                "launches/site",
                "overhead (s)",
                "vs batch 1",
                "device model",
                "loop wall",
            ],
            &rows
        )
    )
}

// ---------------------------------------------------------------------
// Extension — pluggable compute backends (sim vs native vs auto)
// ---------------------------------------------------------------------

/// Extension: the compute-backend sweep. The launch_batching workload
/// (many quarter-size windows, GPU output on the measured path) runs once
/// per [`gpu_sim::BackendChoice`]; the report records end-to-end pipeline
/// wall clock (best of N), the per-backend launch tallies, and the Auto
/// dispatcher's decisions, asserts byte-identity across backends, asserts
/// the ≥2x native-over-sim wall-clock win at recorded scales, and emits
/// `BENCH_native_backend.json` so the perf trajectory is recorded.
pub fn native_backend(scale: f64) -> String {
    use gpu_sim::{BackendChoice, BackendTallies};
    // Wall-clock comparison needs runs long enough to swamp fixed host
    // costs (table setup, window bring-up), so this experiment runs the
    // launch_batching workload at 10x the harness scale — same shape,
    // more windows.
    let d = ch1(scale * 10.0);
    let cfg = |backend: BackendChoice| GsnpConfig {
        // The launch_batching workload: quarter-size windows so the run
        // spans many launches, with the scan/RLE/DICT output chain on the
        // measured path. Serial loop — the backends differ only in how a
        // launch executes, so the single-threaded loop isolates that.
        window_size: scaled_window(64_000, scale * 10.0),
        gpu_output: true,
        backend,
        ..Default::default()
    };
    const REPS: usize = 3;

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut sim_wall = f64::NAN;
    let mut native_wall = f64::NAN;
    let mut auto_wall = f64::NAN;
    let mut baseline: Option<Vec<u8>> = None;
    for choice in [
        BackendChoice::Sim,
        BackendChoice::Native,
        BackendChoice::Auto,
    ] {
        let mut wall = f64::INFINITY;
        let mut last = None;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let out = GsnpPipeline::new(cfg(choice)).run(&d.reads, &d.reference, &d.priors);
            wall = wall.min(t0.elapsed().as_secs_f64());
            last = Some(out);
        }
        let out = last.expect("ran");
        match &baseline {
            None => baseline = Some(out.compressed.clone()),
            Some(bytes) => assert_eq!(
                &out.compressed,
                bytes,
                "{} output diverged from sim",
                choice.name()
            ),
        }
        let mut tallies = BackendTallies::default();
        for led in &out.stats.ledgers {
            tallies.sum(&led.backend);
        }
        match choice {
            BackendChoice::Sim => sim_wall = wall,
            BackendChoice::Native => native_wall = wall,
            BackendChoice::Auto => auto_wall = wall,
        }
        rows.push(vec![
            choice.name().into(),
            secs(wall),
            ratio(sim_wall / wall),
            format!("{}", tallies.sim),
            format!("{}", tallies.native),
            format!("{}/{}", tallies.auto_sim, tallies.auto_native),
        ]);
        json_rows.push(format!(
            "    {{\"backend\": \"{}\", \"wall_seconds\": {wall:.6}, \"speedup_vs_sim\": {:.4}, \"sim_launches\": {}, \"native_launches\": {}, \"auto_decisions_sim\": {}, \"auto_decisions_native\": {}}}",
            choice.name(),
            sim_wall / wall,
            tallies.sim,
            tallies.native,
            tallies.auto_sim,
            tallies.auto_native
        ));
    }
    let speedup = sim_wall / native_wall;
    let auto_speedup = sim_wall / auto_wall;
    // Below recorded scale the windows are a few hundred sites and fixed
    // host costs dominate both backends; the ≥2x bar is asserted where it
    // is recorded. (Recorded margin on a single-core host is ~2.1x — the
    // rayon block fan-out contributes nothing there; multi-core hosts
    // only widen it.)
    if scale >= 0.01 {
        assert!(
            speedup >= 2.0,
            "native backend must be >=2x faster than sim end-to-end (got {speedup:.2}x)"
        );
        // The Auto dispatcher must capture most of the native win: its
        // policy routes every large launch natively and only keeps
        // sub-`native_min_blocks` grids (and sim-only observability) on
        // the simulator, so it cannot regress to sim-like wall clock.
        assert!(
            auto_speedup >= 1.5,
            "auto dispatch must recover >=1.5x over sim (got {auto_speedup:.2}x)"
        );
    }

    // Wall-clock ratios on a shared CI host are noisy; 30% headroom with
    // `dir: min` — only losing speedup regresses, faster is always fine.
    let json = crate::check::bench_json(
        "native_backend",
        scale,
        "native_speedup_vs_sim",
        &[
            ("native_speedup_vs_sim", speedup),
            ("auto_speedup_vs_sim", auto_speedup),
        ],
        &[
            ("native_speedup_vs_sim", 0.3, "min"),
            ("auto_speedup_vs_sim", 0.3, "min"),
        ],
        true,
        &json_rows,
    );
    let json_note = match std::fs::write("BENCH_native_backend.json", &json) {
        Ok(()) => "Summary written to BENCH_native_backend.json.".to_string(),
        Err(e) => format!("(BENCH_native_backend.json not written: {e})"),
    };

    format!(
        "Extension — compute backends on the launch_batching workload, Ch.1 (scale {scale}; best of {REPS})
{}
Native backend end-to-end speedup over the instrumented simulator:
{speedup:.2}x; Auto dispatch recovers {auto_speedup:.2}x of it (output
byte-identical across all three backends, asserted above). {json_note}
Paper shape: the simulator pays per-access bookkeeping (counters, cost
model, shared-memory shadowing) on every word a kernel touches — the
instrumentation that reproduces Table III. The native backend runs the
same kernel bodies over the same buffers with none of it (rayon across
blocks, plain loads/stores inside), so results stay bit-identical while
wall clock drops; Auto picks per launch, falling back to sim whenever a
launch needs sim-only observability.
",
        table(
            &[
                "backend",
                "pipeline wall",
                "vs sim",
                "sim launches",
                "native launches",
                "auto sim/native",
            ],
            &rows
        )
    )
}

// ---------------------------------------------------------------------
// Extension — cohort-scale multi-sample calling
// ---------------------------------------------------------------------

/// Extension: the cohort amortization sweep. An 8-sample synthetic cohort
/// over one Ch.21-scale reference is called once through
/// [`gsnp_core::CohortPipeline`] and compared against the honest
/// baseline: 8 fully independent single-sample runs, each paying its own
/// calibration, score-table upload and window bring-up. The report
/// records both wall clocks at N ∈ {1, 2, 4, 8}, asserts the ≥1.5x
/// cohort win at N=8 at recorded scales, asserts per-sample
/// byte-identity (against a shared-tables single run — pooled
/// calibration IS the shared work) and the O(devices) table-upload
/// relation, and emits `BENCH_cohort_amortization.json`.
pub fn cohort_amortization(scale: f64) -> String {
    use gsnp_core::{CohortCallConfig, CohortPipeline, SampleReads, SharedTables};
    use seqio::synth::{Cohort, CohortConfig};

    // The classic cohort regime: many LOW-coverage samples over one
    // reference (1000-Genomes-style population calling sequences samples
    // at 2–6x and recovers power from the cohort, not from depth). Low
    // depth is also where amortization matters most — the per-sample
    // observation-proportional work shrinks while the reference-shaped
    // work each independent run would repay stays fixed.
    let mut base_synth = SynthConfig::ch21_mini(scale);
    base_synth.depth = 3.0;
    let cfg = || GsnpConfig {
        window_size: scaled_window(256_000, scale),
        launch_batch: 8,
        // The production configuration: Auto routes every large launch to
        // the native executor (byte-identical by construction) and both
        // sides of the comparison get it, so the ratio isolates what the
        // cohort amortizes rather than simulator bookkeeping.
        backend: gpu_sim::BackendChoice::Auto,
        ..Default::default()
    };
    let num_devices = 1u64;

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut speedup_at_8 = f64::NAN;
    for num_samples in [1usize, 2, 4, 8] {
        let c = Cohort::generate(CohortConfig {
            base: base_synth.clone(),
            num_samples,
            shared_rate: 0.6,
        });
        let inputs: Vec<SampleReads<'_>> = c
            .samples
            .iter()
            .map(|s| SampleReads {
                name: &s.name,
                reads: &s.reads,
            })
            .collect();

        // The baseline: N fully independent runs, each calibrating and
        // uploading for itself — what N users without a cohort pipeline
        // would pay. (Their summed ledger H2D also anchors the upload
        // relation below: score-table dimensions don't depend on the
        // calibration values, so each run pays exactly one table upload.)
        let t0 = Instant::now();
        let mut singles_h2d = 0u64;
        for s in &c.samples {
            let single = GsnpPipeline::new(cfg()).run(&s.reads, &c.reference, &c.priors);
            singles_h2d += single
                .stats
                .ledgers
                .iter()
                .map(|l| l.counters.h2d_bytes)
                .sum::<u64>();
        }
        let singles_wall = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let out = CohortPipeline::new(CohortCallConfig {
            base: cfg(),
            ..Default::default()
        })
        .run(&inputs, &c.reference, &c.priors);
        let cohort_wall = t0.elapsed().as_secs_f64();

        // Correctness riding along with the measurement: lane 0 must be
        // byte-identical to a single run injected with the cohort's
        // pooled tables, and the ledger H2D bytes must show one table
        // upload per device, not per sample.
        let shared = std::sync::Arc::new(SharedTables::calibrate_pooled(
            c.samples.iter().map(|s| s.reads.as_slice()),
            &c.reference,
            &cfg().params,
        ));
        let single = GsnpPipeline::new(GsnpConfig {
            shared_tables: Some(std::sync::Arc::clone(&shared)),
            ..cfg()
        })
        .run(&c.samples[0].reads, &c.reference, &c.priors);
        assert_eq!(
            out.samples[0].compressed, single.compressed,
            "cohort lane 0 diverged from the shared-tables single run at N={num_samples}"
        );
        let cohort_h2d: u64 = out.stats.ledgers.iter().map(|l| l.counters.h2d_bytes).sum();
        let table = out.stats.table_bytes;
        assert_eq!(
            cohort_h2d,
            singles_h2d - num_samples as u64 * table + num_devices * table,
            "cohort table uploads must be O(devices), not O(samples) at N={num_samples}"
        );

        let speedup = singles_wall / cohort_wall;
        if num_samples == 8 {
            speedup_at_8 = speedup;
        }
        rows.push(vec![
            format!("{num_samples}"),
            secs(singles_wall),
            secs(cohort_wall),
            ratio(speedup),
            format!("{}", out.stats.table_bytes * num_devices),
            format!("{}", out.stats.table_bytes * num_samples as u64),
        ]);
        json_rows.push(format!(
            "    {{\"samples\": {num_samples}, \"independent_wall_seconds\": {singles_wall:.6}, \"cohort_wall_seconds\": {cohort_wall:.6}, \"speedup\": {speedup:.4}, \"table_upload_bytes\": {}, \"independent_upload_bytes\": {}}}",
            out.stats.table_bytes * num_devices,
            out.stats.table_bytes * num_samples as u64
        ));
    }
    // Below recorded scale the genome is a few thousand sites and the
    // fixed per-run bring-up is noise-dominated; the bar is asserted
    // where it is recorded.
    if scale >= 0.01 {
        assert!(
            speedup_at_8 >= 1.5,
            "cohort at N=8 must beat 8 independent runs by >=1.5x (got {speedup_at_8:.2}x)"
        );
    }

    // Wall-clock ratio of two timed loops — same 30% `dir: min` headroom
    // as native_backend.
    let json = crate::check::bench_json(
        "cohort_amortization",
        scale,
        "speedup_at_8_samples",
        &[("speedup_at_8_samples", speedup_at_8)],
        &[("speedup_at_8_samples", 0.3, "min")],
        true,
        &json_rows,
    );
    let json_note = match std::fs::write("BENCH_cohort_amortization.json", &json) {
        Ok(()) => "Summary written to BENCH_cohort_amortization.json.".to_string(),
        Err(e) => format!("(BENCH_cohort_amortization.json not written: {e})"),
    };

    format!(
        "Extension — cohort-scale multi-sample calling, Ch.21-shaped cohort (scale {scale})
{}
Cohort over 8 samples beat 8 independent runs {speedup_at_8:.2}x
(per-sample output byte-identical to a shared-tables single run, and table
uploads O(devices), both asserted above). {json_note}
Paper shape: everything reference-shaped — quality calibration, the
cal_p/new_p/log score tables, their one-per-device upload, and the window
scan — is paid once for the whole cohort instead of once per sample; the
per-sample work (counting, sort, likelihood, posterior, output) rides the
same mega-batched launches, so the fixed per-launch cost is also divided
across the N samples sharing each window batch.
",
        table(
            &[
                "samples",
                "N independent",
                "cohort",
                "speedup",
                "cohort upload B",
                "independent upload B",
            ],
            &rows
        )
    )
}

/// One registered experiment: `(name, description, runner)`.
pub type Experiment = (&'static str, &'static str, fn(f64) -> String);

/// Every experiment in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("table1", "SOAPsnp component time breakdown", table1),
        ("table2", "dataset characteristics", table2),
        ("table3", "likelihood_comp hardware counters", table3),
        ("table4", "GSNP component breakdown + speedups", table4),
        ("fig4a", "dense memory-access estimate vs measured", fig4a),
        ("fig4b", "base_occ sparsity histogram", fig4b),
        ("fig5", "likelihood: dense/sparse x CPU/GPU", fig5),
        ("fig6", "likelihood_sort vs likelihood_comp", fig6),
        ("fig7a", "batch sort throughput", fig7a),
        ("fig7b", "multipass vs single-pass sorting", fig7b),
        ("fig8", "likelihood_comp kernel variants", fig8),
        ("fig9", "output size and speed", fig9),
        ("fig10", "decompression speed + temp input size", fig10),
        ("fig11", "window-size sweep", fig11),
        ("fig12", "whole-genome end-to-end", fig12),
        (
            "ablation_sort",
            "EXT: multipass class-boundary sweep",
            ablation_sort_classes,
        ),
        (
            "ablation_rledict",
            "EXT: RLE vs DICT vs RLE-DICT",
            ablation_rledict,
        ),
        (
            "accuracy",
            "EXT: precision/recall vs planted truth",
            accuracy,
        ),
        (
            "pipeline_overlap",
            "EXT: streaming executor depth sweep",
            pipeline_overlap,
        ),
        (
            "buffer_pool",
            "EXT: pooled vs fresh window-loop allocation",
            buffer_pool,
        ),
        ("scaling", "EXT: multi-device scaling sweep", scaling),
        (
            "launch_batching",
            "EXT: mega-batched launch sweep (launches/site)",
            launch_batching,
        ),
        (
            "native_backend",
            "EXT: sim vs native vs auto compute backends",
            native_backend,
        ),
        (
            "cohort_amortization",
            "EXT: cohort vs N independent single-sample runs",
            cohort_amortization,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SCALE: f64 = 0.002;

    #[test]
    fn small_experiments_produce_reports() {
        // Smoke-test the cheap experiments end to end at minimal scale.
        for name in ["table2", "fig4b", "fig7b", "scaling"] {
            let (_, _, f) = all_experiments()
                .into_iter()
                .find(|(n, _, _)| *n == name)
                .unwrap();
            let report = f(TEST_SCALE);
            assert!(
                report.contains("Paper shape") || report.contains("paper"),
                "{name}"
            );
            assert!(report.lines().count() > 4, "{name} too short:\n{report}");
        }
    }

    #[test]
    fn launch_batching_meets_reduction_bar() {
        // The runner itself asserts the >=5x launches/site reduction and
        // byte-identity across widths; surviving at minimal scale is the
        // test. Drop the JSON side-product — recorded summaries come
        // from the `reproduce` binary, not `cargo test`.
        let report = launch_batching(TEST_SCALE);
        let _ = std::fs::remove_file("BENCH_launch_batching.json");
        assert!(report.contains("Paper shape"));
        assert!(report.contains("byte-identical"));
    }

    #[test]
    fn native_backend_stays_byte_identical() {
        // The runner asserts byte-identity across sim/native/auto on every
        // run; the >=2x wall-clock bar is only enforced at recorded scales
        // (fixed host costs dominate tiny windows). Drop the JSON
        // side-product — recorded summaries come from `reproduce`.
        let report = native_backend(TEST_SCALE);
        let _ = std::fs::remove_file("BENCH_native_backend.json");
        assert!(report.contains("byte-identical"));
        assert!(report.contains("native"));
        assert!(report.contains("auto"));
    }

    #[test]
    fn experiment_registry_is_complete() {
        let names: Vec<_> = all_experiments().iter().map(|(n, _, _)| *n).collect();
        // Every table and figure of the paper's evaluation is present.
        for required in [
            "table1",
            "table2",
            "table3",
            "table4",
            "fig4a",
            "fig4b",
            "fig5",
            "fig6",
            "fig7a",
            "fig7b",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "pipeline_overlap",
            "scaling",
            "launch_batching",
            "native_backend",
            "cohort_amortization",
        ] {
            assert!(names.contains(&required), "{required} missing");
        }
    }

    #[test]
    fn cohort_amortization_holds_its_invariants() {
        // The runner asserts per-sample byte-identity and the O(devices)
        // upload relation at every N; the ≥1.5x throughput bar is only
        // enforced at recorded scales (bring-up noise dominates tiny
        // genomes). Drop the JSON side-product — recorded summaries come
        // from `reproduce`.
        let report = cohort_amortization(TEST_SCALE);
        let _ = std::fs::remove_file("BENCH_cohort_amortization.json");
        assert!(report.contains("byte-identical"));
        assert!(report.contains("O(devices)"));
    }
}
