//! Bench-regression gating: `reproduce <exp> --check`.
//!
//! Recorded experiments emit a `BENCH_<name>.json` summary in the shared
//! schema (see `EXPERIMENTS.md` §"Recorded baselines"):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "experiment": "launch_batching",
//!   "scale": 0.02,
//!   "primary_metric": "reduction_at_batch_8",
//!   "metrics": { "reduction_at_batch_8": 7.7117 },
//!   "tolerances": { "reduction_at_batch_8": { "rel": 0.05, "dir": "min" } },
//!   "byte_identical": true,
//!   "rows": [ ... ]
//! }
//! ```
//!
//! `check_experiment` reruns the experiment at the *baseline's* recorded
//! scale, compares every metric named in the baseline's `tolerances`
//! block against the fresh run, restores the committed baseline bytes
//! (a check must never rewrite the recorded numbers), and reports
//! pass/fail per metric. `dir` selects the failure direction: `"min"`
//! fails when the fresh value drops more than `rel` below baseline
//! (higher-is-better metrics — speedups, reductions), `"max"` the
//! mirror image, `"both"` on any relative departure beyond `rel`.

use gpu_sim::{parse_json, Json};

/// `BENCH_<name>.json`, relative to the working directory (the repo
/// root — both CI and the committed baselines live there).
pub fn bench_path(name: &str) -> String {
    format!("BENCH_{name}.json")
}

/// Serialize a recorded-experiment summary in the shared schema. Every
/// emitter goes through here so the three files cannot drift apart.
/// `metrics` are `(name, value)`; `tolerances` are `(name, rel, dir)`
/// and must reference metric names; `rows` are pre-rendered JSON
/// objects, one per line.
pub fn bench_json(
    experiment: &str,
    scale: f64,
    primary_metric: &str,
    metrics: &[(&str, f64)],
    tolerances: &[(&str, f64, &str)],
    byte_identical: bool,
    rows: &[String],
) -> String {
    assert!(
        metrics.iter().any(|(n, _)| *n == primary_metric),
        "primary metric {primary_metric:?} missing from metrics"
    );
    for (n, _, _) in tolerances {
        assert!(
            metrics.iter().any(|(m, _)| m == n),
            "tolerance {n:?} references no metric"
        );
    }
    let metric_lines: Vec<String> = metrics
        .iter()
        .map(|(n, v)| format!("    \"{n}\": {v:.4}"))
        .collect();
    let tol_lines: Vec<String> = tolerances
        .iter()
        .map(|(n, rel, dir)| format!("    \"{n}\": {{\"rel\": {rel}, \"dir\": \"{dir}\"}}"))
        .collect();
    format!(
        "{{\n  \"schema\": 1,\n  \"experiment\": \"{experiment}\",\n  \"scale\": {scale},\n  \
         \"primary_metric\": \"{primary_metric}\",\n  \"metrics\": {{\n{}\n  }},\n  \
         \"tolerances\": {{\n{}\n  }},\n  \"byte_identical\": {byte_identical},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        metric_lines.join(",\n"),
        tol_lines.join(",\n"),
        rows.join(",\n")
    )
}

/// One metric's comparison against baseline.
pub struct MetricCheck {
    /// Metric name (a key of the baseline's `metrics` object).
    pub name: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Value from the fresh rerun.
    pub fresh: f64,
    /// Relative tolerance from the baseline's `tolerances` block.
    pub rel: f64,
    /// Failure direction: `min`, `max` or `both`.
    pub dir: String,
    /// Whether the fresh value is within tolerance.
    pub ok: bool,
}

fn metric_map(root: &Json) -> Result<Vec<(String, f64)>, String> {
    match root.get("metrics") {
        Some(Json::Obj(kv)) => kv
            .iter()
            .map(|(k, v)| {
                v.as_num()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("metric {k:?} is not a number"))
            })
            .collect(),
        _ => Err("missing \"metrics\" object".into()),
    }
}

/// Rerun `name` via `runner` at the committed baseline's scale and
/// compare. Returns the per-metric comparisons and the baseline scale;
/// the caller renders the report and decides the exit code. The
/// committed `BENCH_<name>.json` is restored byte-for-byte afterwards.
pub fn check_experiment(
    name: &str,
    runner: fn(f64) -> String,
) -> Result<(f64, Vec<MetricCheck>), String> {
    let path = bench_path(name);
    let committed = std::fs::read_to_string(&path).map_err(|e| {
        format!("{path}: {e} — not a recorded experiment (no committed baseline to check against)")
    })?;
    let base = parse_json(&committed).map_err(|e| format!("{path}: invalid baseline: {e}"))?;
    if base.get("schema").and_then(Json::as_num) != Some(1.0) {
        return Err(format!(
            "{path}: unsupported or missing \"schema\" (expected 1)"
        ));
    }
    let scale = base
        .get("scale")
        .and_then(Json::as_num)
        .ok_or_else(|| format!("{path}: missing \"scale\""))?;
    let base_metrics = metric_map(&base).map_err(|e| format!("{path}: {e}"))?;
    let tolerances = match base.get("tolerances") {
        Some(Json::Obj(kv)) if !kv.is_empty() => kv,
        _ => return Err(format!("{path}: missing or empty \"tolerances\" block")),
    };

    // The rerun overwrites BENCH_<name>.json; whatever happens, the
    // committed baseline bytes go back before this function returns.
    let run = std::panic::catch_unwind(|| runner(scale));
    let fresh_text = std::fs::read_to_string(&path);
    std::fs::write(&path, &committed).map_err(|e| format!("{path}: restoring baseline: {e}"))?;
    if run.is_err() {
        return Err(format!(
            "{name}: rerun at scale {scale} panicked (an experiment-internal bar failed)"
        ));
    }
    let fresh_text = fresh_text.map_err(|e| format!("{path}: fresh summary unreadable: {e}"))?;
    let fresh = parse_json(&fresh_text).map_err(|e| format!("{path}: fresh summary: {e}"))?;
    let fresh_metrics = metric_map(&fresh).map_err(|e| format!("{path}: fresh summary: {e}"))?;

    let mut checks = Vec::new();
    for (metric, tol) in tolerances {
        let rel = tol
            .get("rel")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("{path}: tolerance {metric:?} missing \"rel\""))?;
        let dir = tol
            .get("dir")
            .and_then(Json::as_str)
            .unwrap_or("both")
            .to_string();
        let baseline = base_metrics
            .iter()
            .find(|(k, _)| k == metric)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("{path}: tolerance {metric:?} references no metric"))?;
        let fresh_v = fresh_metrics
            .iter()
            .find(|(k, _)| k == metric)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("{name}: fresh run emitted no metric {metric:?}"))?;
        let ok = match dir.as_str() {
            "min" => fresh_v >= baseline * (1.0 - rel),
            "max" => fresh_v <= baseline * (1.0 + rel),
            "both" => (fresh_v - baseline).abs() <= baseline.abs() * rel,
            other => {
                return Err(format!(
                    "{path}: tolerance {metric:?}: unknown dir {other:?}"
                ))
            }
        };
        checks.push(MetricCheck {
            name: metric.clone(),
            baseline,
            fresh: fresh_v,
            rel,
            dir,
            ok,
        });
    }
    Ok((scale, checks))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_emits_the_shared_schema() {
        let s = bench_json(
            "demo",
            0.02,
            "speedup",
            &[("speedup", 2.5), ("aux", 1.0)],
            &[("speedup", 0.3, "min")],
            true,
            &["    {\"k\": 1}".into()],
        );
        let j = parse_json(&s).expect("self-parse");
        assert_eq!(j.get("schema").and_then(Json::as_num), Some(1.0));
        assert_eq!(j.get("experiment").and_then(Json::as_str), Some("demo"));
        assert_eq!(
            j.get("primary_metric").and_then(Json::as_str),
            Some("speedup")
        );
        assert_eq!(
            j.get("metrics")
                .and_then(|m| m.get("speedup"))
                .and_then(Json::as_num),
            Some(2.5)
        );
        let tol = j.get("tolerances").and_then(|t| t.get("speedup")).unwrap();
        assert_eq!(tol.get("rel").and_then(Json::as_num), Some(0.3));
        assert_eq!(tol.get("dir").and_then(Json::as_str), Some("min"));
        assert!(j.get("rows").is_some());
    }

    #[test]
    #[should_panic(expected = "references no metric")]
    fn bench_json_rejects_dangling_tolerance() {
        bench_json(
            "demo",
            0.02,
            "x",
            &[("x", 1.0)],
            &[("y", 0.1, "min")],
            true,
            &[],
        );
    }

    #[test]
    fn tolerance_directions() {
        // dir=min: only a drop beyond rel fails.
        for (fresh, ok) in [(2.5, true), (1.8, true), (1.74, false), (99.0, true)] {
            let within = fresh >= 2.5 * (1.0 - 0.3);
            assert_eq!(within, ok, "fresh {fresh}");
        }
    }
}
