//! Host memory-bandwidth measurement.
//!
//! The paper's Formula (1) converts the dense matrix's byte volume into a
//! time lower bound using the *measured* sequential main-memory bandwidth
//! (4.2 GB/s on their Xeon E5630). Fig. 4(a) needs the same measurement
//! for the machine the reproduction runs on.

use std::time::Instant;

/// Measure sequential read bandwidth (bytes/sec) by summing a buffer that
/// far exceeds the last-level cache.
pub fn sequential_read_bandwidth() -> f64 {
    const BYTES: usize = 256 << 20;
    let buf = vec![1u8; BYTES];
    // Warm-up pass so page faults don't pollute the measurement.
    let mut sink = 0u64;
    for chunk in buf.chunks_exact(8) {
        sink = sink.wrapping_add(u64::from_le_bytes(chunk.try_into().expect("8")));
    }
    let t0 = Instant::now();
    let mut acc = 0u64;
    for chunk in buf.chunks_exact(8) {
        acc = acc.wrapping_add(u64::from_le_bytes(chunk.try_into().expect("8")));
    }
    let dt = t0.elapsed().as_secs_f64();
    std::hint::black_box(sink.wrapping_add(acc));
    BYTES as f64 / dt
}

/// Measure sequential write bandwidth (bytes/sec) via `fill` — the cost
/// profile of SOAPsnp's `recycle`.
pub fn sequential_write_bandwidth() -> f64 {
    const BYTES: usize = 256 << 20;
    let mut buf = vec![0u8; BYTES];
    buf.fill(1); // commit pages
    let t0 = Instant::now();
    // black_box on the slice keeps the optimizer from eliding the fill.
    std::hint::black_box(&mut buf[..]).fill(2);
    let dt = t0.elapsed().as_secs_f64();
    let sink: u64 = buf.iter().step_by(4096).map(|&b| u64::from(b)).sum();
    std::hint::black_box(sink);
    BYTES as f64 / dt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidths_are_plausible() {
        let r = sequential_read_bandwidth();
        let w = sequential_write_bandwidth();
        // Anything from an embedded board to a server — including
        // memory-throttled CI containers, which measure well under
        // 0.2 GB/s: 0.05–1000 GB/s.
        for bw in [r, w] {
            assert!(bw > 5e7, "{bw} too low");
            assert!(bw < 1e12, "{bw} too high");
        }
    }
}
