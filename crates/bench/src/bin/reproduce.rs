//! Regenerate every table and figure of the GSNP paper's evaluation.
//!
//! ```text
//! reproduce [all | <experiment>...] [--scale X] [--check] [--list]
//! ```
//!
//! Experiments: table1 table2 table3 table4 fig4a fig4b fig5 fig6 fig7a
//! fig7b fig8 fig9 fig10 fig11 fig12. Default scale: 0.02 (datasets are
//! 1/100-scale "mini" models shrunk a further 50x; see DESIGN.md §2).
//!
//! `--check` is the bench-regression gate: instead of regenerating, each
//! selected experiment is rerun at its committed `BENCH_<name>.json`
//! baseline's scale and every metric in the baseline's `tolerances`
//! block is compared; the committed file is restored afterwards and the
//! process exits nonzero if any metric regresses beyond tolerance.

use std::time::Instant;

use bench::experiments::all_experiments;
use bench::DEFAULT_SCALE;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = DEFAULT_SCALE;
    let mut check = false;
    let mut selected: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--scale" => {
                let v = iter
                    .next()
                    .unwrap_or_else(|| usage("missing value for --scale"));
                scale = v
                    .parse()
                    .unwrap_or_else(|_| usage("--scale expects a number"));
            }
            "--check" => check = true,
            "--list" => {
                for (name, desc, _) in all_experiments() {
                    println!("{name:8}  {desc}");
                }
                return;
            }
            "--help" | "-h" => usage(""),
            other => selected.push(other.to_string()),
        }
    }
    if check {
        run_checks(&selected);
        return;
    }
    if selected.is_empty() || selected.iter().any(|s| s == "all") {
        selected = all_experiments()
            .iter()
            .map(|(n, _, _)| n.to_string())
            .collect();
    }

    // Recorded numbers must never be produced under the sanitizer: shadow
    // tracking adds per-access work (~8x wall clock; see EXPERIMENTS.md).
    // Asserted here so a flipped default cannot silently taint the tables.
    assert!(
        !gsnp_core::pipeline::GsnpConfig::default().sanitize,
        "reproduce requires the sanitizer disabled; sanitized runs are for tests only"
    );
    assert!(
        !gpu_sim::Device::m2050().sanitizer_enabled(),
        "a bare device must not carry sanitizer state"
    );

    let registry = all_experiments();
    println!("GSNP reproduction harness — scale {scale}\n");
    for name in &selected {
        let Some((_, desc, f)) = registry.iter().find(|(n, _, _)| n == name) else {
            usage(&format!("unknown experiment {name:?}"));
        };
        println!("=== {name}: {desc} ===");
        let t0 = Instant::now();
        let report = f(scale);
        println!("{report}");
        println!(
            "[{name} regenerated in {:.1}s]\n",
            t0.elapsed().as_secs_f64()
        );
    }
}

/// `--check`: rerun each selected recorded experiment at its baseline
/// scale and gate on the baseline's tolerances. Exits nonzero if any
/// metric regresses (or a selected experiment has no baseline).
fn run_checks(selected: &[String]) {
    if selected.is_empty() || selected.iter().any(|s| s == "all") {
        usage("--check needs explicit experiment names (only recorded experiments have baselines)");
    }
    let registry = all_experiments();
    let mut failed = false;
    for name in selected {
        let Some((_, _, f)) = registry.iter().find(|(n, _, _)| n == name) else {
            usage(&format!("unknown experiment {name:?}"));
        };
        println!(
            "=== check {name} against {} ===",
            bench::check::bench_path(name)
        );
        let t0 = Instant::now();
        match bench::check::check_experiment(name, *f) {
            Err(e) => {
                eprintln!("FAIL {name}: {e}");
                failed = true;
            }
            Ok((scale, checks)) => {
                for c in &checks {
                    let delta = (c.fresh / c.baseline - 1.0) * 100.0;
                    println!(
                        "  {} {:<28} baseline {:.4}  fresh {:.4}  ({delta:+.1}%, \
                         tolerance {:.0}% {})",
                        if c.ok { "ok  " } else { "FAIL" },
                        c.name,
                        c.baseline,
                        c.fresh,
                        c.rel * 100.0,
                        c.dir
                    );
                    failed |= !c.ok;
                }
                println!(
                    "[checked at scale {scale} in {:.1}s]\n",
                    t0.elapsed().as_secs_f64()
                );
            }
        }
    }
    if failed {
        eprintln!("bench regression check FAILED");
        std::process::exit(1);
    }
    println!("bench regression check passed");
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: reproduce [all | <experiment>...] [--scale X] [--check] [--list]\n       \
         e.g.: reproduce table4 fig5 --scale 0.01\n       \
         e.g.: reproduce launch_batching native_backend --check"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
