//! Regenerate every table and figure of the GSNP paper's evaluation.
//!
//! ```text
//! reproduce [all | <experiment>...] [--scale X] [--list]
//! ```
//!
//! Experiments: table1 table2 table3 table4 fig4a fig4b fig5 fig6 fig7a
//! fig7b fig8 fig9 fig10 fig11 fig12. Default scale: 0.02 (datasets are
//! 1/100-scale "mini" models shrunk a further 50x; see DESIGN.md §2).

use std::time::Instant;

use bench::experiments::all_experiments;
use bench::DEFAULT_SCALE;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = DEFAULT_SCALE;
    let mut selected: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--scale" => {
                let v = iter
                    .next()
                    .unwrap_or_else(|| usage("missing value for --scale"));
                scale = v
                    .parse()
                    .unwrap_or_else(|_| usage("--scale expects a number"));
            }
            "--list" => {
                for (name, desc, _) in all_experiments() {
                    println!("{name:8}  {desc}");
                }
                return;
            }
            "--help" | "-h" => usage(""),
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() || selected.iter().any(|s| s == "all") {
        selected = all_experiments()
            .iter()
            .map(|(n, _, _)| n.to_string())
            .collect();
    }

    // Recorded numbers must never be produced under the sanitizer: shadow
    // tracking adds per-access work (~8x wall clock; see EXPERIMENTS.md).
    // Asserted here so a flipped default cannot silently taint the tables.
    assert!(
        !gsnp_core::pipeline::GsnpConfig::default().sanitize,
        "reproduce requires the sanitizer disabled; sanitized runs are for tests only"
    );
    assert!(
        !gpu_sim::Device::m2050().sanitizer_enabled(),
        "a bare device must not carry sanitizer state"
    );

    let registry = all_experiments();
    println!("GSNP reproduction harness — scale {scale}\n");
    for name in &selected {
        let Some((_, desc, f)) = registry.iter().find(|(n, _, _)| n == name) else {
            usage(&format!("unknown experiment {name:?}"));
        };
        println!("=== {name}: {desc} ===");
        let t0 = Instant::now();
        let report = f(scale);
        println!("{report}");
        println!(
            "[{name} regenerated in {:.1}s]\n",
            t0.elapsed().as_secs_f64()
        );
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: reproduce [all | <experiment>...] [--scale X] [--list]\n       \
         e.g.: reproduce table4 fig5 --scale 0.01"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
