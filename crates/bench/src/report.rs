//! Plain-text table formatting for the reproduction reports.

/// Render a fixed-width table with a header row.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Format seconds with adaptive precision.
pub fn secs(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.0}")
    } else if t >= 1.0 {
        format!("{t:.2}")
    } else if t >= 1e-3 {
        format!("{:.2}ms", t * 1e3)
    } else {
        format!("{:.1}us", t * 1e6)
    }
}

/// Format a ratio as `12.3x`.
pub fn ratio(r: f64) -> String {
    format!("{r:.1}x")
}

/// Format a byte count.
pub fn bytes(b: u64) -> String {
    const K: f64 = 1024.0;
    let b = b as f64;
    if b >= K * K * K {
        format!("{:.2}GB", b / (K * K * K))
    } else if b >= K * K {
        format!("{:.2}MB", b / (K * K))
    } else if b >= K {
        format!("{:.1}KB", b / K)
    } else {
        format!("{b:.0}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(123.4), "123");
        assert_eq!(secs(1.234), "1.23");
        assert_eq!(secs(0.01234), "12.34ms");
        assert_eq!(secs(0.0000123), "12.3us");
        assert_eq!(ratio(41.96), "42.0x");
        assert_eq!(bytes(512), "512B");
        assert_eq!(bytes(2048), "2.0KB");
        assert_eq!(bytes(3 * 1024 * 1024), "3.00MB");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let _ = table(&["a", "b"], &[vec!["x".into()]]);
    }
}
