#![allow(dead_code)] // each bench uses a subset of the shared fixtures
//! Shared fixtures for the per-figure Criterion benches.
//!
//! Bench workloads are deliberately small (hundreds of sites) so `cargo
//! bench` finishes quickly; the `reproduce` binary runs the full scaled
//! experiments. What the benches pin down is the *relative* cost of the
//! competing implementations, which is the unit of every figure.

use gpu_sim::Device;
use gsnp_core::counting::SparseWindow;
use gsnp_core::likelihood::{sort_sparse_cpu, DeviceTables};
use gsnp_core::model::ModelParams;
use gsnp_core::tables::{LogTable, NewPMatrix, PMatrix};
use seqio::synth::{Dataset, SynthConfig};
use seqio::window::WindowReader;

/// Standard bench dataset: ~4,000 sites at ~10x depth, 60 bp reads.
pub fn dataset() -> Dataset {
    let mut cfg = SynthConfig::tiny(0xBEEF);
    cfg.num_sites = 4_000;
    cfg.read_len = 60;
    cfg.depth = 10.0;
    Dataset::generate(cfg)
}

/// The dataset's single sparse window (optionally canonically sorted).
pub fn sparse_window(d: &Dataset, sorted: bool) -> SparseWindow {
    let mut reader = WindowReader::new(
        d.reads.iter().cloned().map(Ok),
        d.config.num_sites,
        d.config.num_sites as usize,
    );
    let w = reader.next_window().expect("ok").expect("one window");
    let mut sw = SparseWindow::count(&w);
    if sorted {
        sort_sparse_cpu(&mut sw);
    }
    sw
}

/// Calibrated tables for the dataset.
pub fn tables(d: &Dataset) -> (PMatrix, NewPMatrix, LogTable) {
    let p = PMatrix::calibrate(&d.reads, &d.reference, &ModelParams::default());
    let np = NewPMatrix::precompute(&p);
    (p, np, LogTable::new())
}

/// Device + uploaded tables.
pub fn device_setup(d: &Dataset) -> (Device, DeviceTables) {
    let (p, np, lt) = tables(d);
    let dev = Device::m2050();
    let t = DeviceTables::upload(&dev, &p, &np, &lt);
    (dev, t)
}
