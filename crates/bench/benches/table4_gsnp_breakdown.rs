//! Table IV: the GSNP pipeline's end-to-end cost (componentized by the
//! `reproduce table4` report).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use gsnp_core::pipeline::{GsnpConfig, GsnpPipeline};

fn bench(c: &mut Criterion) {
    let d = common::dataset();
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("gsnp_pipeline_4k_sites", |b| {
        b.iter(|| {
            GsnpPipeline::new(GsnpConfig {
                window_size: 1_000,
                ..Default::default()
            })
            .run(&d.reads, &d.reference, &d.priors)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
