//! Mega-batched launches: window-loop cost vs launch-batch width.
//!
//! The workload spans many small windows so the per-launch fixed
//! overhead is a real fraction of the bill; widening the batch coalesces
//! N windows' sort/likelihood/output chains into one launch group each.
//! See the `launch_batching` experiment for the calibrated sweep with
//! launches/site accounting.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsnp_core::pipeline::{GsnpConfig, GsnpPipeline};

fn bench(c: &mut Criterion) {
    let d = common::dataset();
    let cfg = |launch_batch: usize| GsnpConfig {
        window_size: 500,
        launch_batch,
        // GPU output puts the scan/RLE/DICT chain — the launch-heaviest
        // stage — on the measured path.
        gpu_output: true,
        ..Default::default()
    };

    let mut g = c.benchmark_group("launch_batching");
    g.sample_size(10);
    for batch in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| GsnpPipeline::new(cfg(batch)).run(&d.reads, &d.reference, &d.priors));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
