//! Cohort calling vs N independent single-sample runs.
//!
//! Both sides call the same N samples over the same reference; the
//! cohort pays calibration, table precompute, the per-device table
//! upload and pipeline bring-up once, while the independent baseline
//! repays them per sample. See the `cohort_amortization` experiment for
//! the calibrated sweep with upload-byte accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsnp_core::cohort::{CohortCallConfig, CohortPipeline, SampleReads};
use gsnp_core::pipeline::{GsnpConfig, GsnpPipeline};
use seqio::synth::{Cohort, CohortConfig, SynthConfig};

fn cohort() -> Cohort {
    let mut base = SynthConfig::tiny(0xC080);
    base.num_sites = 4_000;
    base.read_len = 60;
    base.depth = 3.0;
    Cohort::generate(CohortConfig {
        base,
        num_samples: 4,
        shared_rate: 0.6,
    })
}

fn cfg() -> GsnpConfig {
    GsnpConfig {
        window_size: 1_000,
        launch_batch: 4,
        ..Default::default()
    }
}

fn bench(c: &mut Criterion) {
    let data = cohort();
    let mut g = c.benchmark_group("cohort_amortization");
    g.sample_size(10);
    g.bench_with_input(
        BenchmarkId::from_parameter("4_independent"),
        &data,
        |b, data| {
            b.iter(|| {
                for s in &data.samples {
                    GsnpPipeline::new(cfg()).run(&s.reads, &data.reference, &data.priors);
                }
            });
        },
    );
    g.bench_with_input(BenchmarkId::from_parameter("cohort_4"), &data, |b, data| {
        let inputs: Vec<SampleReads<'_>> = data
            .samples
            .iter()
            .map(|s| SampleReads {
                name: &s.name,
                reads: &s.reads,
            })
            .collect();
        b.iter(|| {
            CohortPipeline::new(CohortCallConfig {
                base: cfg(),
                ..Default::default()
            })
            .run(&inputs, &data.reference, &data.priors)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
