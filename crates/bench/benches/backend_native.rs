//! Compute backends: sim vs native vs auto on the launch_batching
//! workload.
//!
//! The pipeline config is the launch-batching shape (many small windows,
//! GPU output on the measured path); only the backend varies. Sim pays
//! per-access instrumentation on every kernel, native runs the same
//! kernel bodies uninstrumented via rayon, and auto picks per launch.
//! See the `native_backend` experiment for the calibrated run with
//! byte-identity asserts and the recorded speedup.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::BackendChoice;
use gsnp_core::pipeline::{GsnpConfig, GsnpPipeline};

fn bench(c: &mut Criterion) {
    let d = common::dataset();
    let cfg = |backend: BackendChoice| GsnpConfig {
        window_size: 500,
        // GPU output puts the scan/RLE/DICT chain — the launch-heaviest
        // stage — on the measured path.
        gpu_output: true,
        backend,
        ..Default::default()
    };

    let mut g = c.benchmark_group("backend_native");
    g.sample_size(10);
    for backend in [
        BackendChoice::Sim,
        BackendChoice::Native,
        BackendChoice::Auto,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(backend.name()),
            &backend,
            |b, &backend| {
                b.iter(|| GsnpPipeline::new(cfg(backend)).run(&d.reads, &d.reference, &d.priors));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
