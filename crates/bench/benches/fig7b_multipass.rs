//! Fig. 7(b): multipass vs single-pass vs non-equal scheduling on the
//! real base_word size distribution.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use sortnet::{multipass_sort, noneq_sort, single_pass_sort};

fn bench(c: &mut Criterion) {
    let d = common::dataset();
    let sw = common::sparse_window(&d, false);
    let dev = gpu_sim::Device::m2050();
    let mut g = c.benchmark_group("fig7b");
    g.sample_size(10);
    g.bench_function("multipass", |b| {
        b.iter_batched(
            || dev.upload(&sw.words),
            |buf| multipass_sort(&dev, &buf, &sw.spans),
            criterion::BatchSize::SmallInput,
        );
    });
    g.bench_function("single_pass", |b| {
        b.iter_batched(
            || dev.upload(&sw.words),
            |buf| single_pass_sort(&dev, &buf, &sw.spans),
            criterion::BatchSize::SmallInput,
        );
    });
    g.bench_function("noneq", |b| {
        b.iter_batched(
            || dev.upload(&sw.words),
            |buf| noneq_sort(&dev, &buf, &sw.spans),
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
