//! Fig. 5: likelihood under dense/sparse representations on host and
//! simulated device.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use gsnp_core::counting::DenseWindow;
use gsnp_core::likelihood::{
    likelihood_comp_gpu, likelihood_dense_gpu, likelihood_dense_site, likelihood_sparse_site,
    upload_dense_transposed, KernelVariant,
};
use seqio::window::WindowReader;

fn bench(c: &mut Criterion) {
    let d = common::dataset();
    let sw = common::sparse_window(&d, true);
    let (p, np, lt) = common::tables(&d);
    let (dev, tables) = common::device_setup(&d);

    let mut reader = WindowReader::new(d.reads.iter().cloned().map(Ok), 256, 256);
    let w = reader.next_window().unwrap().unwrap();
    let mut dense = DenseWindow::alloc(w.len());
    dense.count(&w);
    let occ = upload_dense_transposed(&dev, &dense, w.len());
    let words = dev.upload(&sw.words);
    let spans256 = &sw.spans[..256.min(sw.spans.len())];

    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("dense_cpu_256_sites", |b| {
        b.iter(|| {
            (0..w.len())
                .map(|s| likelihood_dense_site(dense.site(s), &p, &lt))
                .collect::<Vec<_>>()
        });
    });
    g.bench_function("sparse_cpu_256_sites", |b| {
        b.iter(|| {
            (0..256.min(sw.num_sites()))
                .map(|s| likelihood_sparse_site(sw.site_words(s), d.config.read_len, &np, &lt))
                .collect::<Vec<_>>()
        });
    });
    g.bench_function("dense_gpu_256_sites", |b| {
        b.iter(|| likelihood_dense_gpu(&dev, &occ, w.len(), &tables));
    });
    g.bench_function("sparse_gpu_256_sites", |b| {
        b.iter(|| {
            likelihood_comp_gpu(
                &dev,
                KernelVariant::Optimized,
                &words,
                spans256,
                d.config.read_len,
                &tables,
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
