//! Fig. 7(a): the batch-sort primitive against the CPU and radix baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::Device;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sortnet::Span;

fn workload(size: usize, n_arrays: usize) -> (Vec<u32>, Vec<Span>) {
    let mut rng = StdRng::seed_from_u64(size as u64);
    let host: Vec<u32> = (0..n_arrays * size).map(|_| rng.gen()).collect();
    let spans: Vec<Span> = (0..n_arrays).map(|i| (i * size, size)).collect();
    (host, spans)
}

fn bench(c: &mut Criterion) {
    let dev = Device::m2050();
    let mut g = c.benchmark_group("fig7a");
    g.sample_size(10);
    for size in [16usize, 64, 256] {
        let n_arrays = 20_000 / size;
        let (host, spans) = workload(size, n_arrays);
        g.throughput(Throughput::Elements((n_arrays * size) as u64));
        g.bench_with_input(BenchmarkId::new("gpu_batch", size), &size, |b, _| {
            b.iter_batched(
                || dev.upload(&host),
                |buf| sortnet::batch_sort(&dev, &buf, &spans, size, 8),
                criterion::BatchSize::SmallInput,
            );
        });
        g.bench_with_input(BenchmarkId::new("cpu_qsort", size), &size, |b, _| {
            b.iter_batched(
                || host.clone(),
                |mut data| sortnet::baselines::parallel_cpu_qsort(&mut data, &spans),
                criterion::BatchSize::SmallInput,
            );
        });
        g.bench_with_input(BenchmarkId::new("seq_radix", size), &size, |b, _| {
            b.iter_batched(
                || host.clone(),
                |mut data| sortnet::baselines::sequential_radix(&mut data, &spans),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
