//! Fig. 4: the dense representation's memory behaviour — the full-matrix
//! recycle (4a) and the per-site sparsity computation (4b).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use gsnp_core::counting::{nonzero_cells_per_site, DenseWindow};
use seqio::window::WindowReader;

fn bench(c: &mut Criterion) {
    let d = common::dataset();
    let mut reader = WindowReader::new(
        d.reads.iter().cloned().map(Ok),
        d.config.num_sites,
        d.config.num_sites as usize,
    );
    let w = reader.next_window().unwrap().unwrap();
    let mut dense = DenseWindow::alloc(w.len());
    dense.count(&w);

    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("recycle_dense_4k_sites", |b| {
        b.iter(|| dense.recycle_sites(w.len()));
    });
    g.bench_function("sparsity_histogram_4k_sites", |b| {
        b.iter(|| nonzero_cells_per_site(&w));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
