//! Fig. 9: output compression — size is reported by `reproduce fig9`;
//! the bench pins the relative speed of the three output paths.

mod common;

use compress::column::{compress_table, compress_table_gpu};
use criterion::{criterion_group, criterion_main, Criterion};
use gsnp_core::pipeline::{GsnpConfig, GsnpCpuPipeline};

fn bench(c: &mut Criterion) {
    let d = common::dataset();
    let out = GsnpCpuPipeline::new(GsnpConfig::default()).run(&d.reads, &d.reference, &d.priors);
    let table = &out.tables[0];
    let mut text = Vec::new();
    table.write_text(&mut text).unwrap();
    let dev = gpu_sim::Device::m2050();

    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("plain_text_write", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            table.write_text(&mut buf).unwrap();
            buf
        });
    });
    g.bench_function("lz_gzip_class", |b| {
        b.iter(|| compress::lz::compress(&text));
    });
    g.bench_function("column_codec_cpu", |b| b.iter(|| compress_table(table)));
    g.bench_function("column_codec_gpu", |b| {
        b.iter(|| compress_table_gpu(&dev, table));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
