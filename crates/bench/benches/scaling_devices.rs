//! Multi-device sharding: window-loop wall-clock vs device count.
//!
//! The device is paced so its stage dominates the loop (≈3× the host
//! work per window); sharding windows across N paced devices then shows
//! real wall-clock scaling because each worker sleeps on its own thread.
//! See the `scaling` experiment for the calibrated full-size sweep.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::DeviceConfig;
use gsnp_core::pipeline::{GsnpConfig, GsnpPipeline};

fn bench(c: &mut Criterion) {
    let d = common::dataset();
    let cfg = |devices: usize, pacing: f64| GsnpConfig {
        window_size: 1_000,
        device: DeviceConfig::tesla_m2050().paced(pacing),
        pipeline_depth: 2,
        num_devices: devices,
        // Host-side output compression: the paced output-stage kernels
        // are serial sleeps sharding can't hide (see `scaling`).
        gpu_output: false,
        ..Default::default()
    };

    // Calibrate pacing once from an unpaced serial probe: paced device
    // occupancy ≈ 8× the total host work (including the device workers'
    // own host wall), so sleeps dominate and sharding them shows.
    let probe = GsnpPipeline::new(cfg(1, 0.0)).run(&d.reads, &d.reference, &d.priors);
    let o = probe.stats.overlap;
    let host_device: f64 = o.devices.iter().map(|l| l.stage.busy).sum();
    let host_total = o.read.busy + o.posterior.busy + o.output.busy + host_device;
    let sim_device = (probe.times.counting - probe.wall.counting)
        + probe.times.likelihood_sort
        + probe.times.likelihood_comp
        + probe.times.recycle;
    let pacing = if sim_device > 0.0 {
        8.0 * host_total / sim_device
    } else {
        0.0
    };

    let mut g = c.benchmark_group("scaling_devices");
    g.sample_size(10);
    for devices in [1usize, 2, 3, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(devices),
            &devices,
            |b, &devices| {
                b.iter(|| {
                    GsnpPipeline::new(cfg(devices, pacing)).run(&d.reads, &d.reference, &d.priors)
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
