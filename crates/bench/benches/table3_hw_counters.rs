//! Table III: the four likelihood_comp kernels (counters come from the
//! launch stats; the bench pins their relative wall cost on the executor).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use gsnp_core::likelihood::{likelihood_comp_gpu, KernelVariant};

fn bench(c: &mut Criterion) {
    let d = common::dataset();
    let sw = common::sparse_window(&d, true);
    let (dev, tables) = common::device_setup(&d);
    let words = dev.upload(&sw.words);
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    for variant in KernelVariant::ALL {
        g.bench_function(variant.label().replace(' ', "_").replace('/', ""), |b| {
            b.iter(|| {
                likelihood_comp_gpu(&dev, variant, &words, &sw.spans, d.config.read_len, &tables)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
