//! Streaming executor: window-loop wall-clock vs pipeline depth.
//!
//! The device is paced (launches occupy real time in proportion to their
//! modelled cost) so the bench exposes the host/device overlap the
//! bounded-channel pipeline exists to exploit; see the
//! `pipeline_overlap` experiment for the calibrated full-size sweep.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::DeviceConfig;
use gsnp_core::pipeline::{GsnpConfig, GsnpPipeline};

fn bench(c: &mut Criterion) {
    let d = common::dataset();
    let cfg = |depth: usize, pacing: f64| GsnpConfig {
        window_size: 1_000,
        device: DeviceConfig::tesla_m2050().paced(pacing),
        pipeline_depth: depth,
        ..Default::default()
    };

    // Calibrate pacing once from an unpaced serial probe: device occupancy
    // ≈ 1.5× the host work of the non-device stages per window.
    let probe = GsnpPipeline::new(cfg(1, 0.0)).run(&d.reads, &d.reference, &d.priors);
    let o = probe.stats.overlap;
    let host_other = o.read.busy + o.posterior.busy + o.output.busy;
    let sim_device = (probe.times.counting - probe.wall.counting)
        + probe.times.likelihood_sort
        + probe.times.likelihood_comp
        + probe.times.recycle;
    let pacing = if sim_device > 0.0 {
        1.5 * host_other / sim_device
    } else {
        0.0
    };

    let mut g = c.benchmark_group("pipeline_overlap");
    g.sample_size(10);
    for depth in [1usize, 2, 3, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| GsnpPipeline::new(cfg(depth, pacing)).run(&d.reads, &d.reference, &d.priors));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
