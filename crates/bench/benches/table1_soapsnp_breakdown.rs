//! Table I: the SOAPsnp baseline's end-to-end cost (whose breakdown the
//! `reproduce table1` report itemizes per component).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use gsnp_core::model::ModelParams;
use soapsnp::{SoapSnpConfig, SoapSnpPipeline};

fn bench(c: &mut Criterion) {
    let d = common::dataset();
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("soapsnp_pipeline_4k_sites", |b| {
        b.iter(|| {
            SoapSnpPipeline::new(SoapSnpConfig {
                window_size: 1_000,
                read_len: d.config.read_len,
                params: ModelParams::default(),
            })
            .run(&d.reads, &d.reference, &d.priors)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
