//! Fig. 11: GSNP end-to-end cost as the window size varies.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsnp_core::pipeline::{GsnpConfig, GsnpPipeline};

fn bench(c: &mut Criterion) {
    let d = common::dataset();
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    for window in [256usize, 1_000, 4_000] {
        g.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            b.iter(|| {
                GsnpPipeline::new(GsnpConfig {
                    window_size: w,
                    ..Default::default()
                })
                .run(&d.reads, &d.reference, &d.priors)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
