//! Fig. 6: the likelihood_sort / likelihood_comp split on CPU and device.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use gsnp_core::likelihood::{likelihood_comp_gpu, sort_sparse_cpu, KernelVariant};
use sortnet::multipass_sort;

fn bench(c: &mut Criterion) {
    let d = common::dataset();
    let unsorted = common::sparse_window(&d, false);
    let sorted = common::sparse_window(&d, true);
    let (dev, tables) = common::device_setup(&d);

    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("sort_cpu", |b| {
        b.iter_batched(
            || unsorted.clone(),
            |mut sw| sort_sparse_cpu(&mut sw),
            criterion::BatchSize::SmallInput,
        );
    });
    g.bench_function("sort_gpu", |b| {
        b.iter_batched(
            || dev.upload(&unsorted.words),
            |words| multipass_sort(&dev, &words, &unsorted.spans),
            criterion::BatchSize::SmallInput,
        );
    });
    let words = dev.upload(&sorted.words);
    g.bench_function("comp_gpu", |b| {
        b.iter(|| {
            likelihood_comp_gpu(
                &dev,
                KernelVariant::Optimized,
                &words,
                &sorted.spans,
                d.config.read_len,
                &tables,
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
