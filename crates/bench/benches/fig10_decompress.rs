//! Fig. 10: decompression / sequential-read speed of the three result
//! representations, plus the temporary-input codec.

mod common;

use compress::column::{compress_table, decompress_table};
use compress::input_codec;
use criterion::{criterion_group, criterion_main, Criterion};
use gsnp_core::pipeline::{GsnpConfig, GsnpCpuPipeline};
use seqio::result::SnpTable;

fn bench(c: &mut Criterion) {
    let d = common::dataset();
    let out = GsnpCpuPipeline::new(GsnpConfig::default()).run(&d.reads, &d.reference, &d.priors);
    let table = &out.tables[0];
    let mut text = Vec::new();
    table.write_text(&mut text).unwrap();
    let gz = compress::lz::compress(&text);
    let col = compress_table(table);
    let temp = input_codec::compress_reads(&d.config.chr_name, &d.reads);

    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("reparse_text", |b| {
        b.iter(|| SnpTable::read_text(std::io::Cursor::new(&text[..])).unwrap());
    });
    g.bench_function("lz_decompress", |b| {
        b.iter(|| compress::lz::decompress(&gz).unwrap());
    });
    g.bench_function("column_decompress", |b| {
        b.iter(|| decompress_table(&col).unwrap());
    });
    g.bench_function("input_codec_decompress", |b| {
        b.iter(|| input_codec::decompress_reads(&temp).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
