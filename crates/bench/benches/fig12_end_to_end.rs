//! Fig. 12: the three pipelines end to end on one chromosome model.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use gsnp_core::model::ModelParams;
use gsnp_core::pipeline::{GsnpConfig, GsnpCpuPipeline, GsnpPipeline};
use soapsnp::{SoapSnpConfig, SoapSnpPipeline};

fn bench(c: &mut Criterion) {
    let d = common::dataset();
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("soapsnp", |b| {
        b.iter(|| {
            SoapSnpPipeline::new(SoapSnpConfig {
                window_size: 1_000,
                read_len: d.config.read_len,
                params: ModelParams::default(),
            })
            .run(&d.reads, &d.reference, &d.priors)
        });
    });
    g.bench_function("gsnp_cpu", |b| {
        b.iter(|| {
            GsnpCpuPipeline::new(GsnpConfig::default()).run(&d.reads, &d.reference, &d.priors)
        });
    });
    g.bench_function("gsnp", |b| {
        b.iter(|| GsnpPipeline::new(GsnpConfig::default()).run(&d.reads, &d.reference, &d.priors));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
