//! FASTA reference sequences.
//!
//! GSNP's second input file is the reference sequence. References are held
//! in memory as `u8` codes (`0..=3` for A/C/G/T, [`crate::base::N_CODE`]
//! for N) so the hot paths never touch ASCII.

use std::io::{BufRead, Write};

use crate::base::{Base, N_CODE};
use crate::error::SeqIoError;

/// An in-memory reference sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reference {
    /// Sequence name (FASTA header without `>`).
    pub name: String,
    /// Base codes: `0..=3` = A/C/G/T, `4` = N.
    pub seq: Vec<u8>,
}

impl Reference {
    /// Create from raw codes.
    ///
    /// # Panics
    /// Panics if any code exceeds [`N_CODE`].
    pub fn new(name: impl Into<String>, seq: Vec<u8>) -> Self {
        assert!(
            seq.iter().all(|&c| c <= N_CODE),
            "reference contains invalid base codes"
        );
        Reference {
            name: name.into(),
            seq,
        }
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// The base at `pos`, or `None` if it is an N.
    #[inline]
    pub fn base_at(&self, pos: usize) -> Option<Base> {
        let c = self.seq[pos];
        (c < 4).then(|| Base::from_code(c))
    }

    /// Parse the first record of a FASTA stream.
    pub fn read_fasta<R: BufRead>(reader: R) -> Result<Reference, SeqIoError> {
        let mut name = None;
        let mut seq = Vec::new();
        for (i, line) in reader.lines().enumerate() {
            let line = line?;
            let lineno = i as u64 + 1;
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(hdr) = line.strip_prefix('>') {
                if name.is_some() {
                    break; // Only the first record.
                }
                name = Some(hdr.split_whitespace().next().unwrap_or("").to_string());
            } else {
                if name.is_none() {
                    return Err(SeqIoError::parse(
                        lineno,
                        "sequence data before FASTA header",
                    ));
                }
                for &c in line.as_bytes() {
                    match Base::from_ascii(c) {
                        Some(b) => seq.push(b.code()),
                        None if c == b'N' || c == b'n' => seq.push(N_CODE),
                        None => {
                            return Err(SeqIoError::parse(
                                lineno,
                                format!("invalid base character {:?}", c as char),
                            ))
                        }
                    }
                }
            }
        }
        let name = name.ok_or_else(|| SeqIoError::parse(0, "no FASTA header found"))?;
        Ok(Reference { name, seq })
    }

    /// Write as FASTA with 70-column wrapping.
    pub fn write_fasta<W: Write>(&self, mut w: W) -> Result<(), SeqIoError> {
        writeln!(w, ">{}", self.name)?;
        for chunk in self.seq.chunks(70) {
            let line: Vec<u8> = chunk
                .iter()
                .map(|&c| {
                    if c < 4 {
                        Base::from_code(c).to_ascii()
                    } else {
                        b'N'
                    }
                })
                .collect();
            w.write_all(&line)?;
            w.write_all(b"\n")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let r = Reference::new("chr21", vec![0, 1, 2, 3, 4, 0, 0, 1]);
        let mut buf = Vec::new();
        r.write_fasta(&mut buf).unwrap();
        let back = Reference::read_fasta(Cursor::new(buf)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn wraps_long_sequences() {
        let r = Reference::new("x", vec![0; 200]);
        let mut buf = Vec::new();
        r.write_fasta(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 1 + 3); // header + ceil(200/70)
        let back = Reference::read_fasta(Cursor::new(text)).unwrap();
        assert_eq!(back.len(), 200);
    }

    #[test]
    fn base_at_handles_n() {
        let r = Reference::new("x", vec![2, 4]);
        assert_eq!(r.base_at(0), Some(Base::G));
        assert_eq!(r.base_at(1), None);
    }

    #[test]
    fn rejects_garbage() {
        let err = Reference::read_fasta(Cursor::new(">x\nACGZ\n")).unwrap_err();
        assert!(err.to_string().contains("invalid base"));
    }

    #[test]
    fn rejects_headerless() {
        let err = Reference::read_fasta(Cursor::new("ACGT\n")).unwrap_err();
        assert!(err.to_string().contains("before FASTA header"));
    }

    #[test]
    fn header_takes_first_token() {
        let r = Reference::read_fasta(Cursor::new(">chr1 homo sapiens\nAC\n")).unwrap();
        assert_eq!(r.name, "chr1");
    }

    #[test]
    #[should_panic(expected = "invalid base codes")]
    fn constructor_validates_codes() {
        let _ = Reference::new("x", vec![9]);
    }
}
