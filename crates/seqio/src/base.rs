//! Nucleotide base codes.
//!
//! Bases are stored as 2-bit codes (`A=0, C=1, G=2, T=3`) throughout the
//! pipelines — the same encoding the paper's `base_word` packing and the
//! 2-bit output compression use. `N` (unknown) appears only at the I/O
//! boundary and in references; aligned reads containing `N` are filtered
//! by the aligner model.

/// A nucleotide base as a 2-bit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Base {
    /// Adenine (code 0).
    A = 0,
    /// Cytosine (code 1).
    C = 1,
    /// Guanine (code 2).
    G = 2,
    /// Thymine (code 3).
    T = 3,
}

/// Code used for an unknown reference base in raw `u8` sequences.
pub const N_CODE: u8 = 4;

impl Base {
    /// All four bases in code order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Construct from a 2-bit code.
    ///
    /// # Panics
    /// Panics if `code > 3`.
    #[inline]
    pub fn from_code(code: u8) -> Base {
        Base::ALL[code as usize]
    }

    /// The 2-bit code.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parse an ASCII character (case-insensitive). Returns `None` for `N`
    /// or any other non-ACGT character.
    pub fn from_ascii(c: u8) -> Option<Base> {
        match c {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' => Some(Base::T),
            _ => None,
        }
    }

    /// Upper-case ASCII representation.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        b"ACGT"[self as usize]
    }

    /// Watson–Crick complement (A↔T, C↔G). On the 2-bit encoding this is
    /// the bitwise NOT of the code: `3 - code`.
    #[inline]
    pub fn complement(self) -> Base {
        Base::from_code(3 - self.code())
    }

    /// Whether `self → other` is a *transition* (purine↔purine A↔G or
    /// pyrimidine↔pyrimidine C↔T). Transitions are ~2× more frequent than
    /// transversions and weighted accordingly in the SNP prior.
    pub fn is_transition(self, other: Base) -> bool {
        matches!(
            (self, other),
            (Base::A, Base::G) | (Base::G, Base::A) | (Base::C, Base::T) | (Base::T, Base::C)
        )
    }
}

/// IUPAC ambiguity code for an unordered genotype (pair of alleles).
/// Homozygous genotypes map to the plain base letter.
pub fn iupac(a: Base, b: Base) -> u8 {
    use Base::*;
    match (a.min(b), a.max(b)) {
        (A, A) => b'A',
        (C, C) => b'C',
        (G, G) => b'G',
        (T, T) => b'T',
        (A, C) => b'M',
        (A, G) => b'R',
        (A, T) => b'W',
        (C, G) => b'S',
        (C, T) => b'Y',
        (G, T) => b'K',
        _ => unreachable!("min/max ordering covers all pairs"),
    }
}

/// Strand of the reference a read aligned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Strand {
    /// Forward (`+`) strand.
    Forward = 0,
    /// Reverse (`-`) strand.
    Reverse = 1,
}

impl Strand {
    /// 1-bit code used by the `base_word` packing.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Construct from a 1-bit code.
    ///
    /// # Panics
    /// Panics if `code > 1`.
    #[inline]
    pub fn from_code(code: u8) -> Strand {
        match code {
            0 => Strand::Forward,
            1 => Strand::Reverse,
            _ => panic!("invalid strand code {code}"),
        }
    }

    /// ASCII `+` / `-`.
    pub fn to_ascii(self) -> u8 {
        match self {
            Strand::Forward => b'+',
            Strand::Reverse => b'-',
        }
    }

    /// Parse ASCII `+` / `-`.
    pub fn from_ascii(c: u8) -> Option<Strand> {
        match c {
            b'+' => Some(Strand::Forward),
            b'-' => Some(Strand::Reverse),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        for b in Base::ALL {
            assert_eq!(Base::from_code(b.code()), b);
            assert_eq!(Base::from_ascii(b.to_ascii()), Some(b));
            assert_eq!(Base::from_ascii(b.to_ascii().to_ascii_lowercase()), Some(b));
        }
    }

    #[test]
    fn n_is_not_a_base() {
        assert_eq!(Base::from_ascii(b'N'), None);
        assert_eq!(Base::from_ascii(b'x'), None);
    }

    #[test]
    fn complement_pairs() {
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::C.complement(), Base::G);
        assert_eq!(Base::G.complement(), Base::C);
        assert_eq!(Base::T.complement(), Base::A);
    }

    #[test]
    fn complement_is_involution() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
        }
    }

    #[test]
    fn transitions() {
        assert!(Base::A.is_transition(Base::G));
        assert!(Base::T.is_transition(Base::C));
        assert!(!Base::A.is_transition(Base::C));
        assert!(!Base::A.is_transition(Base::A));
    }

    #[test]
    fn iupac_codes() {
        assert_eq!(iupac(Base::A, Base::A), b'A');
        assert_eq!(iupac(Base::A, Base::G), b'R');
        assert_eq!(iupac(Base::G, Base::A), b'R'); // order-insensitive
        assert_eq!(iupac(Base::C, Base::T), b'Y');
        assert_eq!(iupac(Base::G, Base::T), b'K');
    }

    #[test]
    fn strand_roundtrip() {
        for s in [Strand::Forward, Strand::Reverse] {
            assert_eq!(Strand::from_code(s.code()), s);
            assert_eq!(Strand::from_ascii(s.to_ascii()), Some(s));
        }
    }
}
