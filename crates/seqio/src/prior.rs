//! Known-SNP prior probabilities.
//!
//! GSNP's third input file carries prior probabilities for known SNP sites
//! (in practice derived from dbSNP). Format, one site per line:
//!
//! ```text
//! chr  pos(1-based)  ref  fA  fC  fG  fT
//! ```
//!
//! where `fX` are the population allele frequencies (summing to ~1).

use std::collections::HashMap;
use std::io::{BufRead, Write};

use crate::base::Base;
use crate::error::SeqIoError;

/// Prior information for one known SNP site.
#[derive(Debug, Clone, PartialEq)]
pub struct KnownSnp {
    /// 0-based site position.
    pub pos: u64,
    /// Reference base recorded in the prior file.
    pub ref_base: Base,
    /// Population allele frequencies indexed by base code.
    pub freqs: [f64; 4],
}

impl KnownSnp {
    /// Validate that frequencies are non-negative and sum to ≈ 1.
    pub fn validate(&self) -> Result<(), SeqIoError> {
        let sum: f64 = self.freqs.iter().sum();
        if self.freqs.iter().any(|&f| !(0.0..=1.0).contains(&f)) || (sum - 1.0).abs() > 1e-3 {
            return Err(SeqIoError::Invariant(format!(
                "allele frequencies at pos {} do not form a distribution (sum = {sum})",
                self.pos + 1
            )));
        }
        Ok(())
    }
}

/// All known-SNP priors for one chromosome, indexed by position.
#[derive(Debug, Clone, Default)]
pub struct PriorMap {
    by_pos: HashMap<u64, KnownSnp>,
}

impl PriorMap {
    /// Build from a list of sites.
    pub fn from_sites(sites: Vec<KnownSnp>) -> Self {
        PriorMap {
            by_pos: sites.into_iter().map(|s| (s.pos, s)).collect(),
        }
    }

    /// Number of known sites.
    pub fn len(&self) -> usize {
        self.by_pos.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.by_pos.is_empty()
    }

    /// Prior at a site, if known.
    pub fn get(&self, pos: u64) -> Option<&KnownSnp> {
        self.by_pos.get(&pos)
    }

    /// Parse from the text format.
    pub fn read<R: BufRead>(reader: R) -> Result<PriorMap, SeqIoError> {
        let mut sites = Vec::new();
        for (i, line) in reader.lines().enumerate() {
            let line = line?;
            let lineno = i as u64 + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let f: Vec<&str> = line.split('\t').collect();
            if f.len() != 7 {
                return Err(SeqIoError::parse(
                    lineno,
                    format!("expected 7 fields, found {}", f.len()),
                ));
            }
            let pos1: u64 = f[1]
                .parse()
                .map_err(|_| SeqIoError::parse(lineno, "pos not an integer"))?;
            if pos1 == 0 {
                return Err(SeqIoError::parse(lineno, "pos must be 1-based"));
            }
            let ref_base = f[2]
                .bytes()
                .next()
                .and_then(Base::from_ascii)
                .ok_or_else(|| SeqIoError::parse(lineno, "invalid reference base"))?;
            let mut freqs = [0.0f64; 4];
            for (k, slot) in freqs.iter_mut().enumerate() {
                *slot = f[3 + k]
                    .parse()
                    .map_err(|_| SeqIoError::parse(lineno, "invalid frequency"))?;
            }
            let snp = KnownSnp {
                pos: pos1 - 1,
                ref_base,
                freqs,
            };
            snp.validate()?;
            sites.push(snp);
        }
        Ok(PriorMap::from_sites(sites))
    }

    /// Serialize to the text format (sorted by position).
    pub fn write<W: Write>(&self, chr: &str, mut w: W) -> Result<(), SeqIoError> {
        let mut sites: Vec<&KnownSnp> = self.by_pos.values().collect();
        sites.sort_by_key(|s| s.pos);
        for s in sites {
            writeln!(
                w,
                "{}\t{}\t{}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
                chr,
                s.pos + 1,
                s.ref_base.to_ascii() as char,
                s.freqs[0],
                s.freqs[1],
                s.freqs[2],
                s.freqs[3],
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn snp(pos: u64) -> KnownSnp {
        KnownSnp {
            pos,
            ref_base: Base::A,
            freqs: [0.7, 0.0, 0.3, 0.0],
        }
    }

    #[test]
    fn roundtrip() {
        let m = PriorMap::from_sites(vec![snp(10), snp(99)]);
        let mut buf = Vec::new();
        m.write("chr21", &mut buf).unwrap();
        let back = PriorMap::read(Cursor::new(buf)).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(10).unwrap().freqs[0], 0.7);
        assert!(back.get(11).is_none());
    }

    #[test]
    fn validates_distribution() {
        let bad = KnownSnp {
            pos: 0,
            ref_base: Base::A,
            freqs: [0.9, 0.9, 0.0, 0.0],
        };
        assert!(bad.validate().is_err());
        assert!(snp(0).validate().is_ok());
    }

    #[test]
    fn read_skips_comments() {
        let text = "# header\nchr1\t5\tA\t1.0\t0\t0\t0\n";
        let m = PriorMap::read(Cursor::new(text)).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(4).unwrap().ref_base, Base::A);
    }

    #[test]
    fn read_rejects_short_lines() {
        let err = PriorMap::read(Cursor::new("chr1\t5\tA\t1.0\n")).unwrap_err();
        assert!(err.to_string().contains("expected 7 fields"));
    }
}
