//! Error type for sequence I/O.

use std::fmt;
use std::io;

/// Errors produced while reading or writing sequence data.
#[derive(Debug)]
pub enum SeqIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line or record did not match the expected format.
    Parse {
        /// 1-based line number where the problem was found, if known.
        line: u64,
        /// Description of what was wrong.
        msg: String,
    },
    /// Records violated an ordering or consistency invariant (e.g. an
    /// alignment file not sorted by position).
    Invariant(String),
}

impl SeqIoError {
    /// Convenience constructor for parse failures.
    pub fn parse(line: u64, msg: impl Into<String>) -> Self {
        SeqIoError::Parse {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for SeqIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqIoError::Io(e) => write!(f, "I/O error: {e}"),
            SeqIoError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            SeqIoError::Invariant(msg) => write!(f, "invariant violation: {msg}"),
        }
    }
}

impl std::error::Error for SeqIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SeqIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SeqIoError {
    fn from(e: io::Error) -> Self {
        SeqIoError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SeqIoError::parse(17, "bad column count");
        assert_eq!(e.to_string(), "parse error at line 17: bad column count");
        let e = SeqIoError::Invariant("unsorted".into());
        assert!(e.to_string().contains("unsorted"));
    }

    #[test]
    fn io_error_wraps() {
        let e: SeqIoError = io::Error::new(io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(e.to_string().contains("eof"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
