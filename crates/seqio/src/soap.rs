//! SOAP-style alignment records.
//!
//! GSNP's main input file holds short-read alignment results **ordered by
//! matched position in the reference** — the format produced by the SOAP
//! aligner. We model the columns the SNP caller consumes:
//!
//! ```text
//! id  seq  qual  nhits  len  strand  chr  pos
//! ```
//!
//! * `seq` — read bases as aligned to the **forward** reference strand
//!   (reverse-strand reads are stored reverse-complemented, as SOAP does).
//! * `qual` — Phred quality per base, ASCII offset 33, range 0–63,
//!   in **sequencing order** (i.e. for reverse-strand reads the string is
//!   reversed relative to `seq`).
//! * `pos` — 1-based leftmost match position on the reference.
//!
//! Quality coordinates matter: the Bayesian model indexes its recalibration
//! matrix by *sequencing cycle*, so [`AlignedRead::obs_at`] maps an offset
//! on the reference back to the cycle it was sequenced in.

use std::io::{BufRead, Write};

use crate::base::{Base, Strand};
use crate::error::SeqIoError;

/// Maximum representable quality score (6 bits in the `base_word` packing).
pub const MAX_QUAL: u8 = 63;

/// One aligned short read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignedRead {
    /// Read identifier.
    pub id: String,
    /// Base codes (0..=3) as aligned to the forward strand.
    pub seq: Vec<u8>,
    /// Phred quality scores in sequencing order, 0..=63.
    pub qual: Vec<u8>,
    /// Number of equally-good alignment hits (1 = unique).
    pub nhits: u32,
    /// Strand the read aligned to.
    pub strand: Strand,
    /// Reference sequence name.
    pub chr: String,
    /// 0-based leftmost match position.
    pub pos: u64,
}

impl AlignedRead {
    /// Read length in base pairs.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the read is empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Observation for the base covering reference position `pos + offset`:
    /// `(base, quality, cycle)` where `cycle` is the 0-based position within
    /// the read *in sequencing order*.
    ///
    /// For a forward read the cycle equals the offset; for a reverse read
    /// the first sequenced base aligns at the rightmost reference position,
    /// so `cycle = len - 1 - offset`.
    #[inline]
    pub fn obs_at(&self, offset: usize) -> (Base, u8, u8) {
        debug_assert!(offset < self.seq.len());
        let cycle = match self.strand {
            Strand::Forward => offset,
            Strand::Reverse => self.seq.len() - 1 - offset,
        };
        (
            Base::from_code(self.seq[offset]),
            self.qual[cycle],
            cycle as u8,
        )
    }

    /// Serialize one record as a tab-separated line.
    pub fn write_line<W: Write>(&self, w: &mut W) -> Result<(), SeqIoError> {
        let seq: Vec<u8> = self
            .seq
            .iter()
            .map(|&c| Base::from_code(c).to_ascii())
            .collect();
        let qual: Vec<u8> = self.qual.iter().map(|&q| q + 33).collect();
        writeln!(
            w,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.id,
            std::str::from_utf8(&seq).expect("ASCII"),
            std::str::from_utf8(&qual).expect("ASCII"),
            self.nhits,
            self.seq.len(),
            self.strand.to_ascii() as char,
            self.chr,
            self.pos + 1,
        )?;
        Ok(())
    }

    /// Parse one tab-separated line (`lineno` is used in error messages).
    pub fn parse_line(line: &str, lineno: u64) -> Result<AlignedRead, SeqIoError> {
        let mut f = line.trim_end().split('\t');
        let mut next = |what: &str| {
            f.next()
                .ok_or_else(|| SeqIoError::parse(lineno, format!("missing field: {what}")))
        };
        let id = next("id")?.to_string();
        let seq_s = next("seq")?;
        let qual_s = next("qual")?;
        let nhits: u32 = next("nhits")?
            .parse()
            .map_err(|_| SeqIoError::parse(lineno, "nhits not an integer"))?;
        let len: usize = next("len")?
            .parse()
            .map_err(|_| SeqIoError::parse(lineno, "len not an integer"))?;
        let strand_s = next("strand")?;
        let chr = next("chr")?.to_string();
        let pos1: u64 = next("pos")?
            .parse()
            .map_err(|_| SeqIoError::parse(lineno, "pos not an integer"))?;
        if pos1 == 0 {
            return Err(SeqIoError::parse(lineno, "pos must be 1-based"));
        }

        let seq: Vec<u8> = seq_s
            .bytes()
            .map(|c| {
                Base::from_ascii(c).map(Base::code).ok_or_else(|| {
                    SeqIoError::parse(lineno, format!("invalid base {:?}", c as char))
                })
            })
            .collect::<Result<_, _>>()?;
        let qual: Vec<u8> = qual_s
            .bytes()
            .map(|c| {
                c.checked_sub(33)
                    .filter(|&q| q <= MAX_QUAL)
                    .ok_or_else(|| SeqIoError::parse(lineno, "quality out of range"))
            })
            .collect::<Result<_, _>>()?;
        if seq.len() != len || qual.len() != len {
            return Err(SeqIoError::parse(lineno, "seq/qual length mismatch"));
        }
        let strand = strand_s
            .bytes()
            .next()
            .and_then(Strand::from_ascii)
            .ok_or_else(|| SeqIoError::parse(lineno, "invalid strand"))?;
        Ok(AlignedRead {
            id,
            seq,
            qual,
            nhits,
            strand,
            chr,
            pos: pos1 - 1,
        })
    }
}

/// Write a position-sorted batch of alignments.
///
/// # Errors
/// Returns an error if the records are not sorted by `pos`.
pub fn write_alignments<W: Write>(reads: &[AlignedRead], mut w: W) -> Result<(), SeqIoError> {
    let sorted = reads.windows(2).all(|p| p[0].pos <= p[1].pos);
    if !sorted {
        return Err(SeqIoError::Invariant(
            "alignment records must be sorted by position".into(),
        ));
    }
    for r in reads {
        r.write_line(&mut w)?;
    }
    Ok(())
}

/// Streaming reader over an alignment file that enforces position order.
pub struct AlignmentReader<R: BufRead> {
    reader: R,
    line: String,
    lineno: u64,
    last_pos: u64,
}

impl<R: BufRead> AlignmentReader<R> {
    /// Wrap a buffered reader.
    pub fn new(reader: R) -> Self {
        AlignmentReader {
            reader,
            line: String::new(),
            lineno: 0,
            last_pos: 0,
        }
    }

    /// Read the next record, or `None` at end of stream.
    pub fn next_read(&mut self) -> Result<Option<AlignedRead>, SeqIoError> {
        loop {
            self.line.clear();
            let n = self.reader.read_line(&mut self.line)?;
            if n == 0 {
                return Ok(None);
            }
            self.lineno += 1;
            if self.line.trim().is_empty() {
                continue;
            }
            let read = AlignedRead::parse_line(&self.line, self.lineno)?;
            if read.pos < self.last_pos {
                return Err(SeqIoError::Invariant(format!(
                    "alignment file not sorted at line {}: pos {} after {}",
                    self.lineno,
                    read.pos + 1,
                    self.last_pos + 1
                )));
            }
            self.last_pos = read.pos;
            return Ok(Some(read));
        }
    }
}

impl<R: BufRead> Iterator for AlignmentReader<R> {
    type Item = Result<AlignedRead, SeqIoError>;
    fn next(&mut self) -> Option<Self::Item> {
        self.next_read().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> AlignedRead {
        AlignedRead {
            id: "r1".into(),
            seq: vec![0, 1, 2, 3],
            qual: vec![30, 31, 32, 33],
            nhits: 1,
            strand: Strand::Forward,
            chr: "chr21".into(),
            pos: 99,
        }
    }

    #[test]
    fn line_roundtrip() {
        let r = sample();
        let mut buf = Vec::new();
        r.write_line(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("r1\tACGT\t"));
        let back = AlignedRead::parse_line(&text, 1).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn obs_at_forward() {
        let r = sample();
        let (b, q, cycle) = r.obs_at(2);
        assert_eq!(b, Base::G);
        assert_eq!(q, 32);
        assert_eq!(cycle, 2);
    }

    #[test]
    fn obs_at_reverse_maps_cycle() {
        let mut r = sample();
        r.strand = Strand::Reverse;
        // Offset 0 on the reference was the *last* cycle sequenced.
        let (_, q, cycle) = r.obs_at(0);
        assert_eq!(cycle, 3);
        assert_eq!(q, 33);
        let (_, q, cycle) = r.obs_at(3);
        assert_eq!(cycle, 0);
        assert_eq!(q, 30);
    }

    #[test]
    fn reader_enforces_sort_order() {
        let mut a = sample();
        a.pos = 10;
        let mut b = sample();
        b.pos = 5;
        let mut buf = Vec::new();
        a.write_line(&mut buf).unwrap();
        b.write_line(&mut buf).unwrap();
        let mut rd = AlignmentReader::new(Cursor::new(buf));
        assert!(rd.next_read().unwrap().is_some());
        let err = rd.next_read().unwrap_err();
        assert!(matches!(err, SeqIoError::Invariant(_)), "{err}");
    }

    #[test]
    fn write_alignments_rejects_unsorted() {
        let mut a = sample();
        a.pos = 10;
        let mut b = sample();
        b.pos = 5;
        let err = write_alignments(&[a, b], Vec::new()).unwrap_err();
        assert!(matches!(err, SeqIoError::Invariant(_)));
    }

    #[test]
    fn parse_rejects_bad_quality() {
        // Quality 64 (ASCII 97 = 'a') is out of the 6-bit range.
        let line = "r\tA\ta\t1\t1\t+\tc\t1";
        let err = AlignedRead::parse_line(line, 3).unwrap_err();
        assert!(err.to_string().contains("quality out of range"));
    }

    #[test]
    fn parse_rejects_length_mismatch() {
        let line = "r\tAC\t5\t1\t2\t+\tc\t1";
        let err = AlignedRead::parse_line(line, 1).unwrap_err();
        assert!(err.to_string().contains("length mismatch"));
    }

    #[test]
    fn parse_rejects_zero_position() {
        let line = "r\tA\t5\t1\t1\t+\tc\t0";
        assert!(AlignedRead::parse_line(line, 1).is_err());
    }

    #[test]
    fn reader_skips_blank_lines() {
        let mut buf = Vec::new();
        sample().write_line(&mut buf).unwrap();
        buf.extend_from_slice(b"\n");
        let reads: Vec<_> = AlignmentReader::new(Cursor::new(buf))
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(reads.len(), 1);
    }
}
