//! The 17-column SNP result table.
//!
//! SOAPsnp (and therefore GSNP) emits one row per reference site. The paper
//! describes the output as "a table containing 17 columns" and compresses
//! it column-by-column; the columns here follow SOAPsnp's consensus format:
//!
//! | # | column | notes |
//! |---|--------|-------|
//! | 1 | chromosome name | constant within a file |
//! | 2 | position (1-based) | consecutive within a window |
//! | 3 | reference base | A/C/G/T/N |
//! | 4 | consensus genotype | IUPAC code |
//! | 5 | consensus quality | Phred, 0–99 |
//! | 6 | best base | A/C/G/T/N |
//! | 7 | average quality of best base | 0–63 |
//! | 8 | count of unique reads supporting best | |
//! | 9 | count of all reads supporting best | |
//! | 10 | second-best base | A/C/G/T/N |
//! | 11 | average quality of second-best | 0–63 |
//! | 12 | count of unique reads supporting second | |
//! | 13 | count of all reads supporting second | |
//! | 14 | sequencing depth | |
//! | 15 | allele-balance p-value | 3 decimals |
//! | 16 | copy-number estimate | 3 decimals |
//! | 17 | known-SNP flag | 0/1 |
//!
//! Columns 10–13 are the "second allele" columns the paper compresses with
//! sparse encoding; columns 5, 7, 11, 14, 15, 16 are the six
//! "quality-related" columns compressed with RLE-DICT.

use std::io::{BufRead, Write};

use crate::base::{Base, N_CODE};
use crate::error::SeqIoError;

/// One row of the result table (position is implied by the table).
///
/// Fractional columns are stored pre-discretized to 1/1000 units — this is
/// both what the text format prints (3 decimals) and what makes the
/// dictionary compression of the paper applicable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnpRow {
    /// Reference base code (0..=3, or [`N_CODE`]).
    pub ref_base: u8,
    /// Consensus genotype as an IUPAC ASCII letter (`N` when uncalled).
    pub genotype: u8,
    /// Phred-scaled consensus quality, 0–99.
    pub quality: u8,
    /// Best-supported base code (or [`N_CODE`] when no coverage).
    pub best_base: u8,
    /// Rounded average quality of bases supporting the best base.
    pub avg_qual_best: u8,
    /// Unique reads supporting the best base.
    pub count_uniq_best: u16,
    /// All reads supporting the best base.
    pub count_all_best: u16,
    /// Second-best base code (or [`N_CODE`]).
    pub second_base: u8,
    /// Rounded average quality of bases supporting the second-best base.
    pub avg_qual_second: u8,
    /// Unique reads supporting the second-best base.
    pub count_uniq_second: u16,
    /// All reads supporting the second-best base.
    pub count_all_second: u16,
    /// Total aligned depth at the site.
    pub depth: u16,
    /// Allele-balance p-value in 1/1000 units (0–1000).
    pub rank_sum_milli: u16,
    /// Copy-number estimate in 1/1000 units.
    pub copy_milli: u16,
    /// 1 if the site appears in the known-SNP prior file.
    pub is_known_snp: u8,
}

impl Default for SnpRow {
    /// An uncalled site: genotype `N`, no coverage, p-value 1.000.
    fn default() -> Self {
        SnpRow {
            ref_base: N_CODE,
            genotype: b'N',
            quality: 0,
            best_base: N_CODE,
            avg_qual_best: 0,
            count_uniq_best: 0,
            count_all_best: 0,
            second_base: N_CODE,
            avg_qual_second: 0,
            count_uniq_second: 0,
            count_all_second: 0,
            depth: 0,
            rank_sum_milli: 1000,
            copy_milli: 0,
            is_known_snp: 0,
        }
    }
}

impl SnpRow {
    /// Whether this row calls a variant (consensus differs from reference).
    pub fn is_variant(&self) -> bool {
        self.ref_base < 4 && self.genotype != base_char(self.ref_base) && self.genotype != b'N'
    }
}

fn base_char(code: u8) -> u8 {
    if code < 4 {
        Base::from_code(code).to_ascii()
    } else {
        b'N'
    }
}

fn base_code(c: u8) -> Result<u8, ()> {
    match Base::from_ascii(c) {
        Some(b) => Ok(b.code()),
        None if c == b'N' => Ok(N_CODE),
        None => Err(()),
    }
}

/// A contiguous run of result rows for one chromosome (one output window).
#[derive(Debug, Clone, PartialEq)]
pub struct SnpTable {
    /// Chromosome name (column 1 for every row).
    pub chr: String,
    /// 0-based position of the first row; rows cover consecutive sites.
    pub start_pos: u64,
    /// The rows.
    pub rows: Vec<SnpRow>,
}

impl SnpTable {
    /// Create a table.
    pub fn new(chr: impl Into<String>, start_pos: u64, rows: Vec<SnpRow>) -> Self {
        SnpTable {
            chr: chr.into(),
            start_pos,
            rows,
        }
    }

    /// Number of rows (sites).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serialize as SOAPsnp-style tab-separated text.
    pub fn write_text<W: Write>(&self, w: &mut W) -> Result<(), SeqIoError> {
        for (i, r) in self.rows.iter().enumerate() {
            writeln!(
                w,
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}.{:03}\t{}.{:03}\t{}",
                self.chr,
                self.start_pos + i as u64 + 1,
                base_char(r.ref_base) as char,
                r.genotype as char,
                r.quality,
                base_char(r.best_base) as char,
                r.avg_qual_best,
                r.count_uniq_best,
                r.count_all_best,
                base_char(r.second_base) as char,
                r.avg_qual_second,
                r.count_uniq_second,
                r.count_all_second,
                r.depth,
                r.rank_sum_milli / 1000,
                r.rank_sum_milli % 1000,
                r.copy_milli / 1000,
                r.copy_milli % 1000,
                r.is_known_snp,
            )?;
        }
        Ok(())
    }

    /// Parse text produced by [`SnpTable::write_text`]. Requires at least
    /// one row (the chromosome name and start position come from the data).
    pub fn read_text<R: BufRead>(reader: R) -> Result<SnpTable, SeqIoError> {
        let mut chr: Option<String> = None;
        let mut start_pos = 0u64;
        let mut rows = Vec::new();
        for (i, line) in reader.lines().enumerate() {
            let line = line?;
            let lineno = i as u64 + 1;
            if line.trim().is_empty() {
                continue;
            }
            let f: Vec<&str> = line.trim_end().split('\t').collect();
            if f.len() != 17 {
                return Err(SeqIoError::parse(
                    lineno,
                    format!("expected 17 columns, found {}", f.len()),
                ));
            }
            let pos1: u64 = f[1]
                .parse()
                .map_err(|_| SeqIoError::parse(lineno, "bad position"))?;
            match &chr {
                None => {
                    chr = Some(f[0].to_string());
                    start_pos = pos1 - 1;
                }
                Some(c) => {
                    if c != f[0] {
                        return Err(SeqIoError::parse(lineno, "chromosome changed mid-table"));
                    }
                    if pos1 - 1 != start_pos + rows.len() as u64 {
                        return Err(SeqIoError::parse(lineno, "positions not consecutive"));
                    }
                }
            }
            let byte = |s: &str| s.bytes().next().unwrap_or(b'?');
            let int = |s: &str, what: &str| -> Result<u64, SeqIoError> {
                s.parse()
                    .map_err(|_| SeqIoError::parse(lineno, format!("bad {what}")))
            };
            let milli = |s: &str, what: &str| -> Result<u16, SeqIoError> {
                let (a, b) = s
                    .split_once('.')
                    .ok_or_else(|| SeqIoError::parse(lineno, format!("bad {what}")))?;
                let whole: u16 = a
                    .parse()
                    .map_err(|_| SeqIoError::parse(lineno, format!("bad {what}")))?;
                if b.len() != 3 {
                    return Err(SeqIoError::parse(lineno, format!("bad {what} precision")));
                }
                let frac: u16 = b
                    .parse()
                    .map_err(|_| SeqIoError::parse(lineno, format!("bad {what}")))?;
                Ok(whole * 1000 + frac)
            };
            rows.push(SnpRow {
                ref_base: base_code(byte(f[2]))
                    .map_err(|_| SeqIoError::parse(lineno, "bad reference base"))?,
                genotype: byte(f[3]),
                quality: int(f[4], "quality")? as u8,
                best_base: base_code(byte(f[5]))
                    .map_err(|_| SeqIoError::parse(lineno, "bad best base"))?,
                avg_qual_best: int(f[6], "avg qual")? as u8,
                count_uniq_best: int(f[7], "count")? as u16,
                count_all_best: int(f[8], "count")? as u16,
                second_base: base_code(byte(f[9]))
                    .map_err(|_| SeqIoError::parse(lineno, "bad second base"))?,
                avg_qual_second: int(f[10], "avg qual")? as u8,
                count_uniq_second: int(f[11], "count")? as u16,
                count_all_second: int(f[12], "count")? as u16,
                depth: int(f[13], "depth")? as u16,
                rank_sum_milli: milli(f[14], "p-value")?,
                copy_milli: milli(f[15], "copy number")?,
                is_known_snp: int(f[16], "known flag")? as u8,
            });
        }
        let chr = chr.ok_or_else(|| SeqIoError::parse(0, "empty result table"))?;
        Ok(SnpTable {
            chr,
            start_pos,
            rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn row(q: u8) -> SnpRow {
        SnpRow {
            ref_base: 0,
            genotype: b'R',
            quality: q,
            best_base: 0,
            avg_qual_best: 35,
            count_uniq_best: 7,
            count_all_best: 7,
            second_base: 2,
            avg_qual_second: 30,
            count_uniq_second: 3,
            count_all_second: 3,
            depth: 10,
            rank_sum_milli: 345,
            copy_milli: 1021,
            is_known_snp: 1,
        }
    }

    #[test]
    fn text_roundtrip() {
        let t = SnpTable::new("chr21", 1000, vec![row(40), row(50), SnpRow::default()]);
        let mut buf = Vec::new();
        t.write_text(&mut buf).unwrap();
        let back = SnpTable::read_text(Cursor::new(buf)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn text_has_17_columns() {
        let t = SnpTable::new("c", 0, vec![row(1)]);
        let mut buf = Vec::new();
        t.write_text(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.trim_end().split('\t').count(), 17);
        assert!(text.contains("0.345"));
        assert!(text.contains("1.021"));
    }

    #[test]
    fn default_row_is_n_site() {
        let r = SnpRow::default();
        assert!(!r.is_variant());
        let t = SnpTable::new("c", 0, vec![r]);
        let mut buf = Vec::new();
        t.write_text(&mut buf).unwrap();
        // Default best/second/ref base code 0 = 'A'; genotype 0 is NUL —
        // pipelines always set genotype, but serialization must not panic.
        assert!(!buf.is_empty());
    }

    #[test]
    fn variant_detection() {
        let mut r = row(40);
        r.ref_base = 0; // A
        r.genotype = b'A';
        assert!(!r.is_variant());
        r.genotype = b'R';
        assert!(r.is_variant());
        r.genotype = b'N';
        assert!(!r.is_variant());
    }

    #[test]
    fn read_rejects_nonconsecutive() {
        let t = SnpTable::new("c", 0, vec![row(1), row(2)]);
        let mut buf = Vec::new();
        t.write_text(&mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text = text.replace("c\t2", "c\t9");
        let err = SnpTable::read_text(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("not consecutive"));
    }

    #[test]
    fn read_rejects_wrong_arity() {
        let err = SnpTable::read_text(Cursor::new("a\tb\tc\n")).unwrap_err();
        assert!(err.to_string().contains("expected 17 columns"));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(SnpTable::read_text(Cursor::new("")).is_err());
    }
}
