//! # seqio — sequence I/O and synthetic workloads for GSNP
//!
//! Everything GSNP reads or writes, plus the synthetic workload generator
//! that stands in for BGI's operational human-genome data:
//!
//! * [`base`] — nucleotide codes (2-bit A/C/G/T plus N) and complements.
//! * [`fasta`] — reference sequences.
//! * [`soap`] — SOAP-style short-read alignment records (the paper's main
//!   input: hundreds of GB of alignments sorted by matched position).
//! * [`prior`] — known-SNP prior probabilities (dbSNP-like input).
//! * [`result`] — the 17-column SNP result table produced by SOAPsnp and
//!   GSNP, with its plain-text serialization.
//! * [`synth`] — reproducible synthetic genome + short-read simulator with
//!   planted SNPs, quality decay, and configurable depth/coverage.
//! * [`window`] — the `read_site` component: streams alignments into
//!   fixed-size windows of per-site aligned-base observations.

pub mod base;
pub mod error;
pub mod fasta;
pub mod prior;
pub mod result;
pub mod soap;
pub mod synth;
pub mod window;

pub use base::{Base, Strand};
pub use error::SeqIoError;
pub use fasta::Reference;
pub use prior::KnownSnp;
pub use result::SnpRow;
pub use soap::AlignedRead;
pub use synth::{Cohort, CohortConfig, CohortSample, Dataset, SynthConfig};
pub use window::{SiteObs, Window, WindowReader};
