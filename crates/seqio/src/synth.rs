//! Synthetic genome and short-read workload generator.
//!
//! The paper evaluates GSNP on BGI's operational whole-human-genome data
//! (142 GB of alignments; proprietary). This module is the substitution:
//! a reproducible simulator producing *scale models* of those datasets —
//! same sequencing depth, coverage ratio, read length, error behaviour and
//! quality-score run structure, with the site count scaled down. Every
//! per-site statistic the GSNP algorithms are sensitive to (`base_occ`
//! sparsity, fraction of uncovered sites, quality-run lengths for RLE) is
//! governed by these intensive parameters, not by genome size.
//!
//! The generator plants germline SNPs with a transition/transversion bias,
//! builds a diploid donor, and sequences reads with a per-cycle
//! quality-decay model; errors are drawn at the rate the quality scores
//! promise (so the Bayesian caller's model is well-specified, as it is for
//! real Illumina data after recalibration).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::base::{Base, Strand, N_CODE};
use crate::fasta::Reference;
use crate::prior::{KnownSnp, PriorMap};
use crate::soap::AlignedRead;

/// Configuration for one synthetic chromosome dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Chromosome name used in all records.
    pub chr_name: String,
    /// Number of reference sites.
    pub num_sites: u64,
    /// Target sequencing depth over covered regions.
    pub depth: f64,
    /// Read length in base pairs.
    pub read_len: usize,
    /// Fraction of sites covered by reads (the paper's "coverage ratio").
    pub coverage: f64,
    /// Rate at which germline SNPs are planted in the donor.
    pub snp_rate: f64,
    /// Fraction of planted SNPs that also appear in the known-SNP priors.
    pub known_fraction: f64,
    /// Fraction of reference N bases.
    pub n_rate: f64,
    /// RNG seed; identical configs generate identical datasets.
    pub seed: u64,
}

impl SynthConfig {
    /// Tiny dataset for unit and property tests (milliseconds to generate).
    pub fn tiny(seed: u64) -> Self {
        SynthConfig {
            chr_name: "tiny".into(),
            num_sites: 5_000,
            depth: 8.0,
            read_len: 50,
            coverage: 0.85,
            snp_rate: 2e-3,
            known_fraction: 0.5,
            n_rate: 0.002,
            seed,
        }
    }

    /// Scale model of the paper's Chromosome 1 (Table II: 247 M sites,
    /// 11×, 88% coverage, 100 bp reads) at `scale` × 1/100 of full size.
    pub fn ch1_mini(scale: f64) -> Self {
        SynthConfig {
            chr_name: "chr1".into(),
            num_sites: ((2_470_000.0 * scale) as u64).max(1),
            depth: 11.0,
            read_len: 100,
            coverage: 0.88,
            snp_rate: 1e-3,
            known_fraction: 0.6,
            n_rate: 0.005,
            seed: 0x6510_0001,
        }
    }

    /// Scale model of the paper's Chromosome 21 (47 M sites, 9.6×, 68%
    /// coverage) at `scale` × 1/100 of full size.
    pub fn ch21_mini(scale: f64) -> Self {
        SynthConfig {
            chr_name: "chr21".into(),
            num_sites: ((470_000.0 * scale) as u64).max(1),
            depth: 9.6,
            read_len: 100,
            coverage: 0.68,
            snp_rate: 1e-3,
            known_fraction: 0.6,
            n_rate: 0.005,
            seed: 0x6510_0021,
        }
    }

    /// Scale model for human chromosome `i` (1-based, 1..=24 where 23 = X,
    /// 24 = Y), interpolating real chromosome lengths, for the Fig. 12
    /// whole-genome sweep.
    pub fn chromosome(i: usize, scale: f64) -> Self {
        assert!((1..=24).contains(&i), "chromosome index out of range");
        // Approximate human chromosome lengths in Mbp (GRCh37).
        const MBP: [f64; 24] = [
            249.0, 243.0, 198.0, 191.0, 181.0, 171.0, 159.0, 146.0, 141.0, 135.0, 135.0, 134.0,
            115.0, 107.0, 103.0, 90.0, 81.0, 78.0, 59.0, 63.0, 47.0, 51.0, 155.0, 59.0,
        ];
        let name = match i {
            23 => "chrX".to_string(),
            24 => "chrY".to_string(),
            _ => format!("chr{i}"),
        };
        SynthConfig {
            chr_name: name,
            num_sites: ((MBP[i - 1] * 10_000.0 * scale) as u64).max(1),
            depth: 10.0,
            read_len: 100,
            coverage: 0.85,
            snp_rate: 1e-3,
            known_fraction: 0.6,
            n_rate: 0.005,
            seed: 0x6510_0100 + i as u64,
        }
    }
}

/// A planted variant in the donor (ground truth for accuracy checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlantedSnp {
    /// 0-based site.
    pub pos: u64,
    /// Donor genotype (unordered allele pair).
    pub alleles: (Base, Base),
}

/// A complete synthetic dataset: the three input files of the SNP-calling
/// workflow plus the ground truth.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The configuration that generated this dataset.
    pub config: SynthConfig,
    /// Reference sequence (input file 2).
    pub reference: Reference,
    /// Position-sorted alignments (input file 1).
    pub reads: Vec<AlignedRead>,
    /// Known-SNP priors (input file 3).
    pub priors: PriorMap,
    /// Planted variants.
    pub truth: Vec<PlantedSnp>,
}

impl Dataset {
    /// Generate a dataset from a configuration. Deterministic in the seed.
    pub fn generate(config: SynthConfig) -> Dataset {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = config.num_sites as usize;

        // --- Reference ---
        let mut seq: Vec<u8> = (0..n).map(|_| rng.gen_range(0..4u8)).collect();
        // N bases arrive in short runs, as they do in real assemblies.
        let mut i = 0usize;
        while i < n {
            if rng.gen_bool(config.n_rate / 8.0) {
                let run = rng.gen_range(1..=16usize).min(n - i);
                seq[i..i + run].fill(N_CODE);
                i += run;
            } else {
                i += 1;
            }
        }
        let reference = Reference::new(config.chr_name.clone(), seq);

        // --- Covered intervals ---
        let intervals = covered_intervals(&mut rng, n as u64, config.coverage, config.read_len);
        let covered_sites: u64 = intervals.iter().map(|&(s, e)| e - s).sum();

        // --- Diploid donor with planted SNPs ---
        let mut truth = Vec::new();
        let mut hap = [reference.seq.clone(), reference.seq.clone()];
        for &(s, e) in &intervals {
            for pos in s..e {
                let r = reference.seq[pos as usize];
                if r >= 4 || !rng.gen_bool(config.snp_rate) {
                    continue;
                }
                let ref_base = Base::from_code(r);
                let alt = sample_alt(&mut rng, ref_base);
                // 2/3 heterozygous, 1/3 homozygous alternate.
                let (a1, a2) = if rng.gen_bool(2.0 / 3.0) {
                    (ref_base, alt)
                } else {
                    (alt, alt)
                };
                if a1 != ref_base {
                    hap[0][pos as usize] = a1.code();
                }
                if a2 != ref_base {
                    hap[1][pos as usize] = a2.code();
                }
                truth.push(PlantedSnp {
                    pos,
                    alleles: if a1 <= a2 { (a1, a2) } else { (a2, a1) },
                });
            }
        }

        // --- Known-SNP priors ---
        let mut prior_sites = Vec::new();
        for t in &truth {
            if rng.gen_bool(config.known_fraction) {
                let r = reference.seq[t.pos as usize];
                if r >= 4 {
                    continue;
                }
                let ref_base = Base::from_code(r);
                let alt = if t.alleles.0 != ref_base {
                    t.alleles.0
                } else {
                    t.alleles.1
                };
                let mut freqs = [0.0f64; 4];
                let alt_f = rng.gen_range(0.05..0.5);
                freqs[ref_base.code() as usize] = 1.0 - alt_f;
                freqs[alt.code() as usize] += alt_f;
                prior_sites.push(KnownSnp {
                    pos: t.pos,
                    ref_base,
                    freqs,
                });
            }
        }

        // --- Reads ---
        let num_reads = ((config.depth * covered_sites as f64) / config.read_len as f64) as usize;
        let mut reads = Vec::with_capacity(num_reads);
        let usable: Vec<&(u64, u64)> = intervals
            .iter()
            .filter(|&&(s, e)| (e - s) as usize >= config.read_len)
            .collect();
        if !usable.is_empty() {
            let weights: Vec<u64> = usable
                .iter()
                .map(|&&(s, e)| e - s - config.read_len as u64 + 1)
                .collect();
            let total_weight: u64 = weights.iter().sum();
            for ridx in 0..num_reads {
                // Weighted interval choice, then uniform start within it.
                let mut pick = rng.gen_range(0..total_weight);
                let mut iv = 0usize;
                while pick >= weights[iv] {
                    pick -= weights[iv];
                    iv += 1;
                }
                let (s, _e) = *usable[iv];
                let pos = s + pick;
                reads.push(sequence_read(&mut rng, &config, &hap, pos, ridx));
            }
            // Pileup hotspots: real resequencing data has repeat-driven
            // coverage spikes reaching hundreds of reads. They are what
            // push the largest base_word arrays into the 128/256 sorting
            // classes the paper observes (§VI-C, Fig. 7b).
            let num_hotspots = (covered_sites / 25_000).max(1) as usize;
            let hotspot_reads = num_reads / 25;
            for h in 0..num_hotspots {
                let mut pick = rng.gen_range(0..total_weight);
                let mut iv = 0usize;
                while pick >= weights[iv] {
                    pick -= weights[iv];
                    iv += 1;
                }
                let (s, _e) = *usable[iv];
                let center = s + pick;
                let per_spot = (hotspot_reads / num_hotspots).clamp(8, 48);
                for k in 0..per_spot {
                    // Starts cluster tightly so per-site depth spikes.
                    let span = (config.read_len as u64 / 2).max(1);
                    let lo = center.saturating_sub(span).max(s);
                    let pos = rng.gen_range(lo..=center).min(_e - config.read_len as u64);
                    reads.push(sequence_read(
                        &mut rng,
                        &config,
                        &hap,
                        pos.max(s),
                        num_reads + h * per_spot + k,
                    ));
                }
            }
        }
        reads.sort_by_key(|r| r.pos);

        Dataset {
            config,
            reference,
            reads,
            priors: PriorMap::from_sites(prior_sites),
            truth,
        }
    }

    /// Total aligned bases across all reads.
    pub fn total_aligned_bases(&self) -> u64 {
        self.reads.iter().map(|r| r.len() as u64).sum()
    }

    /// Realized sequencing depth (aligned bases / sites).
    pub fn realized_depth(&self) -> f64 {
        self.total_aligned_bases() as f64 / self.config.num_sites as f64
    }

    /// Fraction of sites covered by at least one read.
    pub fn realized_coverage(&self) -> f64 {
        let n = self.config.num_sites as usize;
        let mut covered = vec![false; n];
        for r in &self.reads {
            let end = ((r.pos as usize) + r.len()).min(n);
            covered[r.pos as usize..end].fill(true);
        }
        covered.iter().filter(|&&c| c).count() as f64 / n as f64
    }

    /// Serialized size of the alignment input in bytes (Table II's "Input").
    pub fn input_text_size(&self) -> u64 {
        let mut buf = Vec::new();
        for r in &self.reads {
            r.write_line(&mut buf).expect("in-memory write");
        }
        buf.len() as u64
    }
}

/// Draw an alternate allele with a 2:1 transition:transversion bias.
fn sample_alt(rng: &mut StdRng, ref_base: Base) -> Base {
    let transition = match ref_base {
        Base::A => Base::G,
        Base::G => Base::A,
        Base::C => Base::T,
        Base::T => Base::C,
    };
    // 2/3 transition, 1/3 transversion: overall ti/tv of the planted set
    // is 2.0, matching the documented 2:1 bias.
    if rng.gen_bool(2.0 / 3.0) {
        transition
    } else {
        // One of the two transversions.
        let others: Vec<Base> = Base::ALL
            .into_iter()
            .filter(|&b| b != ref_base && b != transition)
            .collect();
        others[rng.gen_range(0..others.len())]
    }
}

/// Alternate covered/uncovered intervals hitting the target coverage ratio.
fn covered_intervals(rng: &mut StdRng, n: u64, coverage: f64, read_len: usize) -> Vec<(u64, u64)> {
    if coverage >= 0.999 {
        return vec![(0, n)];
    }
    // Interval lengths shrink with the genome so scaled-down datasets
    // still realize the target coverage ratio.
    let mean_covered = (read_len as u64 * 40)
        .max(2_000)
        .min((n / 8).max(read_len as u64 * 4));
    let mean_gap = ((mean_covered as f64) * (1.0 - coverage) / coverage.max(1e-6)) as u64;
    let mut intervals = Vec::new();
    let mut pos = 0u64;
    while pos < n {
        let run = rng
            .gen_range(mean_covered / 2..=mean_covered * 3 / 2)
            .min(n - pos);
        intervals.push((pos, pos + run));
        pos += run;
        if pos >= n {
            break;
        }
        let gap = rng
            .gen_range(mean_gap / 2..=(mean_gap * 3 / 2).max(1))
            .min(n - pos);
        pos += gap;
    }
    intervals
}

/// Simulate sequencing one read starting at `pos` from a random haplotype.
fn sequence_read(
    rng: &mut StdRng,
    cfg: &SynthConfig,
    hap: &[Vec<u8>; 2],
    pos: u64,
    ridx: usize,
) -> AlignedRead {
    let h = usize::from(rng.gen_bool(0.5));
    let strand = if rng.gen_bool(0.5) {
        Strand::Forward
    } else {
        Strand::Reverse
    };
    let len = cfg.read_len;

    // Base quality is tied to the genomic region (sequencing batches and
    // flowcell tiles give neighbouring reads near-identical quality), and
    // decays in steps of 2 along the read. Together these reproduce the
    // paper's §V-B observations: "bases on a short read usually have the
    // same sequencing quality" and "usually around tens of repeats for
    // consecutive sites" — the structure RLE-DICT exploits.
    let q0: i32 = 32 + (((pos / 2048) % 6) as i32) * 2;
    let qual: Vec<u8> = (0..len)
        .map(|cycle| {
            let q = q0 - (cycle as i32 * 8 / len as i32) * 2;
            q.clamp(2, 63) as u8
        })
        .collect();

    let mut seq = Vec::with_capacity(len);
    for offset in 0..len {
        let donor = hap[h][(pos + offset as u64) as usize];
        // N in the donor (reference N) is sequenced as a random base.
        let mut base = if donor >= 4 {
            rng.gen_range(0..4u8)
        } else {
            donor
        };
        let cycle = match strand {
            Strand::Forward => offset,
            Strand::Reverse => len - 1 - offset,
        };
        let err_p = 10f64.powf(-(qual[cycle] as f64) / 10.0);
        if rng.gen_bool(err_p.min(0.75)) {
            base = (base + rng.gen_range(1..4u8)) % 4;
        }
        seq.push(base);
    }

    // ~5% of reads align non-uniquely (repeat regions).
    let nhits = if rng.gen_bool(0.05) {
        rng.gen_range(2..=5u32)
    } else {
        1
    };

    AlignedRead {
        id: format!("{}_{}", cfg.chr_name, ridx),
        seq,
        qual,
        nhits,
        strand,
        chr: cfg.chr_name.clone(),
        pos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(SynthConfig::tiny(7));
        let b = Dataset::generate(SynthConfig::tiny(7));
        assert_eq!(a.reads, b.reads);
        assert_eq!(a.reference, b.reference);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::generate(SynthConfig::tiny(1));
        let b = Dataset::generate(SynthConfig::tiny(2));
        assert_ne!(a.reads, b.reads);
    }

    #[test]
    fn reads_are_sorted_and_in_bounds() {
        let d = Dataset::generate(SynthConfig::tiny(3));
        assert!(!d.reads.is_empty());
        for w in d.reads.windows(2) {
            assert!(w[0].pos <= w[1].pos);
        }
        for r in &d.reads {
            assert!(r.pos + r.len() as u64 <= d.config.num_sites);
            assert!(r.qual.iter().all(|&q| q <= 63));
            assert!(r.seq.iter().all(|&b| b < 4));
        }
    }

    #[test]
    fn depth_and_coverage_near_target() {
        let d = Dataset::generate(SynthConfig::tiny(4));
        let cov = d.realized_coverage();
        assert!(
            (cov - d.config.coverage).abs() < 0.15,
            "coverage {cov} vs target {}",
            d.config.coverage
        );
        // Depth over covered region ≈ configured depth.
        let depth_covered = d.realized_depth() / cov;
        assert!(
            (depth_covered - d.config.depth).abs() / d.config.depth < 0.25,
            "covered depth {depth_covered} vs {}",
            d.config.depth
        );
    }

    #[test]
    fn truth_matches_priors_subset() {
        let d = Dataset::generate(SynthConfig::tiny(5));
        assert!(!d.truth.is_empty(), "expected planted SNPs");
        assert!(d.priors.len() <= d.truth.len());
        // Every prior site is a planted site.
        let planted: std::collections::HashSet<u64> = d.truth.iter().map(|t| t.pos).collect();
        for t in &d.truth {
            if let Some(k) = d.priors.get(t.pos) {
                k.validate().unwrap();
                assert!(planted.contains(&k.pos));
            }
        }
    }

    #[test]
    fn chromosome_presets_cover_1_to_24() {
        for i in 1..=24 {
            let c = SynthConfig::chromosome(i, 0.01);
            assert!(c.num_sites > 0);
        }
        assert_eq!(SynthConfig::chromosome(23, 1.0).chr_name, "chrX");
    }

    #[test]
    #[should_panic(expected = "chromosome index out of range")]
    fn chromosome_25_rejected() {
        let _ = SynthConfig::chromosome(25, 1.0);
    }

    #[test]
    fn ch1_is_larger_and_deeper_than_ch21() {
        let c1 = SynthConfig::ch1_mini(1.0);
        let c21 = SynthConfig::ch21_mini(1.0);
        assert!(c1.num_sites > 5 * c21.num_sites);
        assert!(c1.coverage > c21.coverage);
    }

    #[test]
    fn quality_has_few_distinct_values() {
        // The RLE-DICT scheme relies on <100 distinct quality values.
        let d = Dataset::generate(SynthConfig::tiny(6));
        let distinct: std::collections::HashSet<u8> = d
            .reads
            .iter()
            .flat_map(|r| r.qual.iter().copied())
            .collect();
        assert!(distinct.len() < 100, "{} distinct", distinct.len());
    }
}
