//! Synthetic genome and short-read workload generator.
//!
//! The paper evaluates GSNP on BGI's operational whole-human-genome data
//! (142 GB of alignments; proprietary). This module is the substitution:
//! a reproducible simulator producing *scale models* of those datasets —
//! same sequencing depth, coverage ratio, read length, error behaviour and
//! quality-score run structure, with the site count scaled down. Every
//! per-site statistic the GSNP algorithms are sensitive to (`base_occ`
//! sparsity, fraction of uncovered sites, quality-run lengths for RLE) is
//! governed by these intensive parameters, not by genome size.
//!
//! The generator plants germline SNPs with a transition/transversion bias,
//! builds a diploid donor, and sequences reads with a per-cycle
//! quality-decay model; errors are drawn at the rate the quality scores
//! promise (so the Bayesian caller's model is well-specified, as it is for
//! real Illumina data after recalibration).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::base::{Base, Strand, N_CODE};
use crate::fasta::Reference;
use crate::prior::{KnownSnp, PriorMap};
use crate::soap::AlignedRead;

/// Configuration for one synthetic chromosome dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Chromosome name used in all records.
    pub chr_name: String,
    /// Number of reference sites.
    pub num_sites: u64,
    /// Target sequencing depth over covered regions.
    pub depth: f64,
    /// Read length in base pairs.
    pub read_len: usize,
    /// Fraction of sites covered by reads (the paper's "coverage ratio").
    pub coverage: f64,
    /// Rate at which germline SNPs are planted in the donor.
    pub snp_rate: f64,
    /// Fraction of planted SNPs that also appear in the known-SNP priors.
    pub known_fraction: f64,
    /// Fraction of reference N bases.
    pub n_rate: f64,
    /// RNG seed; identical configs generate identical datasets.
    pub seed: u64,
}

impl SynthConfig {
    /// Tiny dataset for unit and property tests (milliseconds to generate).
    pub fn tiny(seed: u64) -> Self {
        SynthConfig {
            chr_name: "tiny".into(),
            num_sites: 5_000,
            depth: 8.0,
            read_len: 50,
            coverage: 0.85,
            snp_rate: 2e-3,
            known_fraction: 0.5,
            n_rate: 0.002,
            seed,
        }
    }

    /// Scale model of the paper's Chromosome 1 (Table II: 247 M sites,
    /// 11×, 88% coverage, 100 bp reads) at `scale` × 1/100 of full size.
    pub fn ch1_mini(scale: f64) -> Self {
        SynthConfig {
            chr_name: "chr1".into(),
            num_sites: ((2_470_000.0 * scale) as u64).max(1),
            depth: 11.0,
            read_len: 100,
            coverage: 0.88,
            snp_rate: 1e-3,
            known_fraction: 0.6,
            n_rate: 0.005,
            seed: 0x6510_0001,
        }
    }

    /// Scale model of the paper's Chromosome 21 (47 M sites, 9.6×, 68%
    /// coverage) at `scale` × 1/100 of full size.
    pub fn ch21_mini(scale: f64) -> Self {
        SynthConfig {
            chr_name: "chr21".into(),
            num_sites: ((470_000.0 * scale) as u64).max(1),
            depth: 9.6,
            read_len: 100,
            coverage: 0.68,
            snp_rate: 1e-3,
            known_fraction: 0.6,
            n_rate: 0.005,
            seed: 0x6510_0021,
        }
    }

    /// Scale model for human chromosome `i` (1-based, 1..=24 where 23 = X,
    /// 24 = Y), interpolating real chromosome lengths, for the Fig. 12
    /// whole-genome sweep.
    pub fn chromosome(i: usize, scale: f64) -> Self {
        assert!((1..=24).contains(&i), "chromosome index out of range");
        // Approximate human chromosome lengths in Mbp (GRCh37).
        const MBP: [f64; 24] = [
            249.0, 243.0, 198.0, 191.0, 181.0, 171.0, 159.0, 146.0, 141.0, 135.0, 135.0, 134.0,
            115.0, 107.0, 103.0, 90.0, 81.0, 78.0, 59.0, 63.0, 47.0, 51.0, 155.0, 59.0,
        ];
        let name = match i {
            23 => "chrX".to_string(),
            24 => "chrY".to_string(),
            _ => format!("chr{i}"),
        };
        SynthConfig {
            chr_name: name,
            num_sites: ((MBP[i - 1] * 10_000.0 * scale) as u64).max(1),
            depth: 10.0,
            read_len: 100,
            coverage: 0.85,
            snp_rate: 1e-3,
            known_fraction: 0.6,
            n_rate: 0.005,
            seed: 0x6510_0100 + i as u64,
        }
    }
}

/// A planted variant in the donor (ground truth for accuracy checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlantedSnp {
    /// 0-based site.
    pub pos: u64,
    /// Donor genotype (unordered allele pair).
    pub alleles: (Base, Base),
}

/// A complete synthetic dataset: the three input files of the SNP-calling
/// workflow plus the ground truth.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The configuration that generated this dataset.
    pub config: SynthConfig,
    /// Reference sequence (input file 2).
    pub reference: Reference,
    /// Position-sorted alignments (input file 1).
    pub reads: Vec<AlignedRead>,
    /// Known-SNP priors (input file 3).
    pub priors: PriorMap,
    /// Planted variants.
    pub truth: Vec<PlantedSnp>,
}

impl Dataset {
    /// Generate a dataset from a configuration. Deterministic in the seed.
    pub fn generate(config: SynthConfig) -> Dataset {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = config.num_sites as usize;

        // --- Reference ---
        let reference = generate_reference(&mut rng, &config);

        // --- Covered intervals ---
        let intervals = covered_intervals(&mut rng, n as u64, config.coverage, config.read_len);

        // --- Diploid donor with planted SNPs ---
        let mut truth = Vec::new();
        let mut hap = [reference.seq.clone(), reference.seq.clone()];
        for &(s, e) in &intervals {
            for pos in s..e {
                let r = reference.seq[pos as usize];
                if r >= 4 || !rng.gen_bool(config.snp_rate) {
                    continue;
                }
                let ref_base = Base::from_code(r);
                let alt = sample_alt(&mut rng, ref_base);
                // 2/3 heterozygous, 1/3 homozygous alternate.
                let (a1, a2) = if rng.gen_bool(2.0 / 3.0) {
                    (ref_base, alt)
                } else {
                    (alt, alt)
                };
                if a1 != ref_base {
                    hap[0][pos as usize] = a1.code();
                }
                if a2 != ref_base {
                    hap[1][pos as usize] = a2.code();
                }
                truth.push(PlantedSnp {
                    pos,
                    alleles: if a1 <= a2 { (a1, a2) } else { (a2, a1) },
                });
            }
        }

        // --- Known-SNP priors ---
        let mut prior_sites = Vec::new();
        for t in &truth {
            if rng.gen_bool(config.known_fraction) {
                let r = reference.seq[t.pos as usize];
                if r >= 4 {
                    continue;
                }
                let ref_base = Base::from_code(r);
                let alt = if t.alleles.0 != ref_base {
                    t.alleles.0
                } else {
                    t.alleles.1
                };
                let mut freqs = [0.0f64; 4];
                let alt_f = rng.gen_range(0.05..0.5);
                freqs[ref_base.code() as usize] = 1.0 - alt_f;
                freqs[alt.code() as usize] += alt_f;
                prior_sites.push(KnownSnp {
                    pos: t.pos,
                    ref_base,
                    freqs,
                });
            }
        }

        // --- Reads ---
        let reads = generate_reads(&mut rng, &config, &hap, &intervals);

        Dataset {
            config,
            reference,
            reads,
            priors: PriorMap::from_sites(prior_sites),
            truth,
        }
    }

    /// Total aligned bases across all reads.
    pub fn total_aligned_bases(&self) -> u64 {
        self.reads.iter().map(|r| r.len() as u64).sum()
    }

    /// Realized sequencing depth (aligned bases / sites).
    pub fn realized_depth(&self) -> f64 {
        self.total_aligned_bases() as f64 / self.config.num_sites as f64
    }

    /// Fraction of sites covered by at least one read.
    pub fn realized_coverage(&self) -> f64 {
        let n = self.config.num_sites as usize;
        let mut covered = vec![false; n];
        for r in &self.reads {
            let end = ((r.pos as usize) + r.len()).min(n);
            covered[r.pos as usize..end].fill(true);
        }
        covered.iter().filter(|&&c| c).count() as f64 / n as f64
    }

    /// Serialized size of the alignment input in bytes (Table II's "Input").
    pub fn input_text_size(&self) -> u64 {
        let mut buf = Vec::new();
        for r in &self.reads {
            r.write_line(&mut buf).expect("in-memory write");
        }
        buf.len() as u64
    }
}

/// Generate a reference sequence: uniform A/C/G/T with N bases arriving
/// in short runs, as they do in real assemblies.
fn generate_reference(rng: &mut StdRng, config: &SynthConfig) -> Reference {
    let n = config.num_sites as usize;
    let mut seq: Vec<u8> = (0..n).map(|_| rng.gen_range(0..4u8)).collect();
    let mut i = 0usize;
    while i < n {
        if rng.gen_bool(config.n_rate / 8.0) {
            let run = rng.gen_range(1..=16usize).min(n - i);
            seq[i..i + run].fill(N_CODE);
            i += run;
        } else {
            i += 1;
        }
    }
    Reference::new(config.chr_name.clone(), seq)
}

/// Sequence a full read set over `hap` from the covered intervals:
/// weighted-uniform read starts to the configured depth, plus pileup
/// hotspots. Real resequencing data has repeat-driven coverage spikes
/// reaching hundreds of reads; they are what push the largest
/// `base_word` arrays into the 128/256 sorting classes the paper
/// observes (§VI-C, Fig. 7b). Returns the reads position-sorted.
fn generate_reads(
    rng: &mut StdRng,
    config: &SynthConfig,
    hap: &[Vec<u8>; 2],
    intervals: &[(u64, u64)],
) -> Vec<AlignedRead> {
    let covered_sites: u64 = intervals.iter().map(|&(s, e)| e - s).sum();
    let num_reads = ((config.depth * covered_sites as f64) / config.read_len as f64) as usize;
    let mut reads = Vec::with_capacity(num_reads);
    let usable: Vec<&(u64, u64)> = intervals
        .iter()
        .filter(|&&(s, e)| (e - s) as usize >= config.read_len)
        .collect();
    if !usable.is_empty() {
        let weights: Vec<u64> = usable
            .iter()
            .map(|&&(s, e)| e - s - config.read_len as u64 + 1)
            .collect();
        let total_weight: u64 = weights.iter().sum();
        for ridx in 0..num_reads {
            // Weighted interval choice, then uniform start within it.
            let mut pick = rng.gen_range(0..total_weight);
            let mut iv = 0usize;
            while pick >= weights[iv] {
                pick -= weights[iv];
                iv += 1;
            }
            let (s, _e) = *usable[iv];
            let pos = s + pick;
            reads.push(sequence_read(rng, config, hap, pos, ridx));
        }
        let num_hotspots = (covered_sites / 25_000).max(1) as usize;
        let hotspot_reads = num_reads / 25;
        for h in 0..num_hotspots {
            let mut pick = rng.gen_range(0..total_weight);
            let mut iv = 0usize;
            while pick >= weights[iv] {
                pick -= weights[iv];
                iv += 1;
            }
            let (s, _e) = *usable[iv];
            let center = s + pick;
            let per_spot = (hotspot_reads / num_hotspots).clamp(8, 48);
            for k in 0..per_spot {
                // Starts cluster tightly so per-site depth spikes.
                let span = (config.read_len as u64 / 2).max(1);
                let lo = center.saturating_sub(span).max(s);
                let pos = rng.gen_range(lo..=center).min(_e - config.read_len as u64);
                reads.push(sequence_read(
                    rng,
                    config,
                    hap,
                    pos.max(s),
                    num_reads + h * per_spot + k,
                ));
            }
        }
    }
    reads.sort_by_key(|r| r.pos);
    reads
}

/// Draw an alternate allele with a 2:1 transition:transversion bias.
fn sample_alt(rng: &mut StdRng, ref_base: Base) -> Base {
    let transition = match ref_base {
        Base::A => Base::G,
        Base::G => Base::A,
        Base::C => Base::T,
        Base::T => Base::C,
    };
    // 2/3 transition, 1/3 transversion: overall ti/tv of the planted set
    // is 2.0, matching the documented 2:1 bias.
    if rng.gen_bool(2.0 / 3.0) {
        transition
    } else {
        // One of the two transversions.
        let others: Vec<Base> = Base::ALL
            .into_iter()
            .filter(|&b| b != ref_base && b != transition)
            .collect();
        others[rng.gen_range(0..others.len())]
    }
}

/// Alternate covered/uncovered intervals hitting the target coverage ratio.
fn covered_intervals(rng: &mut StdRng, n: u64, coverage: f64, read_len: usize) -> Vec<(u64, u64)> {
    if coverage >= 0.999 {
        return vec![(0, n)];
    }
    // Interval lengths shrink with the genome so scaled-down datasets
    // still realize the target coverage ratio.
    let mean_covered = (read_len as u64 * 40)
        .max(2_000)
        .min((n / 8).max(read_len as u64 * 4));
    let mean_gap = ((mean_covered as f64) * (1.0 - coverage) / coverage.max(1e-6)) as u64;
    let mut intervals = Vec::new();
    let mut pos = 0u64;
    while pos < n {
        let run = rng
            .gen_range(mean_covered / 2..=mean_covered * 3 / 2)
            .min(n - pos);
        intervals.push((pos, pos + run));
        pos += run;
        if pos >= n {
            break;
        }
        let gap = rng
            .gen_range(mean_gap / 2..=(mean_gap * 3 / 2).max(1))
            .min(n - pos);
        pos += gap;
    }
    intervals
}

/// Simulate sequencing one read starting at `pos` from a random haplotype.
fn sequence_read(
    rng: &mut StdRng,
    cfg: &SynthConfig,
    hap: &[Vec<u8>; 2],
    pos: u64,
    ridx: usize,
) -> AlignedRead {
    let h = usize::from(rng.gen_bool(0.5));
    let strand = if rng.gen_bool(0.5) {
        Strand::Forward
    } else {
        Strand::Reverse
    };
    let len = cfg.read_len;

    // Base quality is tied to the genomic region (sequencing batches and
    // flowcell tiles give neighbouring reads near-identical quality), and
    // decays in steps of 2 along the read. Together these reproduce the
    // paper's §V-B observations: "bases on a short read usually have the
    // same sequencing quality" and "usually around tens of repeats for
    // consecutive sites" — the structure RLE-DICT exploits.
    let q0: i32 = 32 + (((pos / 2048) % 6) as i32) * 2;
    let qual: Vec<u8> = (0..len)
        .map(|cycle| {
            let q = q0 - (cycle as i32 * 8 / len as i32) * 2;
            q.clamp(2, 63) as u8
        })
        .collect();

    let mut seq = Vec::with_capacity(len);
    for offset in 0..len {
        let donor = hap[h][(pos + offset as u64) as usize];
        // N in the donor (reference N) is sequenced as a random base.
        let mut base = if donor >= 4 {
            rng.gen_range(0..4u8)
        } else {
            donor
        };
        let cycle = match strand {
            Strand::Forward => offset,
            Strand::Reverse => len - 1 - offset,
        };
        let err_p = 10f64.powf(-(qual[cycle] as f64) / 10.0);
        if rng.gen_bool(err_p.min(0.75)) {
            base = (base + rng.gen_range(1..4u8)) % 4;
        }
        seq.push(base);
    }

    // ~5% of reads align non-uniquely (repeat regions).
    let nhits = if rng.gen_bool(0.05) {
        rng.gen_range(2..=5u32)
    } else {
        1
    };

    AlignedRead {
        id: format!("{}_{}", cfg.chr_name, ridx),
        seq,
        qual,
        nhits,
        strand,
        chr: cfg.chr_name.clone(),
        pos,
    }
}

/// Configuration for a synthetic multi-sample cohort over one reference.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortConfig {
    /// Per-sample dataset shape (sites, depth, coverage, error model).
    /// `base.seed` seeds the whole cohort.
    pub base: SynthConfig,
    /// Number of samples.
    pub num_samples: usize,
    /// Fraction of planted variant sites carried by *every* sample
    /// (population-shared variants); the rest are private to one sample.
    pub shared_rate: f64,
}

impl CohortConfig {
    /// Tiny cohort for unit and property tests.
    pub fn tiny(num_samples: usize, seed: u64) -> Self {
        CohortConfig {
            base: SynthConfig::tiny(seed),
            num_samples,
            shared_rate: 0.6,
        }
    }
}

/// A variant site planted somewhere in the cohort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CohortSite {
    /// 0-based site.
    pub pos: u64,
    /// The cohort's alternate allele at this site (every carrier shares
    /// it, as segregating population variants do).
    pub alt: Base,
    /// `None`: shared — every sample carries the variant (genotype drawn
    /// per sample). `Some(s)`: private to sample `s`.
    pub owner: Option<usize>,
}

/// One sample's slice of a cohort.
#[derive(Debug, Clone)]
pub struct CohortSample {
    /// Sample name (`s0`, `s1`, … or trio roles).
    pub name: String,
    /// Position-sorted alignments.
    pub reads: Vec<AlignedRead>,
    /// This sample's planted variants (ground truth).
    pub truth: Vec<PlantedSnp>,
    /// The diploid donor haplotypes the reads were sequenced from (kept
    /// for trio construction and debugging).
    pub haplotypes: [Vec<u8>; 2],
}

/// A synthetic cohort: N samples sequenced against one shared reference,
/// with population-shared variants present in every sample plus private
/// per-sample variants and fully independent per-sample sequencing noise.
///
/// Determinism contract: the reference, intervals, site map and priors
/// are drawn from the cohort seed; sample `s`'s genotypes and reads are
/// drawn from an independent stream seeded `seed ^ GOLDEN·(s+1)`, so a
/// cohort is reproducible end-to-end from `(config)` alone and samples
/// never share noise.
#[derive(Debug, Clone)]
pub struct Cohort {
    /// The configuration that generated this cohort.
    pub config: CohortConfig,
    /// The shared reference sequence.
    pub reference: Reference,
    /// Known-SNP priors (drawn from the shared variant sites — private
    /// singletons are never in the population database).
    pub priors: PriorMap,
    /// Every planted site with its allele and ownership.
    pub sites: Vec<CohortSite>,
    /// The samples.
    pub samples: Vec<CohortSample>,
}

/// Per-sample RNG stream separation constant (golden-ratio increment).
const SAMPLE_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;

impl Cohort {
    /// Generate a cohort. Deterministic in `config.base.seed`.
    pub fn generate(config: CohortConfig) -> Cohort {
        assert!(config.num_samples >= 1, "cohort needs at least one sample");
        let mut rng = StdRng::seed_from_u64(config.base.seed);
        let n = config.base.num_sites as usize;

        // Reference-shaped state, drawn once from the cohort stream.
        let reference = generate_reference(&mut rng, &config.base);
        let intervals = covered_intervals(
            &mut rng,
            n as u64,
            config.base.coverage,
            config.base.read_len,
        );

        // Variant site map: position, cohort allele, shared/private.
        let mut sites = Vec::new();
        for &(s, e) in &intervals {
            for pos in s..e {
                let r = reference.seq[pos as usize];
                if r >= 4 || !rng.gen_bool(config.base.snp_rate) {
                    continue;
                }
                let alt = sample_alt(&mut rng, Base::from_code(r));
                let owner = if rng.gen_bool(config.shared_rate) {
                    None
                } else {
                    Some(rng.gen_range(0..config.num_samples))
                };
                sites.push(CohortSite { pos, alt, owner });
            }
        }

        // Priors come from the population-shared sites only.
        let mut prior_sites = Vec::new();
        for site in sites.iter().filter(|s| s.owner.is_none()) {
            if !rng.gen_bool(config.base.known_fraction) {
                continue;
            }
            let ref_base = Base::from_code(reference.seq[site.pos as usize]);
            let mut freqs = [0.0f64; 4];
            let alt_f = rng.gen_range(0.05..0.5);
            freqs[ref_base.code() as usize] = 1.0 - alt_f;
            freqs[site.alt.code() as usize] += alt_f;
            prior_sites.push(KnownSnp {
                pos: site.pos,
                ref_base,
                freqs,
            });
        }

        let samples = (0..config.num_samples)
            .map(|s| {
                let mut srng = sample_rng(config.base.seed, s);
                generate_sample(
                    &mut srng,
                    format!("s{s}"),
                    &config.base,
                    &reference,
                    &intervals,
                    &sites,
                    s,
                )
            })
            .collect();

        Cohort {
            config,
            reference,
            priors: PriorMap::from_sites(prior_sites),
            sites,
            samples,
        }
    }

    /// Generate a mother/father/child trio: the parents are two cohort
    /// samples, and the child's diploid genome is one whole haplotype
    /// inherited from each parent (no recombination — every child variant
    /// is Mendelian-consistent by construction, which is what the
    /// `accuracy::trio_concordance` check relies on). Child sequencing
    /// noise is its own stream.
    pub fn generate_trio(config: CohortConfig) -> Cohort {
        let mut cohort = Cohort::generate(CohortConfig {
            num_samples: 2,
            ..config.clone()
        });
        cohort.config = config;
        cohort.samples[0].name = "mother".into();
        cohort.samples[1].name = "father".into();

        let mut crng = sample_rng(cohort.config.base.seed, 2);
        let from_mother = usize::from(crng.gen_bool(0.5));
        let from_father = usize::from(crng.gen_bool(0.5));
        let hap = [
            cohort.samples[0].haplotypes[from_mother].clone(),
            cohort.samples[1].haplotypes[from_father].clone(),
        ];
        let truth = truth_from_haplotypes(&cohort.reference, &hap);
        let reads = generate_reads(
            &mut crng,
            &cohort.config.base,
            &hap,
            &covered_intervals_of(&cohort),
        );
        cohort.samples.push(CohortSample {
            name: "child".into(),
            reads,
            truth,
            haplotypes: hap,
        });
        cohort
    }

    /// The sample named `name`, if present.
    pub fn sample(&self, name: &str) -> Option<&CohortSample> {
        self.samples.iter().find(|s| s.name == name)
    }
}

/// The per-sample RNG stream: seed XOR a golden-ratio multiple, so sample
/// streams never collide with each other or the cohort stream.
fn sample_rng(seed: u64, sample: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ SAMPLE_STREAM.wrapping_mul(sample as u64 + 1))
}

/// Re-derive the cohort's covered intervals (they are a pure function of
/// the cohort stream's first draws, so replaying the prefix is exact).
fn covered_intervals_of(cohort: &Cohort) -> Vec<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64(cohort.config.base.seed);
    let _ = generate_reference(&mut rng, &cohort.config.base);
    covered_intervals(
        &mut rng,
        cohort.config.base.num_sites,
        cohort.config.base.coverage,
        cohort.config.base.read_len,
    )
}

/// Plant one sample's genotypes into fresh haplotypes and sequence its
/// reads, all from the sample's own RNG stream.
fn generate_sample(
    srng: &mut StdRng,
    name: String,
    base: &SynthConfig,
    reference: &Reference,
    intervals: &[(u64, u64)],
    sites: &[CohortSite],
    sample: usize,
) -> CohortSample {
    let mut hap = [reference.seq.clone(), reference.seq.clone()];
    let mut truth = Vec::new();
    for site in sites {
        let carried = match site.owner {
            None => true,
            Some(owner) => owner == sample,
        };
        if !carried {
            continue;
        }
        let ref_base = Base::from_code(reference.seq[site.pos as usize]);
        // Same genotype mix as the single-sample generator: 2/3
        // heterozygous, 1/3 homozygous alternate — drawn per sample, so a
        // shared site segregates with different zygosity across carriers.
        let (a1, a2) = if srng.gen_bool(2.0 / 3.0) {
            (ref_base, site.alt)
        } else {
            (site.alt, site.alt)
        };
        if a1 != ref_base {
            hap[0][site.pos as usize] = a1.code();
        }
        if a2 != ref_base {
            hap[1][site.pos as usize] = a2.code();
        }
        truth.push(PlantedSnp {
            pos: site.pos,
            alleles: if a1 <= a2 { (a1, a2) } else { (a2, a1) },
        });
    }
    let reads = generate_reads(srng, base, &hap, intervals);
    CohortSample {
        name,
        reads,
        truth,
        haplotypes: hap,
    }
}

/// Recover a truth set by diffing diploid haplotypes against the
/// reference (used for the trio child, whose genome is inherited rather
/// than planted).
fn truth_from_haplotypes(reference: &Reference, hap: &[Vec<u8>; 2]) -> Vec<PlantedSnp> {
    let mut truth = Vec::new();
    for (pos, &r) in reference.seq.iter().enumerate() {
        let (h0, h1) = (hap[0][pos], hap[1][pos]);
        if r >= 4 || (h0 == r && h1 == r) {
            continue;
        }
        let a1 = Base::from_code(h0.min(h1));
        let a2 = Base::from_code(h0.max(h1));
        truth.push(PlantedSnp {
            pos: pos as u64,
            alleles: (a1, a2),
        });
    }
    truth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(SynthConfig::tiny(7));
        let b = Dataset::generate(SynthConfig::tiny(7));
        assert_eq!(a.reads, b.reads);
        assert_eq!(a.reference, b.reference);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::generate(SynthConfig::tiny(1));
        let b = Dataset::generate(SynthConfig::tiny(2));
        assert_ne!(a.reads, b.reads);
    }

    #[test]
    fn reads_are_sorted_and_in_bounds() {
        let d = Dataset::generate(SynthConfig::tiny(3));
        assert!(!d.reads.is_empty());
        for w in d.reads.windows(2) {
            assert!(w[0].pos <= w[1].pos);
        }
        for r in &d.reads {
            assert!(r.pos + r.len() as u64 <= d.config.num_sites);
            assert!(r.qual.iter().all(|&q| q <= 63));
            assert!(r.seq.iter().all(|&b| b < 4));
        }
    }

    #[test]
    fn depth_and_coverage_near_target() {
        let d = Dataset::generate(SynthConfig::tiny(4));
        let cov = d.realized_coverage();
        assert!(
            (cov - d.config.coverage).abs() < 0.15,
            "coverage {cov} vs target {}",
            d.config.coverage
        );
        // Depth over covered region ≈ configured depth.
        let depth_covered = d.realized_depth() / cov;
        assert!(
            (depth_covered - d.config.depth).abs() / d.config.depth < 0.25,
            "covered depth {depth_covered} vs {}",
            d.config.depth
        );
    }

    #[test]
    fn truth_matches_priors_subset() {
        let d = Dataset::generate(SynthConfig::tiny(5));
        assert!(!d.truth.is_empty(), "expected planted SNPs");
        assert!(d.priors.len() <= d.truth.len());
        // Every prior site is a planted site.
        let planted: std::collections::HashSet<u64> = d.truth.iter().map(|t| t.pos).collect();
        for t in &d.truth {
            if let Some(k) = d.priors.get(t.pos) {
                k.validate().unwrap();
                assert!(planted.contains(&k.pos));
            }
        }
    }

    #[test]
    fn chromosome_presets_cover_1_to_24() {
        for i in 1..=24 {
            let c = SynthConfig::chromosome(i, 0.01);
            assert!(c.num_sites > 0);
        }
        assert_eq!(SynthConfig::chromosome(23, 1.0).chr_name, "chrX");
    }

    #[test]
    #[should_panic(expected = "chromosome index out of range")]
    fn chromosome_25_rejected() {
        let _ = SynthConfig::chromosome(25, 1.0);
    }

    #[test]
    fn ch1_is_larger_and_deeper_than_ch21() {
        let c1 = SynthConfig::ch1_mini(1.0);
        let c21 = SynthConfig::ch21_mini(1.0);
        assert!(c1.num_sites > 5 * c21.num_sites);
        assert!(c1.coverage > c21.coverage);
    }

    #[test]
    fn cohort_is_deterministic() {
        let a = Cohort::generate(CohortConfig::tiny(4, 41));
        let b = Cohort::generate(CohortConfig::tiny(4, 41));
        assert_eq!(a.reference, b.reference);
        assert_eq!(a.sites, b.sites);
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.reads, y.reads);
            assert_eq!(x.truth, y.truth);
        }
    }

    #[test]
    fn cohort_shared_sites_are_in_every_sample() {
        let c = Cohort::generate(CohortConfig::tiny(4, 42));
        let shared: Vec<u64> = c
            .sites
            .iter()
            .filter(|s| s.owner.is_none())
            .map(|s| s.pos)
            .collect();
        assert!(!shared.is_empty(), "expected shared variants");
        for sample in &c.samples {
            let planted: std::collections::HashSet<u64> =
                sample.truth.iter().map(|t| t.pos).collect();
            for pos in &shared {
                assert!(planted.contains(pos), "sample {} misses {pos}", sample.name);
            }
        }
    }

    #[test]
    fn cohort_private_sites_have_one_carrier() {
        let c = Cohort::generate(CohortConfig::tiny(4, 43));
        for site in c.sites.iter().filter(|s| s.owner.is_some()) {
            let carriers = c
                .samples
                .iter()
                .filter(|smp| smp.truth.iter().any(|t| t.pos == site.pos))
                .count();
            assert_eq!(carriers, 1, "site {} carried by {carriers}", site.pos);
        }
    }

    #[test]
    fn cohort_samples_have_independent_noise() {
        let c = Cohort::generate(CohortConfig::tiny(2, 44));
        assert_ne!(c.samples[0].reads, c.samples[1].reads);
    }

    #[test]
    fn trio_child_inherits_one_haplotype_per_parent() {
        let c = Cohort::generate_trio(CohortConfig::tiny(3, 45));
        assert_eq!(c.samples.len(), 3);
        let child = c.sample("child").unwrap();
        let mother = c.sample("mother").unwrap();
        let father = c.sample("father").unwrap();
        assert!(mother.haplotypes.iter().any(|h| *h == child.haplotypes[0]));
        assert!(father.haplotypes.iter().any(|h| *h == child.haplotypes[1]));
        assert!(!child.reads.is_empty());
        // Every child variant appears in a parent's truth (no de novo).
        let parent_sites: std::collections::HashSet<u64> = mother
            .truth
            .iter()
            .chain(&father.truth)
            .map(|t| t.pos)
            .collect();
        for t in &child.truth {
            assert!(parent_sites.contains(&t.pos), "de novo at {}", t.pos);
        }
    }

    #[test]
    fn quality_has_few_distinct_values() {
        // The RLE-DICT scheme relies on <100 distinct quality values.
        let d = Dataset::generate(SynthConfig::tiny(6));
        let distinct: std::collections::HashSet<u8> = d
            .reads
            .iter()
            .flat_map(|r| r.qual.iter().copied())
            .collect();
        assert!(distinct.len() < 100, "{} distinct", distinct.len());
    }
}
