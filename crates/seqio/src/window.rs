//! Windowed site loading (the `read_site` component).
//!
//! Both SOAPsnp and GSNP process a chromosome window by window (§III-A):
//! `read_site` loads a fixed number of sites per pass, collecting for each
//! site the aligned-base observations from every read covering it. Reads
//! spanning a window boundary contribute to both windows, so the reader
//! keeps a carry-over buffer.

use crate::error::SeqIoError;
use crate::soap::AlignedRead;

/// One aligned-base observation at a site: exactly the four attributes the
/// `base_word`/`base_occ` representations encode, plus the uniqueness flag
/// the result table's "unique read" counts need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteObs {
    /// Observed base code (0..=3).
    pub base: u8,
    /// Phred quality (0..=63).
    pub qual: u8,
    /// Sequencing cycle: position in the read, in sequencing order.
    pub coord: u8,
    /// Strand code (0 = forward, 1 = reverse).
    pub strand: u8,
    /// Whether the read aligned uniquely (`nhits == 1`).
    pub uniq: bool,
}

/// A window of consecutive sites and their observations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Window {
    /// 0-based position of the first site.
    pub start: u64,
    /// Per-site observation lists; `obs[i]` covers site `start + i`.
    pub obs: Vec<Vec<SiteObs>>,
}

impl Window {
    /// Number of sites in the window.
    pub fn len(&self) -> usize {
        self.obs.len()
    }

    /// Whether the window has no sites.
    pub fn is_empty(&self) -> bool {
        self.obs.is_empty()
    }

    /// Total observations (aligned bases) across all sites.
    pub fn total_obs(&self) -> usize {
        self.obs.iter().map(Vec::len).sum()
    }
}

/// Infallible iterator over an owned read vector, for handing a decoded
/// read set to a [`WindowReader`] without re-cloning every read (the
/// pipeline producer stage owns the decompressed temporary input).
pub struct OwnedReads {
    inner: std::vec::IntoIter<AlignedRead>,
}

impl Iterator for OwnedReads {
    type Item = Result<AlignedRead, SeqIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(Ok)
    }
}

impl WindowReader<OwnedReads> {
    /// Reader over an owned, already-decoded read vector.
    pub fn from_reads(reads: Vec<AlignedRead>, ref_len: u64, window_size: usize) -> Self {
        WindowReader::new(
            OwnedReads {
                inner: reads.into_iter(),
            },
            ref_len,
            window_size,
        )
    }

    /// Rewind to site 0 over a new read vector, keeping the carry buffers'
    /// capacity — a repeated scan (e.g. a steady-state benchmark pass)
    /// performs no carry reallocation.
    pub fn restart(&mut self, reads: Vec<AlignedRead>) {
        self.reads = OwnedReads {
            inner: reads.into_iter(),
        };
        self.lookahead = None;
        self.carry.clear();
        self.carry_scratch.clear();
        self.next_start = 0;
    }
}

/// Streams sorted alignments into windows of `window_size` sites.
pub struct WindowReader<I> {
    reads: I,
    /// Read pulled from the stream but belonging to a future window.
    lookahead: Option<AlignedRead>,
    /// Reads that overlap the next window's sites.
    carry: Vec<AlignedRead>,
    /// Drained counterpart of `carry`; the two swap every window so both
    /// keep their capacity (no per-window reallocation).
    carry_scratch: Vec<AlignedRead>,
    window_size: usize,
    ref_len: u64,
    next_start: u64,
}

impl<I> WindowReader<I>
where
    I: Iterator<Item = Result<AlignedRead, SeqIoError>>,
{
    /// Create a reader over `ref_len` sites in windows of `window_size`.
    ///
    /// # Panics
    /// Panics if `window_size` is zero.
    pub fn new(reads: I, ref_len: u64, window_size: usize) -> Self {
        assert!(window_size > 0, "window size must be positive");
        WindowReader {
            reads,
            lookahead: None,
            carry: Vec::new(),
            carry_scratch: Vec::new(),
            window_size,
            ref_len,
            next_start: 0,
        }
    }

    fn add_read(read: &AlignedRead, w_start: u64, obs: &mut [Vec<SiteObs>]) {
        let w_end = w_start + obs.len() as u64;
        let read_end = read.pos + read.len() as u64;
        let from = read.pos.max(w_start);
        let to = read_end.min(w_end);
        for site in from..to {
            let offset = (site - read.pos) as usize;
            let (base, qual, coord) = read.obs_at(offset);
            obs[(site - w_start) as usize].push(SiteObs {
                base: base.code(),
                qual,
                coord,
                strand: read.strand.code(),
                uniq: read.nhits == 1,
            });
        }
    }

    /// Load the next window, or `None` once the reference is exhausted.
    pub fn next_window(&mut self) -> Result<Option<Window>, SeqIoError> {
        let mut window = Window {
            start: 0,
            obs: Vec::new(),
        };
        Ok(self.next_window_into(&mut window)?.then_some(window))
    }

    /// Load the next window into `window`, overwriting its contents but
    /// reusing its per-site vectors' capacity (the arena `recycle` path).
    /// Returns `Ok(false)` once the reference is exhausted, leaving
    /// `window` untouched.
    pub fn next_window_into(&mut self, window: &mut Window) -> Result<bool, SeqIoError> {
        if self.next_start >= self.ref_len {
            return Ok(false);
        }
        let w_start = self.next_start;
        let len = self.window_size.min((self.ref_len - w_start) as usize);
        let w_end = w_start + len as u64;
        window.start = w_start;
        for site in &mut window.obs {
            site.clear();
        }
        window.obs.truncate(len);
        window.obs.resize_with(len, Vec::new);
        let obs = window.obs.as_mut_slice();

        // Reads carried over from the previous window. `carry` and its
        // scratch twin swap so both keep their capacity across windows.
        std::mem::swap(&mut self.carry, &mut self.carry_scratch);
        for read in self.carry_scratch.drain(..) {
            Self::add_read(&read, w_start, obs);
            if read.pos + (read.len() as u64) > w_end {
                self.carry.push(read);
            }
        }

        // New reads starting before the window's end.
        loop {
            let read = match self.lookahead.take() {
                Some(r) => r,
                None => match self.reads.next() {
                    Some(r) => r?,
                    None => break,
                },
            };
            if read.pos >= w_end {
                self.lookahead = Some(read);
                break;
            }
            if read.pos + (read.len() as u64) <= w_start {
                // Entirely before this window — possible only if the caller
                // skipped windows; ignore defensively.
                continue;
            }
            Self::add_read(&read, w_start, obs);
            if read.pos + (read.len() as u64) > w_end {
                self.carry.push(read);
            }
        }

        self.next_start = w_end;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::Strand;

    fn read(pos: u64, len: usize, nhits: u32) -> AlignedRead {
        AlignedRead {
            id: format!("r{pos}"),
            seq: (0..len).map(|i| (i % 4) as u8).collect(),
            qual: (0..len).map(|i| 30 + (i % 4) as u8).collect(),
            nhits,
            strand: Strand::Forward,
            chr: "c".into(),
            pos,
        }
    }

    fn reader(
        reads: Vec<AlignedRead>,
        ref_len: u64,
        w: usize,
    ) -> WindowReader<impl Iterator<Item = Result<AlignedRead, SeqIoError>>> {
        WindowReader::new(reads.into_iter().map(Ok), ref_len, w)
    }

    #[test]
    fn single_window_collects_all_obs() {
        let mut r = reader(vec![read(2, 4, 1)], 10, 10);
        let w = r.next_window().unwrap().unwrap();
        assert_eq!(w.len(), 10);
        assert_eq!(w.total_obs(), 4);
        assert!(w.obs[0].is_empty());
        assert_eq!(w.obs[2].len(), 1);
        assert_eq!(w.obs[2][0].coord, 0);
        assert_eq!(w.obs[5][0].coord, 3);
        assert!(r.next_window().unwrap().is_none());
    }

    #[test]
    fn read_spanning_boundary_contributes_to_both() {
        let mut r = reader(vec![read(3, 4, 1)], 10, 5);
        let w1 = r.next_window().unwrap().unwrap();
        let w2 = r.next_window().unwrap().unwrap();
        assert_eq!(w1.total_obs(), 2); // sites 3,4
        assert_eq!(w2.total_obs(), 2); // sites 5,6
        assert_eq!(w2.obs[0][0].coord, 2);
    }

    #[test]
    fn read_spanning_three_windows() {
        let mut r = reader(vec![read(1, 8, 1)], 9, 3);
        let sums: Vec<usize> = std::iter::from_fn(|| r.next_window().unwrap())
            .map(|w| w.total_obs())
            .collect();
        assert_eq!(sums, vec![2, 3, 3]);
    }

    #[test]
    fn last_window_is_short() {
        let mut r = reader(vec![], 7, 5);
        assert_eq!(r.next_window().unwrap().unwrap().len(), 5);
        assert_eq!(r.next_window().unwrap().unwrap().len(), 2);
        assert!(r.next_window().unwrap().is_none());
    }

    #[test]
    fn lookahead_read_lands_in_later_window() {
        let mut r = reader(vec![read(0, 2, 1), read(8, 2, 1)], 10, 5);
        let w1 = r.next_window().unwrap().unwrap();
        let w2 = r.next_window().unwrap().unwrap();
        assert_eq!(w1.total_obs(), 2);
        assert_eq!(w2.total_obs(), 2);
        assert_eq!(w2.obs[3].len(), 1);
    }

    #[test]
    fn uniqueness_flag_propagates() {
        let mut r = reader(vec![read(0, 2, 3)], 2, 2);
        let w = r.next_window().unwrap().unwrap();
        assert!(!w.obs[0][0].uniq);
    }

    #[test]
    fn reverse_strand_coord_is_cycle() {
        let mut rd = read(0, 4, 1);
        rd.strand = Strand::Reverse;
        let mut r = reader(vec![rd], 4, 4);
        let w = r.next_window().unwrap().unwrap();
        // Site 0 = last cycle (3), site 3 = first cycle (0).
        assert_eq!(w.obs[0][0].coord, 3);
        assert_eq!(w.obs[3][0].coord, 0);
        assert_eq!(w.obs[0][0].strand, 1);
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_window_panics() {
        let _ = reader(vec![], 10, 0);
    }

    #[test]
    fn next_window_into_matches_fresh() {
        let reads = vec![read(1, 4, 1), read(3, 6, 2), read(8, 2, 1), read(11, 3, 1)];
        let mut fresh = reader(reads.clone(), 15, 4);
        let mut reused = reader(reads, 15, 4);
        // Seed the reused window with stale junk to prove it is overwritten.
        let mut w = Window {
            start: 999,
            obs: vec![
                vec![SiteObs {
                    base: 3,
                    qual: 9,
                    coord: 9,
                    strand: 1,
                    uniq: false,
                }];
                7
            ],
        };
        loop {
            let expect = fresh.next_window().unwrap();
            let got = reused.next_window_into(&mut w).unwrap();
            match expect {
                Some(e) => {
                    assert!(got);
                    assert_eq!(w, e);
                }
                None => {
                    assert!(!got);
                    break;
                }
            }
        }
    }

    #[test]
    fn owned_reader_matches_borrowed() {
        let reads = vec![read(1, 4, 1), read(3, 4, 2), read(8, 2, 1)];
        let mut borrowed = reader(reads.clone(), 10, 4);
        let mut owned = WindowReader::from_reads(reads, 10, 4);
        loop {
            let a = borrowed.next_window().unwrap();
            let b = owned.next_window().unwrap();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
