//! Multi-device groups.
//!
//! A [`DeviceGroup`] is `N` independent [`Device`] instances behind one
//! handle: each member owns its own [`crate::BufferPool`], ledger,
//! optional sanitizer, and paced cost model, exactly as if it had been
//! constructed standalone. The group adds nothing to the launch path —
//! callers launch on `group.device(i)` directly — it only centralizes
//! construction and accounting. [`GroupLedger`] snapshots every member's
//! [`DeviceLedger`] and derives summed totals, so a sharded pipeline can
//! assert counter sum-invariance against a single-device run.

use std::sync::Arc;

use crate::config::DeviceConfig;
use crate::contract::ContractReport;
use crate::launch::{Device, DeviceLedger};
use crate::sanitizer::{SanitizerConfig, SanitizerCounts};
use crate::trace::TraceRecorder;

/// `N` independent simulated devices sharing one configuration.
pub struct DeviceGroup {
    devices: Vec<Device>,
}

impl DeviceGroup {
    /// Create a group of `n` devices (`n` is clamped to at least 1), each
    /// with its own buffer pool and ledger built from `cfg`.
    pub fn new(cfg: DeviceConfig, n: usize) -> Self {
        let n = n.max(1);
        DeviceGroup {
            devices: (0..n).map(|_| Device::new(cfg.clone())).collect(),
        }
    }

    /// Attach the dynamic-checker suite to every member device (each gets
    /// its own independent [`crate::sanitizer::Sanitizer`] state).
    pub fn with_sanitizer(self, cfg: SanitizerConfig) -> Self {
        DeviceGroup {
            devices: self
                .devices
                .into_iter()
                .map(|d| d.with_sanitizer(cfg))
                .collect(),
        }
    }

    /// Enable static contract checking on every member device (each keeps
    /// its own proof tally; [`DeviceGroup::contract_report`] merges them).
    pub fn with_contracts(self) -> Self {
        DeviceGroup {
            devices: self
                .devices
                .into_iter()
                .map(Device::with_contracts)
                .collect(),
        }
    }

    /// Per-kernel contract proof table merged across every member device
    /// (empty without [`DeviceGroup::with_contracts`]).
    pub fn contract_report(&self) -> ContractReport {
        let mut merged = ContractReport::default();
        for d in &self.devices {
            merged.merge(&d.contract_report());
        }
        merged
    }

    /// Attach one shared live launch-wall histogram to every member
    /// device (see [`Device::with_launch_hist`]); all lanes fold into
    /// the single [`crate::hist::SharedHistogram`].
    pub fn with_launch_hist(self, hist: &Arc<crate::hist::SharedHistogram>) -> Self {
        DeviceGroup {
            devices: self
                .devices
                .into_iter()
                .map(|d| d.with_launch_hist(Arc::clone(hist)))
                .collect(),
        }
    }

    /// Attach one shared [`TraceRecorder`] to every member device. Each
    /// member records under its own `device{i}` process (own simulated
    /// clock, own kernel/transfer/pool tracks) into the common ring, so a
    /// single exported timeline shows all `N` devices side by side.
    pub fn with_trace(self, rec: &Arc<TraceRecorder>) -> Self {
        DeviceGroup {
            devices: self
                .devices
                .into_iter()
                .enumerate()
                .map(|(i, d)| d.with_trace(rec, i))
                .collect(),
        }
    }

    /// Number of devices in the group.
    #[allow(clippy::len_without_is_empty)] // a group is never empty
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Member device `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn device(&self, i: usize) -> &Device {
        &self.devices[i]
    }

    /// All member devices, in index order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Enable or disable buffer-pool recycling on every member.
    pub fn set_pool_enabled(&self, enabled: bool) {
        for d in &self.devices {
            d.pool().set_enabled(enabled);
        }
    }

    /// Reset every member's ledger (pool traffic counters included).
    pub fn reset_ledgers(&self) {
        for d in &self.devices {
            d.reset_ledger();
        }
    }

    /// Snapshot all member ledgers plus derived totals.
    pub fn ledger(&self) -> GroupLedger {
        GroupLedger {
            per_device: self.devices.iter().map(Device::ledger).collect(),
        }
    }

    /// Per-kernel launch attribution merged across every member device,
    /// sorted by kernel name.
    pub fn kernel_launches(&self) -> Vec<crate::launch::KernelTally> {
        let mut merged: Vec<crate::launch::KernelTally> = Vec::new();
        for dev in &self.devices {
            for t in dev.kernel_launches() {
                if let Some(m) = merged.iter_mut().find(|m| m.name == t.name) {
                    m.launches += t.launches;
                    m.overhead_seconds += t.overhead_seconds;
                    m.native_launches += t.native_launches;
                    m.wall_seconds += t.wall_seconds;
                    m.wall_hist.merge(&t.wall_hist);
                } else {
                    merged.push(t);
                }
            }
        }
        merged.sort_by(|a, b| a.name.cmp(&b.name));
        merged
    }
}

/// Per-device and summed accounting for a [`DeviceGroup`].
#[derive(Debug, Clone, Default)]
pub struct GroupLedger {
    /// One ledger snapshot per member device, in index order.
    pub per_device: Vec<DeviceLedger>,
}

impl GroupLedger {
    /// Summed totals across the group. Additive fields (launches,
    /// transfers, times, hardware counters, pool hits/misses/outstanding)
    /// sum exactly; the pool high-water sums too (an upper bound on the
    /// true simultaneous group-wide peak, which member pools cannot
    /// observe); the sanitizer shared-memory high-water, a per-block
    /// gauge, takes the max.
    pub fn total(&self) -> DeviceLedger {
        let mut acc = DeviceLedger::default();
        for led in &self.per_device {
            acc.launches += led.launches;
            acc.transfers += led.transfers;
            acc.sim_time += led.sim_time;
            acc.wall_time += led.wall_time;
            acc.counters += led.counters;
            acc.pool.hits += led.pool.hits;
            acc.pool.misses += led.pool.misses;
            acc.pool.outstanding_bytes += led.pool.outstanding_bytes;
            acc.pool.high_water_bytes += led.pool.high_water_bytes;
            acc.sanitizer = sum_sanitizer(&acc.sanitizer, &led.sanitizer);
            acc.backend.sum(&led.backend);
        }
        acc
    }

    /// Summed sanitizer findings (convenience over `total().sanitizer`).
    pub fn sanitizer_total(&self) -> SanitizerCounts {
        self.total().sanitizer
    }
}

fn sum_sanitizer(a: &SanitizerCounts, b: &SanitizerCounts) -> SanitizerCounts {
    SanitizerCounts {
        races: a.races + b.races,
        uninit_reads: a.uninit_reads + b.uninit_reads,
        oob_accesses: a.oob_accesses + b.oob_accesses,
        shared_leaks: a.shared_leaks + b.shared_leaks,
        conformance_escapes: a.conformance_escapes + b.conformance_escapes,
        overwide_declarations: a.overwide_declarations + b.overwide_declarations,
        shared_high_water: a.shared_high_water.max(b.shared_high_water),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::LaunchStats;
    use crate::GlobalBuffer;

    #[test]
    fn group_members_are_independent() {
        let g = DeviceGroup::new(DeviceConfig::tesla_m2050(), 3);
        assert_eq!(g.len(), 3);
        // Launch on device 1 only; the others' ledgers stay empty.
        let buf: GlobalBuffer<u32> = g.device(1).alloc(64);
        g.device(1).launch("mark", 2, |ctx| {
            ctx.st_co(&buf, ctx.block_idx, 7);
        });
        let led = g.ledger();
        assert_eq!(led.per_device[0].launches, 0);
        assert_eq!(led.per_device[1].launches, 1);
        assert_eq!(led.per_device[2].launches, 0);
        assert_eq!(led.total().launches, 1);
    }

    #[test]
    fn group_of_zero_clamps_to_one() {
        let g = DeviceGroup::new(DeviceConfig::tesla_m2050(), 0);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn totals_sum_counters_and_pool_traffic() {
        let g = DeviceGroup::new(DeviceConfig::tesla_m2050(), 2);
        for i in 0..2 {
            let dev = g.device(i);
            drop(dev.alloc_pooled::<u32>(256)); // miss, then park
            drop(dev.alloc_pooled::<u32>(256)); // hit
            let mut st = LaunchStats::default();
            dev.charge_h2d(&mut st, 1_000);
        }
        let total = g.ledger().total();
        assert_eq!(total.transfers, 2);
        assert_eq!(total.counters.h2d_bytes, 2_000);
        assert_eq!(total.pool.hits, 2);
        assert_eq!(total.pool.misses, 2);
        assert!(total.pool.high_water_bytes > 0);
    }

    #[test]
    fn sanitizer_attaches_to_every_member() {
        let g =
            DeviceGroup::new(DeviceConfig::tesla_m2050(), 2).with_sanitizer(SanitizerConfig::all());
        for i in 0..2 {
            assert!(g.device(i).sanitizer_enabled());
        }
        assert!(g.ledger().sanitizer_total().is_clean());
    }

    #[test]
    fn trace_attaches_every_member_under_its_own_process() {
        let rec = Arc::new(TraceRecorder::new(64));
        let g = DeviceGroup::new(DeviceConfig::tesla_m2050(), 2).with_trace(&rec);
        for i in 0..2 {
            assert!(g.device(i).trace_enabled());
            let buf: GlobalBuffer<u32> = g.device(i).alloc(32);
            g.device(i).launch("mark", 1, |ctx| {
                ctx.st_co(&buf, 0, 1);
            });
        }
        let snap = rec.snapshot();
        let processes: std::collections::BTreeSet<&str> =
            snap.tracks.iter().map(|t| t.process.as_str()).collect();
        assert!(processes.contains("device0") && processes.contains("device1"));
        // One kernel span landed under each device's process.
        let kernel_pids: Vec<u32> = snap
            .events
            .iter()
            .filter(|e| snap.name(e.name) == "mark")
            .map(|e| snap.tracks[e.track.0 as usize].pid)
            .collect();
        assert_eq!(kernel_pids.len(), 2);
        assert_ne!(kernel_pids[0], kernel_pids[1]);
    }

    #[test]
    fn reset_clears_every_ledger() {
        let g = DeviceGroup::new(DeviceConfig::tesla_m2050(), 2);
        let mut st = LaunchStats::default();
        g.device(0).charge_d2h(&mut st, 64);
        g.device(1).charge_d2h(&mut st, 64);
        g.reset_ledgers();
        assert_eq!(g.ledger().total().transfers, 0);
    }
}
