//! Per-block execution context.
//!
//! A kernel body receives one [`BlockCtx`] per thread block. All device
//! memory traffic inside a kernel flows through it so the hardware counters
//! see every access. The counter fields are plain integers local to the
//! block — the hot path is a register increment — and are flushed into the
//! launch-wide atomic totals when the block retires.

use crate::buffer::{ConstBuffer, DeviceInt, DeviceScalar, GlobalBuffer};
use crate::config::DeviceConfig;
use crate::counters::HwCounters;

/// Execution context handed to the kernel closure, one per block.
pub struct BlockCtx<'a> {
    /// Index of this block within the launch grid.
    pub block_idx: usize,
    /// Total number of blocks in the launch grid.
    pub grid_dim: usize,
    pub(crate) cfg: &'a DeviceConfig,
    pub(crate) counters: HwCounters,
    pub(crate) shared_used: usize,
}

impl<'a> BlockCtx<'a> {
    pub(crate) fn new(block_idx: usize, grid_dim: usize, cfg: &'a DeviceConfig) -> Self {
        BlockCtx {
            block_idx,
            grid_dim,
            cfg,
            counters: HwCounters::default(),
            shared_used: 0,
        }
    }

    /// Device configuration this block runs under.
    pub fn config(&self) -> &DeviceConfig {
        self.cfg
    }

    /// Record `n` scalar arithmetic/control instructions. Memory accesses
    /// are counted automatically and do not need to be reported here.
    #[inline(always)]
    pub fn add_inst(&mut self, n: u64) {
        self.counters.instructions += n;
    }

    /// Coalesced global load: the warp reads consecutive addresses, so the
    /// access is serviced at full memory bandwidth.
    #[inline(always)]
    pub fn ld_co<T: DeviceScalar>(&mut self, buf: &GlobalBuffer<T>, i: usize) -> T {
        self.counters.instructions += 1;
        self.counters.g_load_coalesced += 1;
        self.counters.g_load_bytes_co += T::BYTES;
        buf.get(i)
    }

    /// Random (non-coalesced) global load: each lane touches an unrelated
    /// address; serviced at the device's random-access bandwidth.
    #[inline(always)]
    pub fn ld_rand<T: DeviceScalar>(&mut self, buf: &GlobalBuffer<T>, i: usize) -> T {
        self.counters.instructions += 1;
        self.counters.g_load_random += 1;
        self.counters.g_load_bytes_rand += T::BYTES;
        buf.get(i)
    }

    /// Coalesced global store.
    #[inline(always)]
    pub fn st_co<T: DeviceScalar>(&mut self, buf: &GlobalBuffer<T>, i: usize, v: T) {
        self.counters.instructions += 1;
        self.counters.g_store_coalesced += 1;
        self.counters.g_store_bytes_co += T::BYTES;
        buf.set(i, v);
    }

    /// Random (non-coalesced) global store.
    #[inline(always)]
    pub fn st_rand<T: DeviceScalar>(&mut self, buf: &GlobalBuffer<T>, i: usize, v: T) {
        self.counters.instructions += 1;
        self.counters.g_store_random += 1;
        self.counters.g_store_bytes_rand += T::BYTES;
        buf.set(i, v);
    }

    /// Atomic add on global memory (counts as one random load + one random
    /// store, matching the cost of a global atomic on Fermi-class parts).
    #[inline(always)]
    pub fn atomic_add<T: DeviceInt>(&mut self, buf: &GlobalBuffer<T>, i: usize, v: T) -> T {
        self.counters.instructions += 1;
        self.counters.g_load_random += 1;
        self.counters.g_load_bytes_rand += T::BYTES;
        self.counters.g_store_random += 1;
        self.counters.g_store_bytes_rand += T::BYTES;
        T::fetch_add(buf.cell(i), v)
    }

    /// Constant-memory read: cached on-chip, counted as an instruction only.
    #[inline(always)]
    pub fn ld_const<T: Copy + Send + Sync + 'static>(
        &mut self,
        buf: &ConstBuffer<T>,
        i: usize,
    ) -> T {
        self.counters.instructions += 1;
        buf.get(i)
    }

    /// Allocate `len` elements of per-block shared memory.
    ///
    /// # Panics
    /// Panics if the block's cumulative shared allocation would exceed the
    /// device's `shared_mem_per_block` — the same failure mode as a CUDA
    /// kernel that over-declares `__shared__` storage.
    pub fn shared_alloc<T: DeviceScalar>(&mut self, len: usize) -> SharedMem<T> {
        let bytes = len * T::BYTES as usize;
        let new_used = self.shared_used + bytes;
        assert!(
            new_used <= self.cfg.shared_mem_per_block,
            "shared memory overflow: {} + {} bytes > {} available on {}",
            self.shared_used,
            bytes,
            self.cfg.shared_mem_per_block,
            self.cfg.name
        );
        self.shared_used = new_used;
        SharedMem {
            data: vec![T::default(); len],
        }
    }

    /// Release a shared allocation, returning its bytes to the block budget
    /// (CUDA's static shared memory has block lifetime; this models dynamic
    /// reuse across kernel phases, which the multipass sort relies on).
    pub fn shared_free<T: DeviceScalar>(&mut self, mem: SharedMem<T>) {
        let bytes = mem.data.len() * T::BYTES as usize;
        self.shared_used = self.shared_used.saturating_sub(bytes);
    }

    pub(crate) fn take_counters(&mut self) -> HwCounters {
        std::mem::take(&mut self.counters)
    }
}

/// Per-block on-chip shared memory. Fast (counted separately from global
/// traffic) and private to one block, exactly like CUDA `__shared__` arrays.
/// All accesses go through the [`BlockCtx`] so they are tallied.
pub struct SharedMem<T: DeviceScalar> {
    data: Vec<T>,
}

impl<T: DeviceScalar> SharedMem<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the allocation is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Counted shared-memory load.
    #[inline(always)]
    pub fn read(&self, ctx: &mut BlockCtx<'_>, i: usize) -> T {
        ctx.counters.instructions += 1;
        ctx.counters.s_load += 1;
        ctx.counters.s_bytes += T::BYTES;
        self.data[i]
    }

    /// Counted shared-memory store.
    #[inline(always)]
    pub fn write(&mut self, ctx: &mut BlockCtx<'_>, i: usize, v: T) {
        ctx.counters.instructions += 1;
        ctx.counters.s_store += 1;
        ctx.counters.s_bytes += T::BYTES;
        self.data[i] = v;
    }

    /// Zero the allocation (counted as stores).
    pub fn fill_default(&mut self, ctx: &mut BlockCtx<'_>) {
        let n = self.data.len();
        ctx.counters.instructions += n as u64;
        ctx.counters.s_store += n as u64;
        ctx.counters.s_bytes += n as u64 * T::BYTES;
        self.data.fill(T::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    fn ctx(cfg: &DeviceConfig) -> BlockCtx<'_> {
        BlockCtx::new(0, 1, cfg)
    }

    #[test]
    fn loads_and_stores_are_counted() {
        let cfg = DeviceConfig::tesla_m2050();
        let mut c = ctx(&cfg);
        let buf = GlobalBuffer::from_slice(&[1u32, 2, 3]);
        assert_eq!(c.ld_co(&buf, 1), 2);
        assert_eq!(c.ld_rand(&buf, 2), 3);
        c.st_co(&buf, 0, 9);
        c.st_rand(&buf, 0, 10);
        let counters = c.take_counters();
        assert_eq!(counters.g_load_coalesced, 1);
        assert_eq!(counters.g_load_random, 1);
        assert_eq!(counters.g_store_coalesced, 1);
        assert_eq!(counters.g_store_random, 1);
        assert_eq!(counters.instructions, 4);
        assert_eq!(counters.g_load_bytes_co, 4);
        assert_eq!(buf.get(0), 10);
    }

    #[test]
    fn shared_memory_capacity_enforced() {
        let cfg = DeviceConfig::tesla_m2050();
        let mut c = ctx(&cfg);
        // 48 KB of f64 = 6144 elements exactly fits.
        let m: SharedMem<f64> = c.shared_alloc(6144);
        assert_eq!(m.len(), 6144);
        c.shared_free(m);
        let _again: SharedMem<f64> = c.shared_alloc(6144);
    }

    #[test]
    #[should_panic(expected = "shared memory overflow")]
    fn shared_memory_overflow_panics() {
        let cfg = DeviceConfig::tesla_m2050();
        let mut c = ctx(&cfg);
        let _m: SharedMem<f64> = c.shared_alloc(6145);
    }

    #[test]
    fn shared_traffic_counted() {
        let cfg = DeviceConfig::tesla_m2050();
        let mut c = ctx(&cfg);
        let mut m: SharedMem<u32> = c.shared_alloc(4);
        m.write(&mut c, 0, 5);
        assert_eq!(m.read(&mut c, 0), 5);
        m.fill_default(&mut c);
        let counters = c.take_counters();
        assert_eq!(counters.s_store, 1 + 4);
        assert_eq!(counters.s_load, 1);
    }

    #[test]
    fn atomic_add_counts_rmw() {
        let cfg = DeviceConfig::tesla_m2050();
        let mut c = ctx(&cfg);
        let buf = GlobalBuffer::from_slice(&[0u32]);
        c.atomic_add(&buf, 0, 3);
        c.atomic_add(&buf, 0, 4);
        assert_eq!(buf.get(0), 7);
        let counters = c.take_counters();
        assert_eq!(counters.g_load_random, 2);
        assert_eq!(counters.g_store_random, 2);
    }

    #[test]
    fn const_reads_count_inst_only() {
        let cfg = DeviceConfig::tesla_m2050();
        let mut c = ctx(&cfg);
        let cb = ConstBuffer::from_slice(&[1.0f64]);
        let _ = c.ld_const(&cb, 0);
        let counters = c.take_counters();
        assert_eq!(counters.instructions, 1);
        assert_eq!(counters.g_load(), 0);
    }
}
