//! Per-block execution context.
//!
//! A kernel body receives one [`BlockCtx`] per thread block. All device
//! memory traffic inside a kernel flows through it so the hardware counters
//! see every access. The counter fields are plain integers local to the
//! block — the hot path is a register increment — and are flushed into the
//! launch-wide atomic totals when the block retires.

use crate::buffer::{ConstBuffer, DeviceInt, DeviceScalar, GlobalBuffer};
use crate::config::DeviceConfig;
use crate::counters::HwCounters;
use crate::sanitizer::{AccessKind, LaunchSession};

/// Execution context handed to the kernel closure, one per block.
pub struct BlockCtx<'a> {
    /// Index of this block within the launch grid.
    pub block_idx: usize,
    /// Total number of blocks in the launch grid.
    pub grid_dim: usize,
    pub(crate) cfg: &'a DeviceConfig,
    pub(crate) counters: HwCounters,
    pub(crate) shared_used: usize,
    pub(crate) shared_high: usize,
    /// Sanitizer context for this launch; `None` (one never-taken branch
    /// per access) unless the device has a sanitizer attached.
    pub(crate) session: Option<&'a LaunchSession<'a>>,
}

impl<'a> BlockCtx<'a> {
    pub(crate) fn new(
        block_idx: usize,
        grid_dim: usize,
        cfg: &'a DeviceConfig,
        session: Option<&'a LaunchSession<'a>>,
    ) -> Self {
        BlockCtx {
            block_idx,
            grid_dim,
            cfg,
            counters: HwCounters::default(),
            shared_used: 0,
            shared_high: 0,
            session,
        }
    }

    /// Sanitizer hook for one global-buffer access: precise bounds check
    /// first, then per-buffer shadow state. Never touches the hardware
    /// counters, so counter traces are identical with or without it.
    #[inline(always)]
    fn san_global<T: DeviceScalar>(
        &self,
        buf: &GlobalBuffer<T>,
        start: usize,
        n: usize,
        kind: AccessKind,
    ) {
        if let Some(sess) = self.session {
            sess.global_access(
                self.block_idx,
                buf.uid(),
                buf.shadow(),
                buf.len(),
                start,
                n,
                kind,
            );
        }
    }

    /// Device configuration this block runs under.
    pub fn config(&self) -> &DeviceConfig {
        self.cfg
    }

    /// Record `n` scalar arithmetic/control instructions. Memory accesses
    /// are counted automatically and do not need to be reported here.
    #[inline(always)]
    pub fn add_inst(&mut self, n: u64) {
        self.counters.instructions += n;
    }

    /// Coalesced global load: the warp reads consecutive addresses, so the
    /// access is serviced at full memory bandwidth.
    #[inline(always)]
    pub fn ld_co<T: DeviceScalar>(&mut self, buf: &GlobalBuffer<T>, i: usize) -> T {
        self.counters.instructions += 1;
        self.counters.g_load_coalesced += 1;
        self.counters.g_load_bytes_co += T::BYTES;
        self.san_global(buf, i, 1, AccessKind::Read);
        buf.get(i)
    }

    /// Random (non-coalesced) global load: each lane touches an unrelated
    /// address; serviced at the device's random-access bandwidth.
    #[inline(always)]
    pub fn ld_rand<T: DeviceScalar>(&mut self, buf: &GlobalBuffer<T>, i: usize) -> T {
        self.counters.instructions += 1;
        self.counters.g_load_random += 1;
        self.counters.g_load_bytes_rand += T::BYTES;
        self.san_global(buf, i, 1, AccessKind::Read);
        buf.get(i)
    }

    /// Batched random global load of `out.len()` consecutive elements.
    ///
    /// Counter-identical to calling [`BlockCtx::ld_rand`] once per element
    /// (the addresses are consecutive for *one* thread, so across warp
    /// lanes the accesses still diverge), but the tally and bounds check
    /// happen once per span — the simulator's hot-kernel fast path.
    #[inline]
    pub fn ld_rand_span<T: DeviceScalar>(
        &mut self,
        buf: &GlobalBuffer<T>,
        start: usize,
        out: &mut [T],
    ) {
        let n = out.len() as u64;
        self.counters.instructions += n;
        self.counters.g_load_random += n;
        self.counters.g_load_bytes_rand += n * T::BYTES;
        self.san_global(buf, start, out.len(), AccessKind::Read);
        buf.read_span(start, out);
    }

    /// Batched random global read-modify-write: `buf[start + n] += terms[n]`
    /// for each `n`. Counter-identical to a [`BlockCtx::ld_rand`] +
    /// [`BlockCtx::st_rand`] pair per element, and bit-exact with that
    /// sequence (same per-element addition order).
    #[inline]
    pub fn add_rand_span(&mut self, buf: &GlobalBuffer<f64>, start: usize, terms: &[f64]) {
        let n = terms.len() as u64;
        self.counters.instructions += 2 * n;
        self.counters.g_load_random += n;
        self.counters.g_load_bytes_rand += n * <f64 as DeviceScalar>::BYTES;
        self.counters.g_store_random += n;
        self.counters.g_store_bytes_rand += n * <f64 as DeviceScalar>::BYTES;
        self.san_global(buf, start, terms.len(), AccessKind::Read);
        self.san_global(buf, start, terms.len(), AccessKind::Write);
        buf.add_assign_span(start, terms);
    }

    /// Coalesced global store.
    #[inline(always)]
    pub fn st_co<T: DeviceScalar>(&mut self, buf: &GlobalBuffer<T>, i: usize, v: T) {
        self.counters.instructions += 1;
        self.counters.g_store_coalesced += 1;
        self.counters.g_store_bytes_co += T::BYTES;
        self.san_global(buf, i, 1, AccessKind::Write);
        buf.set(i, v);
    }

    /// Random (non-coalesced) global store.
    #[inline(always)]
    pub fn st_rand<T: DeviceScalar>(&mut self, buf: &GlobalBuffer<T>, i: usize, v: T) {
        self.counters.instructions += 1;
        self.counters.g_store_random += 1;
        self.counters.g_store_bytes_rand += T::BYTES;
        self.san_global(buf, i, 1, AccessKind::Write);
        buf.set(i, v);
    }

    /// Atomic add on global memory (counts as one random load + one random
    /// store, matching the cost of a global atomic on Fermi-class parts).
    #[inline(always)]
    pub fn atomic_add<T: DeviceInt>(&mut self, buf: &GlobalBuffer<T>, i: usize, v: T) -> T {
        self.counters.instructions += 1;
        self.counters.g_load_random += 1;
        self.counters.g_load_bytes_rand += T::BYTES;
        self.counters.g_store_random += 1;
        self.counters.g_store_bytes_rand += T::BYTES;
        self.san_global(buf, i, 1, AccessKind::Atomic);
        T::fetch_add(buf.cell(i), v)
    }

    /// Constant-memory read: cached on-chip, counted as an instruction only.
    #[inline(always)]
    pub fn ld_const<T: Copy + Send + Sync + 'static>(
        &mut self,
        buf: &ConstBuffer<T>,
        i: usize,
    ) -> T {
        self.counters.instructions += 1;
        buf.get(i)
    }

    /// Allocate `len` elements of per-block shared memory.
    ///
    /// Backing storage comes from a thread-local scratch pool: on-chip
    /// shared memory is *hardware*, so repeated kernel launches reusing the
    /// same tile sizes must not show up as host heap churn (see the
    /// allocation-free window loop in `gsnp-core`).
    ///
    /// # Panics
    /// Panics if the block's cumulative shared allocation would exceed the
    /// device's `shared_mem_per_block` — the same failure mode as a CUDA
    /// kernel that over-declares `__shared__` storage.
    pub fn shared_alloc<T: DeviceScalar>(&mut self, len: usize) -> SharedMem<T> {
        let bytes = len * T::BYTES as usize;
        let new_used = self.shared_used + bytes;
        assert!(
            new_used <= self.cfg.shared_mem_per_block,
            "shared memory overflow: {} + {} bytes > {} available on {}",
            self.shared_used,
            bytes,
            self.cfg.shared_mem_per_block,
            self.cfg.name
        );
        self.shared_used = new_used;
        self.shared_high = self.shared_high.max(new_used);
        let mut data = scratch_take();
        data.clear();
        data.resize(len, 0);
        // Under initcheck, a fresh tile starts fully poisoned: CUDA
        // `__shared__` storage is uninitialized even though the simulator
        // happens to zero its backing lanes.
        let poison = match self.session {
            Some(sess) if sess.san.cfg.initcheck => {
                Some(std::cell::RefCell::new(vec![!0u64; len.div_ceil(64)]))
            }
            _ => None,
        };
        SharedMem {
            data,
            poison,
            _marker: std::marker::PhantomData,
        }
    }

    /// Release a shared allocation, returning its bytes to the block budget
    /// (CUDA's static shared memory has block lifetime; this models dynamic
    /// reuse across kernel phases, which the multipass sort relies on).
    /// The backing storage returns to the scratch pool when `mem` drops.
    pub fn shared_free<T: DeviceScalar>(&mut self, mem: SharedMem<T>) {
        let bytes = mem.data.len() * T::BYTES as usize;
        self.shared_used = self.shared_used.saturating_sub(bytes);
    }

    pub(crate) fn take_counters(&mut self) -> HwCounters {
        std::mem::take(&mut self.counters)
    }
}

thread_local! {
    /// Recycled shared-memory backing vectors. Tiles are type-erased into
    /// raw `u64` lanes (the same encoding `GlobalBuffer` cells use), so one
    /// pool serves every scalar type and every kernel on the thread.
    static SHARED_SCRATCH: std::cell::RefCell<Vec<Vec<u64>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Cap on parked scratch vectors per thread.
const MAX_SCRATCH_PARKED: usize = 64;

pub(crate) fn scratch_take() -> Vec<u64> {
    SHARED_SCRATCH.with(|p| p.borrow_mut().pop().unwrap_or_default())
}

pub(crate) fn scratch_put(v: Vec<u64>) {
    SHARED_SCRATCH.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_SCRATCH_PARKED {
            pool.push(v);
        }
    });
}

/// Per-block on-chip shared memory. Fast (counted separately from global
/// traffic) and private to one block, exactly like CUDA `__shared__` arrays.
/// All accesses go through the [`BlockCtx`] so they are tallied.
pub struct SharedMem<T: DeviceScalar> {
    data: Vec<u64>,
    /// Initcheck shadow bits (set ⇒ lane never written); only allocated in
    /// sanitized launches. `RefCell` because reads report through `&self`;
    /// a tile is private to one block so there is no sharing to guard.
    poison: Option<std::cell::RefCell<Vec<u64>>>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: DeviceScalar> Drop for SharedMem<T> {
    fn drop(&mut self) {
        scratch_put(std::mem::take(&mut self.data));
    }
}

impl<T: DeviceScalar> SharedMem<T> {
    /// Initcheck: report (once per lane) any read of a never-written lane.
    #[inline(always)]
    fn check_init(&self, ctx: &BlockCtx<'_>, start: usize, n: usize) {
        if let (Some(poison), Some(sess)) = (&self.poison, ctx.session) {
            let mut bits = poison.borrow_mut();
            for i in start..start + n {
                if bits[i >> 6] >> (i & 63) & 1 == 1 {
                    sess.shared_uninit(ctx.block_idx, i, self.data.len());
                    bits[i >> 6] &= !(1 << (i & 63));
                }
            }
        }
    }

    /// Initcheck: mark lanes as written.
    #[inline(always)]
    fn define_init(&self, start: usize, n: usize) {
        if let Some(poison) = &self.poison {
            let mut bits = poison.borrow_mut();
            for i in start..start + n {
                bits[i >> 6] &= !(1 << (i & 63));
            }
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the allocation is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Counted shared-memory load.
    #[inline(always)]
    pub fn read(&self, ctx: &mut BlockCtx<'_>, i: usize) -> T {
        ctx.counters.instructions += 1;
        ctx.counters.s_load += 1;
        ctx.counters.s_bytes += T::BYTES;
        self.check_init(ctx, i, 1);
        T::from_raw(self.data[i])
    }

    /// Counted shared-memory store.
    #[inline(always)]
    pub fn write(&mut self, ctx: &mut BlockCtx<'_>, i: usize, v: T) {
        ctx.counters.instructions += 1;
        ctx.counters.s_store += 1;
        ctx.counters.s_bytes += T::BYTES;
        self.define_init(i, 1);
        self.data[i] = v.to_raw();
    }

    /// Zero the allocation (counted as stores).
    pub fn fill_default(&mut self, ctx: &mut BlockCtx<'_>) {
        let n = self.data.len();
        ctx.counters.instructions += n as u64;
        ctx.counters.s_store += n as u64;
        ctx.counters.s_bytes += n as u64 * T::BYTES;
        self.define_init(0, n);
        self.data.fill(0);
    }
}

impl<T: DeviceScalar> SharedMem<T> {
    /// Batched counted stage-in: copy `len` consecutive elements of global
    /// memory (a coalesced warp read) into the tile starting at `dst`.
    /// Counter-identical to a [`BlockCtx::ld_co`] + [`SharedMem::write`]
    /// pair per element. Values are decoded and re-encoded through the
    /// scalar type, so the tile holds the same normalized raw bits the
    /// scalar path would produce.
    #[inline]
    pub fn stage_co(
        &mut self,
        ctx: &mut BlockCtx<'_>,
        buf: &GlobalBuffer<T>,
        src: usize,
        dst: usize,
        len: usize,
    ) {
        let n = len as u64;
        ctx.counters.instructions += 2 * n;
        ctx.counters.g_load_coalesced += n;
        ctx.counters.g_load_bytes_co += n * T::BYTES;
        ctx.counters.s_store += n;
        ctx.counters.s_bytes += n * T::BYTES;
        ctx.san_global(buf, src, len, AccessKind::Read);
        self.define_init(dst, len);
        for (lane, cell) in self.data[dst..dst + len]
            .iter_mut()
            .zip(buf.cells_span(src, len))
        {
            *lane = T::from_raw(cell.load(std::sync::atomic::Ordering::Relaxed)).to_raw();
        }
    }

    /// Batched counted flush: write `len` tile elements starting at `src`
    /// back to consecutive global addresses (a coalesced warp store).
    /// Counter-identical to a [`SharedMem::read`] + [`BlockCtx::st_co`]
    /// pair per element.
    #[inline]
    pub fn flush_co(
        &self,
        ctx: &mut BlockCtx<'_>,
        buf: &GlobalBuffer<T>,
        src: usize,
        dst: usize,
        len: usize,
    ) {
        let n = len as u64;
        ctx.counters.instructions += 2 * n;
        ctx.counters.s_load += n;
        ctx.counters.s_bytes += n * T::BYTES;
        ctx.counters.g_store_coalesced += n;
        ctx.counters.g_store_bytes_co += n * T::BYTES;
        self.check_init(ctx, src, len);
        ctx.san_global(buf, dst, len, AccessKind::Write);
        for (lane, cell) in self.data[src..src + len]
            .iter()
            .zip(buf.cells_span(dst, len))
        {
            cell.store(*lane, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Batched counted fill of `start..end` with one value (counted as
    /// stores, like [`SharedMem::fill_default`]).
    #[inline]
    pub fn fill_span(&mut self, ctx: &mut BlockCtx<'_>, start: usize, end: usize, v: T) {
        let n = (end - start) as u64;
        ctx.counters.instructions += n;
        ctx.counters.s_store += n;
        ctx.counters.s_bytes += n * T::BYTES;
        self.define_init(start, end - start);
        self.data[start..end].fill(v.to_raw());
    }
}

impl SharedMem<u32> {
    /// Counted bitonic compare-exchange: load both lanes, swap if out of
    /// order. Counter-identical to two [`SharedMem::read`]s plus — when the
    /// swap fires — two [`SharedMem::write`]s via the scalar API. Raw lanes
    /// compare correctly because every counted write stores normalized
    /// (zero-extended) `u32` bits.
    #[inline]
    pub fn compare_exchange(&mut self, ctx: &mut BlockCtx<'_>, lo: usize, hi: usize) {
        const BYTES: u64 = <u32 as DeviceScalar>::BYTES;
        ctx.counters.instructions += 2;
        ctx.counters.s_load += 2;
        ctx.counters.s_bytes += 2 * BYTES;
        self.check_init(ctx, lo, 1);
        self.check_init(ctx, hi, 1);
        let a = self.data[lo];
        let b = self.data[hi];
        if a > b {
            ctx.counters.instructions += 2;
            ctx.counters.s_store += 2;
            ctx.counters.s_bytes += 2 * BYTES;
            self.data.swap(lo, hi);
        }
    }
}

impl SharedMem<f64> {
    /// Batched counted accumulate: `self[start + n] += terms[n]` for each
    /// `n`. Counter-identical to a [`SharedMem::read`] + [`SharedMem::write`]
    /// pair per element and bit-exact with that sequence; the tally and
    /// bounds check happen once per span.
    #[inline]
    pub fn add_span(&mut self, ctx: &mut BlockCtx<'_>, start: usize, terms: &[f64]) {
        let n = terms.len() as u64;
        ctx.counters.instructions += 2 * n;
        ctx.counters.s_load += n;
        ctx.counters.s_store += n;
        ctx.counters.s_bytes += 2 * n * <f64 as DeviceScalar>::BYTES;
        self.check_init(ctx, start, terms.len());
        let end = start + terms.len();
        for (cell, &t) in self.data[start..end].iter_mut().zip(terms) {
            *cell = (f64::from_bits(*cell) + t).to_bits();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    fn ctx(cfg: &DeviceConfig) -> BlockCtx<'_> {
        BlockCtx::new(0, 1, cfg, None)
    }

    #[test]
    fn loads_and_stores_are_counted() {
        let cfg = DeviceConfig::tesla_m2050();
        let mut c = ctx(&cfg);
        let buf = GlobalBuffer::from_slice(&[1u32, 2, 3]);
        assert_eq!(c.ld_co(&buf, 1), 2);
        assert_eq!(c.ld_rand(&buf, 2), 3);
        c.st_co(&buf, 0, 9);
        c.st_rand(&buf, 0, 10);
        let counters = c.take_counters();
        assert_eq!(counters.g_load_coalesced, 1);
        assert_eq!(counters.g_load_random, 1);
        assert_eq!(counters.g_store_coalesced, 1);
        assert_eq!(counters.g_store_random, 1);
        assert_eq!(counters.instructions, 4);
        assert_eq!(counters.g_load_bytes_co, 4);
        assert_eq!(buf.get(0), 10);
    }

    #[test]
    fn shared_memory_capacity_enforced() {
        let cfg = DeviceConfig::tesla_m2050();
        let mut c = ctx(&cfg);
        // 48 KB of f64 = 6144 elements exactly fits.
        let m: SharedMem<f64> = c.shared_alloc(6144);
        assert_eq!(m.len(), 6144);
        c.shared_free(m);
        let _again: SharedMem<f64> = c.shared_alloc(6144);
    }

    #[test]
    #[should_panic(expected = "shared memory overflow")]
    fn shared_memory_overflow_panics() {
        let cfg = DeviceConfig::tesla_m2050();
        let mut c = ctx(&cfg);
        let _m: SharedMem<f64> = c.shared_alloc(6145);
    }

    #[test]
    fn shared_traffic_counted() {
        let cfg = DeviceConfig::tesla_m2050();
        let mut c = ctx(&cfg);
        let mut m: SharedMem<u32> = c.shared_alloc(4);
        m.write(&mut c, 0, 5);
        assert_eq!(m.read(&mut c, 0), 5);
        m.fill_default(&mut c);
        let counters = c.take_counters();
        assert_eq!(counters.s_store, 1 + 4);
        assert_eq!(counters.s_load, 1);
    }

    #[test]
    fn atomic_add_counts_rmw() {
        let cfg = DeviceConfig::tesla_m2050();
        let mut c = ctx(&cfg);
        let buf = GlobalBuffer::from_slice(&[0u32]);
        c.atomic_add(&buf, 0, 3);
        c.atomic_add(&buf, 0, 4);
        assert_eq!(buf.get(0), 7);
        let counters = c.take_counters();
        assert_eq!(counters.g_load_random, 2);
        assert_eq!(counters.g_store_random, 2);
    }

    #[test]
    fn const_reads_count_inst_only() {
        let cfg = DeviceConfig::tesla_m2050();
        let mut c = ctx(&cfg);
        let cb = ConstBuffer::from_slice(&[1.0f64]);
        let _ = c.ld_const(&cb, 0);
        let counters = c.take_counters();
        assert_eq!(counters.instructions, 1);
        assert_eq!(counters.g_load(), 0);
    }
}
