//! Device configurations.
//!
//! A [`DeviceConfig`] captures the architectural parameters the cost model
//! and the capacity checks need. The M2050 preset uses the figures reported
//! in §VI-A of the paper (measured bandwidths included).

/// Architectural description of a simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Human-readable device name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Scalar cores per SM.
    pub cores_per_sm: usize,
    /// Threads per warp (SIMD width of the execution model).
    pub warp_size: usize,
    /// Shared memory available to one block, in bytes.
    pub shared_mem_per_block: usize,
    /// Cached constant memory, in bytes.
    pub constant_mem: usize,
    /// Global device memory, in bytes.
    pub global_mem: usize,
    /// Sustained global-memory bandwidth for coalesced access, bytes/sec.
    pub coalesced_bw: f64,
    /// Sustained global-memory bandwidth for random access, bytes/sec.
    pub random_bw: f64,
    /// Aggregate shared-memory bandwidth, bytes/sec.
    pub shared_bw: f64,
    /// Peak scalar instruction throughput, instructions/sec.
    pub inst_throughput: f64,
    /// Host↔device transfer bandwidth (PCIe), bytes/sec.
    pub pcie_bw: f64,
    /// Fixed overhead charged per kernel launch, seconds.
    pub launch_overhead: f64,
    /// Device pacing factor. When > 0, every launch *occupies* the
    /// simulated device for `sim_time × pacing` of real host time (the
    /// executing thread sleeps, releasing the CPU — exactly what a host
    /// thread does while synchronizing on a CUDA stream). This turns the
    /// modelled device time into observable wall time so pipeline overlap
    /// between host stages and the device can be measured on any host,
    /// including single-core ones. 0.0 (the default) disables pacing.
    pub pacing: f64,
}

impl DeviceConfig {
    /// NVIDIA Tesla M2050 as characterized in the paper: 448 cores (14 SMs ×
    /// 32 cores), 3 GB global memory, 48 KB shared memory per block, and the
    /// bandwidths *measured* at BGI — 82 GB/s coalesced, 3.2 GB/s random.
    pub fn tesla_m2050() -> Self {
        DeviceConfig {
            name: "Tesla M2050 (simulated)",
            num_sms: 14,
            cores_per_sm: 32,
            warp_size: 32,
            shared_mem_per_block: 48 * 1024,
            constant_mem: 64 * 1024,
            global_mem: 3 * 1024 * 1024 * 1024,
            coalesced_bw: 82.0e9,
            random_bw: 3.2e9,
            shared_bw: 1.0e12,
            // 448 cores at 1.15 GHz, one scalar op per core-cycle.
            inst_throughput: 448.0 * 1.15e9,
            pcie_bw: 6.0e9,
            launch_overhead: 5.0e-6,
            pacing: 0.0,
        }
    }

    /// The host CPU of the paper's testbed (Intel Xeon E5630): used when the
    /// cost model estimates CPU-side memory-access time (Formula 1 uses the
    /// measured 4.2 GB/s sequential main-memory bandwidth).
    pub fn xeon_e5630() -> Self {
        DeviceConfig {
            name: "Xeon E5630 (host model)",
            num_sms: 1,
            cores_per_sm: 8,
            warp_size: 1,
            shared_mem_per_block: usize::MAX,
            constant_mem: usize::MAX,
            global_mem: 64 * 1024 * 1024 * 1024,
            coalesced_bw: 4.2e9,
            random_bw: 0.8e9,
            shared_bw: 4.2e9,
            inst_throughput: 2.53e9 * 2.0,
            pcie_bw: f64::INFINITY,
            launch_overhead: 0.0,
            pacing: 0.0,
        }
    }

    /// Total scalar cores on the device.
    pub fn total_cores(&self) -> usize {
        self.num_sms * self.cores_per_sm
    }

    /// The same configuration with device pacing enabled (see
    /// [`DeviceConfig::pacing`]).
    pub fn paced(mut self, factor: f64) -> Self {
        self.pacing = factor;
        self
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::tesla_m2050()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m2050_matches_paper_figures() {
        let cfg = DeviceConfig::tesla_m2050();
        assert_eq!(cfg.total_cores(), 448);
        assert_eq!(cfg.shared_mem_per_block, 48 * 1024);
        assert!((cfg.coalesced_bw - 82.0e9).abs() < 1.0);
        assert!((cfg.random_bw - 3.2e9).abs() < 1.0);
    }

    #[test]
    fn host_model_uses_measured_sequential_bandwidth() {
        let cfg = DeviceConfig::xeon_e5630();
        assert!((cfg.coalesced_bw - 4.2e9).abs() < 1.0);
    }

    #[test]
    fn default_is_m2050() {
        assert_eq!(DeviceConfig::default(), DeviceConfig::tesla_m2050());
    }
}
