//! Data-parallel primitives on the simulated device.
//!
//! The GSNP output compressor builds on the classic GPU primitive set the
//! paper cites (reduction, scan, sort+unique, parallel binary search). They
//! are implemented here as ordinary kernels so that the compression path
//! runs on the same executor — and is charged by the same cost model — as
//! the likelihood kernels.
//!
//! Every primitive declares an [`AccessContract`] at its launch site: the
//! static analyzer proves the per-block footprints in-bounds and
//! non-overlapping before a single lane executes, which is what lets the
//! native backend run these kernels uninstrumented on sanitized devices.

use crate::backend::ComputeBackend;
use crate::buffer::GlobalBuffer;
use crate::contract::{AccessContract, BlockInterval, Footprint};
use crate::counters::LaunchStats;

/// Elements processed per block by the primitives.
pub const BLOCK: usize = 256;

fn grid_for(n: usize) -> usize {
    n.div_ceil(BLOCK)
}

/// Tree-reduce a `u64` buffer to its sum. Per-block partial sums are staged
/// through shared memory; a final sequential pass combines the partials so
/// the result is deterministic.
pub fn reduce_sum<B: ComputeBackend>(dev: &B, input: &GlobalBuffer<u64>) -> (u64, LaunchStats) {
    let n = input.len();
    if n == 0 {
        return (0, LaunchStats::default());
    }
    let grid = grid_for(n);
    let partials: GlobalBuffer<u64> = dev.alloc(grid);
    let mut stats = dev.launch_contracted(
        "reduce_sum",
        grid,
        || {
            AccessContract::default()
                .read(input, Footprint::tiled(BLOCK, n))
                .write(&partials, Footprint::elem_per_block())
                .shared::<u64>(BLOCK)
        },
        |ctx| {
            let base = ctx.block_idx() * BLOCK;
            let end = (base + BLOCK).min(n);
            let mut tile = ctx.shared_alloc::<u64>(BLOCK);
            for (t, i) in (base..end).enumerate() {
                let v = ctx.ld_co(input, i);
                tile.write(ctx, t, v);
            }
            // In-block tree reduction.
            let mut width = end - base;
            while width > 1 {
                let half = width.div_ceil(2);
                for t in 0..width / 2 {
                    let a = tile.read(ctx, t);
                    let b = tile.read(ctx, t + half);
                    tile.write(ctx, t, a.wrapping_add(b));
                    ctx.add_inst(1);
                }
                width = half;
            }
            let sum = tile.read(ctx, 0);
            ctx.st_co(&partials, ctx.block_idx(), sum);
            ctx.shared_free(tile);
        },
    );
    let mut total = 0u64;
    let combine = dev.launch_contracted_seq(
        "reduce_combine",
        1,
        || AccessContract::default().read(&partials, Footprint::span(0, grid)),
        |ctx| {
            for b in 0..grid {
                total = total.wrapping_add(ctx.ld_co(&partials, b));
                ctx.add_inst(1);
            }
        },
    );
    stats += combine;
    (total, stats)
}

/// Exclusive prefix sum of a `u32` buffer. Returns the scanned buffer and
/// the grand total. Three phases: per-block scan, scan of block totals
/// (sequential — the totals array is tiny), then a uniform-add fixup.
pub fn exclusive_scan<B: ComputeBackend>(
    dev: &B,
    input: &GlobalBuffer<u32>,
) -> (GlobalBuffer<u32>, u32, LaunchStats) {
    let n = input.len();
    let output: GlobalBuffer<u32> = dev.alloc(n);
    if n == 0 {
        return (output, 0, LaunchStats::default());
    }
    let grid = grid_for(n);
    let block_totals: GlobalBuffer<u32> = dev.alloc(grid);

    let mut stats = dev.launch_contracted(
        "scan_blocks",
        grid,
        || {
            AccessContract::default()
                .read(input, Footprint::tiled(BLOCK, n))
                .write(&output, Footprint::tiled(BLOCK, n))
                .write(&block_totals, Footprint::elem_per_block())
        },
        |ctx| {
            let base = ctx.block_idx() * BLOCK;
            let end = (base + BLOCK).min(n);
            let mut acc = 0u32;
            for i in base..end {
                let v = ctx.ld_co(input, i);
                ctx.st_co(&output, i, acc);
                acc = acc.wrapping_add(v);
                ctx.add_inst(1);
            }
            ctx.st_co(&block_totals, ctx.block_idx(), acc);
        },
    );

    let mut total = 0u32;
    stats += dev.launch_contracted_seq(
        "scan_totals",
        1,
        || AccessContract::default().read_write(&block_totals, Footprint::span(0, grid)),
        |ctx| {
            for b in 0..grid {
                let v = ctx.ld_co(&block_totals, b);
                ctx.st_co(&block_totals, b, total);
                total = total.wrapping_add(v);
                ctx.add_inst(1);
            }
        },
    );

    stats += dev.launch_contracted(
        "scan_fixup",
        grid,
        || {
            AccessContract::default()
                .read(&block_totals, Footprint::elem_per_block())
                .read_write(&output, Footprint::tiled(BLOCK, n))
        },
        |ctx| {
            let offset = ctx.ld_co(&block_totals, ctx.block_idx());
            let base = ctx.block_idx() * BLOCK;
            let end = (base + BLOCK).min(n);
            for i in base..end {
                let v = ctx.ld_co(&output, i);
                ctx.st_co(&output, i, v.wrapping_add(offset));
            }
        },
    );

    (output, total, stats)
}

/// Compact the distinct values of a *sorted* buffer ("unique" primitive).
/// Returns the dictionary values in order.
pub fn unique_sorted<B: ComputeBackend>(
    dev: &B,
    sorted: &GlobalBuffer<u32>,
) -> (Vec<u32>, LaunchStats) {
    let n = sorted.len();
    if n == 0 {
        return (Vec::new(), LaunchStats::default());
    }
    // Flags: 1 where a new run starts.
    let flags: GlobalBuffer<u32> = dev.alloc(n);
    let grid = grid_for(n);
    let mut stats = dev.launch_contracted(
        "unique_flags",
        grid,
        || {
            AccessContract::default()
                .read(sorted, Footprint::tiled_with_prev(BLOCK, n))
                .write(&flags, Footprint::tiled(BLOCK, n))
        },
        |ctx| {
            let base = ctx.block_idx() * BLOCK;
            let end = (base + BLOCK).min(n);
            for i in base..end {
                let v = ctx.ld_co(sorted, i);
                let is_new = if i == 0 {
                    1
                } else {
                    let prev = ctx.ld_co(sorted, i - 1);
                    ctx.add_inst(1);
                    u32::from(prev != v)
                };
                ctx.st_co(&flags, i, is_new);
            }
        },
    );
    let (positions, count, scan_stats) = exclusive_scan(dev, &flags);
    stats += scan_stats;
    let dict: GlobalBuffer<u32> = dev.alloc(count as usize);
    stats += dev.launch_contracted(
        "unique_scatter",
        grid,
        || {
            AccessContract::default()
                .read(&flags, Footprint::tiled(BLOCK, n))
                .read(&positions, Footprint::tiled(BLOCK, n))
                .read(sorted, Footprint::tiled(BLOCK, n))
                .write(&dict, scatter_footprint(&positions, n, count as usize))
        },
        |ctx| {
            let base = ctx.block_idx() * BLOCK;
            let end = (base + BLOCK).min(n);
            for i in base..end {
                if ctx.ld_co(&flags, i) == 1 {
                    let pos = ctx.ld_co(&positions, i);
                    let v = ctx.ld_co(sorted, i);
                    ctx.st_rand(&dict, pos as usize, v);
                }
            }
        },
    );
    (dict.to_vec(), stats)
}

/// The per-block write footprint of a scatter driven by an exclusive scan:
/// block `b` writes exactly the destination slots `positions[b·BLOCK] ..
/// positions[(b+1)·BLOCK]` (the scan is monotone, so the block intervals
/// partition the output). The boundary values are read back host-side at
/// contract-build time — a handful of elements per launch, and only when a
/// checker actually wants the declaration.
pub fn scatter_footprint(positions: &GlobalBuffer<u32>, n: usize, out_len: usize) -> Footprint {
    let grid = n.div_ceil(BLOCK);
    let mut intervals = Vec::with_capacity(grid);
    for b in 0..grid {
        let lo = positions.get(b * BLOCK) as usize;
        let next = (b + 1) * BLOCK;
        let hi = if next < n {
            positions.get(next) as usize
        } else {
            out_len
        };
        intervals.push(BlockInterval { block: b, lo, hi });
    }
    Footprint::per_block(intervals)
}

/// Parallel binary search: for each element of `queries`, find its index in
/// the sorted `dict` (which is loaded to constant memory by the caller when
/// it fits; here it is searched in global memory with random accesses,
/// matching the paper's fallback path). Every query must be present.
pub fn binary_search_indices<B: ComputeBackend>(
    dev: &B,
    dict: &GlobalBuffer<u32>,
    queries: &GlobalBuffer<u32>,
) -> (GlobalBuffer<u32>, LaunchStats) {
    let n = queries.len();
    let m = dict.len();
    let out: GlobalBuffer<u32> = dev.alloc(n);
    if n == 0 {
        return (out, LaunchStats::default());
    }
    assert!(m > 0, "binary search over an empty dictionary");
    let stats = dev.launch_contracted(
        "binary_search",
        grid_for(n),
        || {
            AccessContract::default()
                .read(queries, Footprint::tiled(BLOCK, n))
                .read(dict, Footprint::All)
                .write(&out, Footprint::tiled(BLOCK, n))
        },
        |ctx| {
            let base = ctx.block_idx() * BLOCK;
            let end = (base + BLOCK).min(n);
            for i in base..end {
                let q = ctx.ld_co(queries, i);
                let (mut lo, mut hi) = (0usize, m);
                while lo + 1 < hi {
                    let mid = (lo + hi) / 2;
                    let v = ctx.ld_rand(dict, mid);
                    if v <= q {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                    ctx.add_inst(2);
                }
                debug_assert_eq!(ctx.ld_rand(dict, lo), q, "query missing from dictionary");
                ctx.st_co(&out, i, lo as u32);
            }
        },
    );
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::Device;
    use crate::sanitizer::SanitizerConfig;

    #[test]
    fn reduce_sum_matches_host() {
        let dev = Device::m2050();
        let data: Vec<u64> = (0..10_000).map(|i| i * i).collect();
        let buf = dev.upload(&data);
        let (sum, stats) = reduce_sum(&dev, &buf);
        assert_eq!(sum, data.iter().sum::<u64>());
        assert!(
            stats.counters.s_load > 0,
            "reduction must use shared memory"
        );
    }

    #[test]
    fn reduce_sum_empty_and_single() {
        let dev = Device::m2050();
        let empty: GlobalBuffer<u64> = dev.alloc(0);
        assert_eq!(reduce_sum(&dev, &empty).0, 0);
        let one = dev.upload(&[42u64]);
        assert_eq!(reduce_sum(&dev, &one).0, 42);
    }

    #[test]
    fn exclusive_scan_matches_host() {
        let dev = Device::m2050();
        let data: Vec<u32> = (0..1000).map(|i| (i % 7) as u32).collect();
        let buf = dev.upload(&data);
        let (scanned, total, _) = exclusive_scan(&dev, &buf);
        let got = scanned.to_vec();
        let mut acc = 0u32;
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(got[i], acc, "at {i}");
            acc += v;
        }
        assert_eq!(total, acc);
    }

    #[test]
    fn exclusive_scan_non_multiple_of_block() {
        let dev = Device::m2050();
        let data = vec![1u32; BLOCK * 3 + 17];
        let buf = dev.upload(&data);
        let (scanned, total, _) = exclusive_scan(&dev, &buf);
        assert_eq!(total, data.len() as u32);
        assert_eq!(scanned.get(data.len() - 1), data.len() as u32 - 1);
    }

    #[test]
    fn unique_compacts_runs() {
        let dev = Device::m2050();
        let data = vec![1u32, 1, 1, 3, 3, 7, 9, 9, 9, 9];
        let buf = dev.upload(&data);
        let (dict, _) = unique_sorted(&dev, &buf);
        assert_eq!(dict, vec![1, 3, 7, 9]);
    }

    #[test]
    fn binary_search_finds_all() {
        let dev = Device::m2050();
        let dict = dev.upload(&[2u32, 5, 8, 13, 21]);
        let queries = dev.upload(&[21u32, 2, 8, 8, 5, 13]);
        let (idx, _) = binary_search_indices(&dev, &dict, &queries);
        assert_eq!(idx.to_vec(), vec![4, 0, 2, 2, 1, 3]);
    }

    #[test]
    fn primitives_verify_their_contracts() {
        // Contracts + conformance on: every primitive must come out of the
        // proof table verified, with zero dynamic escapes.
        let dev = Device::m2050()
            .with_sanitizer(SanitizerConfig::all().with_conformance())
            .with_contracts();
        let data: Vec<u32> = (0..2000).map(|i| (i * 37 % 256) as u32).collect();
        let mut sorted_host = data.clone();
        sorted_host.sort_unstable();
        let sorted = dev.upload(&sorted_host);
        let (dict, _) = unique_sorted(&dev, &sorted);
        let dict_buf = dev.upload(&dict);
        let queries = dev.upload(&sorted_host);
        binary_search_indices(&dev, &dict_buf, &queries);
        let words: Vec<u64> = (0..700u64).collect();
        let wbuf = dev.upload(&words);
        reduce_sum(&dev, &wbuf);

        let report = dev.contract_report();
        let totals = report.totals();
        assert!(totals.verified > 0);
        assert_eq!(totals.refuted, 0, "{:?}", report.diagnostics);
        assert_eq!(totals.assumed, 0, "every primitive launch is contracted");
        let counts = dev.sanitizer_report().unwrap().counts;
        assert_eq!(counts.conformance_escapes, 0);
        assert_eq!(counts.overwide_declarations, 0);
    }
}
