//! Hardware counters.
//!
//! The paper's Table III reports CUDA Visual Profiler counters for the
//! `likelihood_comp` kernel: instructions issued per warp, global loads and
//! stores, shared loads and stores per warp. [`HwCounters`] is the exact
//! analogue: kernels tally accesses while they run, and the totals can be
//! rendered per-warp with [`HwCounters::per_warp`].

use std::ops::AddAssign;
use std::sync::atomic::{AtomicU64, Ordering};

/// A plain (non-atomic) counter snapshot. Produced per block and aggregated
/// into a [`LaunchStats`] when a launch completes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HwCounters {
    /// Scalar instructions executed (kernel bodies self-report arithmetic
    /// via [`crate::BlockCtx::add_inst`]; every memory access also counts
    /// as one instruction automatically).
    pub instructions: u64,
    /// Global-memory loads that are part of a coalesced transaction.
    pub g_load_coalesced: u64,
    /// Global-memory loads with a random/non-coalesced pattern.
    pub g_load_random: u64,
    /// Global-memory stores, coalesced.
    pub g_store_coalesced: u64,
    /// Global-memory stores, random.
    pub g_store_random: u64,
    /// Shared-memory loads.
    pub s_load: u64,
    /// Shared-memory stores.
    pub s_store: u64,
    /// Bytes moved by global loads (for bandwidth accounting).
    pub g_load_bytes_co: u64,
    /// Bytes moved by random global loads.
    pub g_load_bytes_rand: u64,
    /// Bytes moved by coalesced global stores.
    pub g_store_bytes_co: u64,
    /// Bytes moved by random global stores.
    pub g_store_bytes_rand: u64,
    /// Bytes moved by shared-memory traffic.
    pub s_bytes: u64,
    /// Host→device bytes transferred (uploads).
    pub h2d_bytes: u64,
    /// Device→host bytes transferred (downloads).
    pub d2h_bytes: u64,
}

impl HwCounters {
    /// Total global loads regardless of pattern (the paper's `#g load`).
    pub fn g_load(&self) -> u64 {
        self.g_load_coalesced + self.g_load_random
    }

    /// Total global stores regardless of pattern (the paper's `#g store`).
    pub fn g_store(&self) -> u64 {
        self.g_store_coalesced + self.g_store_random
    }

    /// Divide a per-thread counter by the warp size to obtain the
    /// "per warp" (PW) figures Table III reports.
    pub fn per_warp(count: u64, warp_size: usize) -> u64 {
        count / warp_size as u64
    }
}

impl AddAssign for HwCounters {
    fn add_assign(&mut self, o: Self) {
        self.instructions += o.instructions;
        self.g_load_coalesced += o.g_load_coalesced;
        self.g_load_random += o.g_load_random;
        self.g_store_coalesced += o.g_store_coalesced;
        self.g_store_random += o.g_store_random;
        self.s_load += o.s_load;
        self.s_store += o.s_store;
        self.g_load_bytes_co += o.g_load_bytes_co;
        self.g_load_bytes_rand += o.g_load_bytes_rand;
        self.g_store_bytes_co += o.g_store_bytes_co;
        self.g_store_bytes_rand += o.g_store_bytes_rand;
        self.s_bytes += o.s_bytes;
        self.h2d_bytes += o.h2d_bytes;
        self.d2h_bytes += o.d2h_bytes;
    }
}

/// Atomic accumulator shared by all blocks of a launch. Blocks keep local
/// [`HwCounters`] (cheap `Cell` arithmetic on the hot path) and flush once
/// when they retire, so contention on these atomics is one RMW per field
/// per block.
#[derive(Debug, Default)]
pub(crate) struct AtomicCounters {
    pub instructions: AtomicU64,
    pub g_load_coalesced: AtomicU64,
    pub g_load_random: AtomicU64,
    pub g_store_coalesced: AtomicU64,
    pub g_store_random: AtomicU64,
    pub s_load: AtomicU64,
    pub s_store: AtomicU64,
    pub g_load_bytes_co: AtomicU64,
    pub g_load_bytes_rand: AtomicU64,
    pub g_store_bytes_co: AtomicU64,
    pub g_store_bytes_rand: AtomicU64,
    pub s_bytes: AtomicU64,
    pub h2d_bytes: AtomicU64,
    pub d2h_bytes: AtomicU64,
}

impl AtomicCounters {
    pub(crate) fn flush(&self, c: &HwCounters) {
        // Relaxed is sufficient: the launch joins all blocks before reading.
        self.instructions
            .fetch_add(c.instructions, Ordering::Relaxed);
        self.g_load_coalesced
            .fetch_add(c.g_load_coalesced, Ordering::Relaxed);
        self.g_load_random
            .fetch_add(c.g_load_random, Ordering::Relaxed);
        self.g_store_coalesced
            .fetch_add(c.g_store_coalesced, Ordering::Relaxed);
        self.g_store_random
            .fetch_add(c.g_store_random, Ordering::Relaxed);
        self.s_load.fetch_add(c.s_load, Ordering::Relaxed);
        self.s_store.fetch_add(c.s_store, Ordering::Relaxed);
        self.g_load_bytes_co
            .fetch_add(c.g_load_bytes_co, Ordering::Relaxed);
        self.g_load_bytes_rand
            .fetch_add(c.g_load_bytes_rand, Ordering::Relaxed);
        self.g_store_bytes_co
            .fetch_add(c.g_store_bytes_co, Ordering::Relaxed);
        self.g_store_bytes_rand
            .fetch_add(c.g_store_bytes_rand, Ordering::Relaxed);
        self.s_bytes.fetch_add(c.s_bytes, Ordering::Relaxed);
        self.h2d_bytes.fetch_add(c.h2d_bytes, Ordering::Relaxed);
        self.d2h_bytes.fetch_add(c.d2h_bytes, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HwCounters {
        HwCounters {
            instructions: self.instructions.load(Ordering::Relaxed),
            g_load_coalesced: self.g_load_coalesced.load(Ordering::Relaxed),
            g_load_random: self.g_load_random.load(Ordering::Relaxed),
            g_store_coalesced: self.g_store_coalesced.load(Ordering::Relaxed),
            g_store_random: self.g_store_random.load(Ordering::Relaxed),
            s_load: self.s_load.load(Ordering::Relaxed),
            s_store: self.s_store.load(Ordering::Relaxed),
            g_load_bytes_co: self.g_load_bytes_co.load(Ordering::Relaxed),
            g_load_bytes_rand: self.g_load_bytes_rand.load(Ordering::Relaxed),
            g_store_bytes_co: self.g_store_bytes_co.load(Ordering::Relaxed),
            g_store_bytes_rand: self.g_store_bytes_rand.load(Ordering::Relaxed),
            s_bytes: self.s_bytes.load(Ordering::Relaxed),
            h2d_bytes: self.h2d_bytes.load(Ordering::Relaxed),
            d2h_bytes: self.d2h_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Result of one kernel launch: the aggregated counters, the wall-clock time
/// the simulation actually took on the host, and the device time estimated
/// by the cost model.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaunchStats {
    /// Aggregated hardware counters for the launch.
    pub counters: HwCounters,
    /// Host wall-clock seconds spent executing the kernel bodies.
    pub wall_time: f64,
    /// Device time predicted by the analytic cost model, seconds.
    pub sim_time: f64,
    /// Number of blocks launched.
    pub grid_dim: usize,
}

impl AddAssign for LaunchStats {
    fn add_assign(&mut self, o: Self) {
        self.counters += o.counters;
        self.wall_time += o.wall_time;
        self.sim_time += o.sim_time;
        self.grid_dim += o.grid_dim;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add() {
        let mut a = HwCounters {
            instructions: 5,
            g_load_coalesced: 3,
            ..Default::default()
        };
        let b = HwCounters {
            instructions: 7,
            g_load_random: 2,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.instructions, 12);
        assert_eq!(a.g_load(), 5);
    }

    #[test]
    fn atomic_flush_roundtrip() {
        let at = AtomicCounters::default();
        let c = HwCounters {
            instructions: 11,
            s_load: 4,
            h2d_bytes: 100,
            ..Default::default()
        };
        at.flush(&c);
        at.flush(&c);
        let snap = at.snapshot();
        assert_eq!(snap.instructions, 22);
        assert_eq!(snap.s_load, 8);
        assert_eq!(snap.h2d_bytes, 200);
    }

    #[test]
    fn per_warp_division() {
        assert_eq!(HwCounters::per_warp(3200, 32), 100);
    }
}
