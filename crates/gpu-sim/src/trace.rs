//! Device-clock tracing: ring-buffered span recorder + exporters.
//!
//! The paper's evaluation is profiler-driven — Tables III/IV and Figs. 5–8
//! come from CUDA Visual Profiler counters and per-kernel timelines. This
//! module is the reproduction's profiler: a [`TraceRecorder`] collects
//! spans, instant events, and counter samples from every device (kernel
//! launches, transfers, buffer-pool traffic, sanitizer findings) and from
//! the host-side pipeline stages, and renders them as
//!
//! * **Chrome trace-event JSON** ([`TraceSnapshot::to_chrome_json`]) —
//!   loadable in Perfetto or `chrome://tracing`, one process per device
//!   plus one for the pipeline, with counter tracks for pool occupancy and
//!   PCIe bandwidth; and
//! * **Prometheus-style text metrics** ([`MetricsSnapshot::render_text`])
//!   — stable metric names over the same counters, for scrape-style
//!   consumption.
//!
//! ## Clock domains
//!
//! Device tracks are stamped with the **simulated device clock**: each
//! device keeps a monotonic cursor that every launch/transfer advances by
//! its modelled [`crate::CostModel`] time, so the device timeline shows
//! what the *modelled hardware* did, one kernel at a time. Host tracks
//! (pipeline stages) use **wall clock** relative to the recorder's epoch.
//! Under device pacing the two domains align (pacing converts modelled
//! seconds into real ones); unpaced, the device timeline runs ahead of the
//! host one — both are still internally consistent, and the per-lane
//! busy/stall reconciliation against `OverlapStats` holds regardless.
//!
//! ## Allocation discipline
//!
//! Recording is allocation-free in steady state: events are fixed-size
//! `Copy` structs written into a preallocated ring (oldest events are
//! overwritten once full, with a drop count), and event names are interned
//! once per distinct string. `tests/alloc_steady_state.rs` pins this — a
//! traced window loop performs zero heap allocations per window.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

use parking_lot::Mutex;

use crate::counters::HwCounters;

/// Default ring capacity (events). Sized so a multi-window multi-device
/// run keeps every span; callers with longer runs pick their own.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Identifies one registered track (a `pid`/`tid` pair in the Chrome
/// trace). Obtained from [`TraceRecorder::register_track`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrackId(pub u32);

/// An interned event name. Obtained from [`TraceRecorder::intern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NameId(pub u32);

/// What kind of timeline row a track renders as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackKind {
    /// Nested/sequential spans plus instants (a thread row).
    Spans,
    /// A sampled value over time (a counter row, `ph: "C"`).
    Counter,
}

/// One registered track: process + thread labels and their Chrome ids.
#[derive(Debug, Clone)]
pub struct TrackInfo {
    /// Process label (one per device, plus `"pipeline"` for host stages).
    pub process: String,
    /// Thread label within the process.
    pub thread: String,
    /// Chrome `pid` (assigned per distinct process label).
    pub pid: u32,
    /// Chrome `tid` (assigned per track).
    pub tid: u32,
    /// Row rendering kind.
    pub kind: TrackKind,
}

/// Structured per-span payload (rendered into the Chrome `args` object).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpanArgs {
    /// No payload.
    None,
    /// A pipeline-stage span covering one window.
    Window {
        /// Window index within the run.
        index: u64,
    },
    /// A kernel launch: grid size, modelled time split, and the launch's
    /// hardware counters (the per-launch Table III analogue).
    Kernel {
        /// Blocks launched.
        grid: u64,
        /// Modelled arithmetic time, seconds.
        compute: f64,
        /// Modelled memory-traffic time, seconds.
        memory: f64,
        /// Modelled PCIe transfer time, seconds.
        transfer: f64,
        /// The launch's aggregated hardware counters.
        counters: HwCounters,
    },
    /// A host↔device transfer.
    Xfer {
        /// Bytes moved.
        bytes: u64,
    },
}

/// Event payload: a complete span, an instant marker, or a counter sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// Complete span (`ph: "X"`): starts at the event's `ts`, lasts `dur`.
    Span {
        /// Duration, seconds.
        dur: f64,
        /// Structured payload.
        args: SpanArgs,
    },
    /// Instant event (`ph: "i"`).
    Instant,
    /// Counter sample (`ph: "C"`).
    Counter {
        /// Sampled value.
        value: f64,
    },
}

/// One recorded event. Fixed-size and `Copy` so the ring buffer never
/// touches the heap while recording.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// The track this event belongs to.
    pub track: TrackId,
    /// Interned event name.
    pub name: NameId,
    /// Start time in seconds — wall clock since the recorder's epoch for
    /// host tracks, simulated device clock for device tracks.
    pub ts: f64,
    /// Payload.
    pub kind: EventKind,
    /// Global record sequence number (monotonic across all tracks).
    pub seq: u64,
}

struct Inner {
    names: Vec<String>,
    name_lookup: HashMap<String, NameId>,
    tracks: Vec<TrackInfo>,
    pids: HashMap<String, u32>,
    ring: Vec<TraceEvent>,
    capacity: usize,
    head: usize,
    dropped: u64,
    seq: u64,
}

/// Shared, thread-safe span/instant/counter recorder.
///
/// Cheap to clone behind an `Arc`; every [`crate::Device`] and pipeline
/// stage holding a handle records into the same ring.
pub struct TraceRecorder {
    inner: Mutex<Inner>,
    epoch: Instant,
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("TraceRecorder")
            .field("events", &inner.ring.len())
            .field("capacity", &inner.capacity)
            .field("tracks", &inner.tracks.len())
            .field("dropped", &inner.dropped)
            .finish()
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl TraceRecorder {
    /// A recorder with room for `capacity` events (oldest overwritten
    /// beyond that). The ring is preallocated here, so recording itself
    /// never allocates.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRecorder {
            inner: Mutex::new(Inner {
                names: Vec::new(),
                name_lookup: HashMap::new(),
                tracks: Vec::new(),
                pids: HashMap::new(),
                ring: Vec::with_capacity(capacity),
                capacity,
                head: 0,
                dropped: 0,
                seq: 0,
            }),
            epoch: Instant::now(),
        }
    }

    /// Seconds of wall clock since this recorder was created — the time
    /// base of every host track.
    pub fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Register a track. Tracks sharing a `process` label share a Chrome
    /// `pid`; every track gets its own `tid`. Registration allocates —
    /// do it at setup, not on the hot path.
    pub fn register_track(&self, process: &str, thread: &str, kind: TrackKind) -> TrackId {
        let mut inner = self.inner.lock();
        let next_pid = inner.pids.len() as u32 + 1;
        let pid = *inner.pids.entry(process.to_string()).or_insert(next_pid);
        let tid = inner.tracks.len() as u32 + 1;
        inner.tracks.push(TrackInfo {
            process: process.to_string(),
            thread: thread.to_string(),
            pid,
            tid,
            kind,
        });
        TrackId(tid - 1)
    }

    /// Intern an event name; repeated calls with the same string return
    /// the same id without allocating.
    pub fn intern(&self, name: &str) -> NameId {
        let mut inner = self.inner.lock();
        if let Some(&id) = inner.name_lookup.get(name) {
            return id;
        }
        let id = NameId(inner.names.len() as u32);
        inner.names.push(name.to_string());
        inner.name_lookup.insert(name.to_string(), id);
        id
    }

    fn record(&self, ev: TraceEvent) {
        let mut inner = self.inner.lock();
        let ev = TraceEvent {
            seq: inner.seq,
            ..ev
        };
        inner.seq += 1;
        if inner.ring.len() < inner.capacity {
            inner.ring.push(ev);
        } else {
            let head = inner.head;
            inner.ring[head] = ev;
            inner.head = (head + 1) % inner.capacity;
            inner.dropped += 1;
        }
    }

    /// Record a complete span.
    pub fn span(&self, track: TrackId, name: NameId, ts: f64, dur: f64, args: SpanArgs) {
        self.record(TraceEvent {
            track,
            name,
            ts,
            kind: EventKind::Span { dur, args },
            seq: 0,
        });
    }

    /// Record an instant event.
    pub fn instant(&self, track: TrackId, name: NameId, ts: f64) {
        self.record(TraceEvent {
            track,
            name,
            ts,
            kind: EventKind::Instant,
            seq: 0,
        });
    }

    /// Record a counter sample.
    pub fn counter(&self, track: TrackId, name: NameId, ts: f64, value: f64) {
        self.record(TraceEvent {
            track,
            name,
            ts,
            kind: EventKind::Counter { value },
            seq: 0,
        });
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Copy out everything recorded so far, in record order.
    pub fn snapshot(&self) -> TraceSnapshot {
        let inner = self.inner.lock();
        let mut events = Vec::with_capacity(inner.ring.len());
        // Ring order: oldest first (head..end, then start..head).
        events.extend_from_slice(&inner.ring[inner.head..]);
        events.extend_from_slice(&inner.ring[..inner.head]);
        TraceSnapshot {
            events,
            names: inner.names.clone(),
            tracks: inner.tracks.clone(),
            dropped: inner.dropped,
        }
    }
}

/// An immutable copy of a recorder's state, ready for export or analysis.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Events in record order (oldest first).
    pub events: Vec<TraceEvent>,
    /// Interned name table (indexed by [`NameId`]).
    pub names: Vec<String>,
    /// Registered tracks (indexed by [`TrackId`]).
    pub tracks: Vec<TrackInfo>,
    /// Events lost to ring overwrite before this snapshot.
    pub dropped: u64,
}

impl TraceSnapshot {
    /// Resolve an interned name.
    pub fn name(&self, id: NameId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Sum the durations of every span named `name` on `track`.
    pub fn sum_span_durations(&self, track: TrackId, name: &str) -> f64 {
        self.events
            .iter()
            .filter(|e| e.track == track && self.name(e.name) == name)
            .map(|e| match e.kind {
                EventKind::Span { dur, .. } => dur,
                _ => 0.0,
            })
            .sum()
    }

    /// Count events named `name` on `track`.
    pub fn count_events(&self, track: TrackId, name: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.track == track && self.name(e.name) == name)
            .count()
    }

    /// Aggregate every kernel span (those carrying [`SpanArgs::Kernel`])
    /// by name, heaviest modelled time first — the per-kernel attribution
    /// table of `gsnp profile` (the Table III/IV analogue).
    pub fn kernel_profiles(&self) -> Vec<KernelProfile> {
        let mut by_name: HashMap<NameId, KernelProfile> = HashMap::new();
        for e in &self.events {
            let EventKind::Span { dur, args } = e.kind else {
                continue;
            };
            let SpanArgs::Kernel {
                grid,
                compute,
                memory,
                transfer,
                counters,
            } = args
            else {
                continue;
            };
            let p = by_name.entry(e.name).or_insert_with(|| KernelProfile {
                name: self.name(e.name).to_string(),
                ..Default::default()
            });
            p.launches += 1;
            p.grid_blocks += grid;
            p.sim_time += dur;
            p.compute += compute;
            p.memory += memory;
            p.transfer += transfer;
            p.counters += counters;
        }
        let mut out: Vec<KernelProfile> = by_name.into_values().collect();
        out.sort_by(|a, b| b.sim_time.total_cmp(&a.sim_time).then(a.name.cmp(&b.name)));
        out
    }

    /// Serialize as Chrome trace-event JSON (the `{"traceEvents": [...]}`
    /// object form), with process/thread metadata so Perfetto labels one
    /// process per device plus the pipeline process.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('\n');
        };
        let mut named_pids: Vec<u32> = Vec::new();
        for t in &self.tracks {
            if !named_pids.contains(&t.pid) {
                named_pids.push(t.pid);
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"ph\":\"M\",\"pid\":{},\"name\":\"process_name\",\"args\":{{\"name\":{}}}}}",
                    t.pid,
                    json_string(&t.process)
                );
            }
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                t.pid,
                t.tid,
                json_string(&t.thread)
            );
        }
        for e in &self.events {
            let t = &self.tracks[e.track.0 as usize];
            let name = json_string(self.name(e.name));
            let ts_us = e.ts * 1e6;
            sep(&mut out);
            match e.kind {
                EventKind::Span { dur, args } => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":{}",
                        t.pid,
                        t.tid,
                        json_f64(ts_us),
                        json_f64(dur * 1e6),
                        name
                    );
                    write_span_args(&mut out, &args);
                    out.push('}');
                }
                EventKind::Instant => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"i\",\"pid\":{},\"tid\":{},\"ts\":{},\"s\":\"t\",\"name\":{}}}",
                        t.pid,
                        t.tid,
                        json_f64(ts_us),
                        name
                    );
                }
                EventKind::Counter { value } => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"C\",\"pid\":{},\"tid\":{},\"ts\":{},\"name\":{},\"args\":{{\"value\":{}}}}}",
                        t.pid,
                        t.tid,
                        json_f64(ts_us),
                        name,
                        json_f64(value)
                    );
                }
            }
        }
        out.push_str("\n]}");
        out
    }
}

/// Aggregated per-kernel attribution (see
/// [`TraceSnapshot::kernel_profiles`]).
#[derive(Debug, Clone, Default)]
pub struct KernelProfile {
    /// Kernel name as passed to [`crate::Device::launch`].
    pub name: String,
    /// Launches aggregated.
    pub launches: u64,
    /// Total blocks across launches.
    pub grid_blocks: u64,
    /// Total modelled device time, seconds.
    pub sim_time: f64,
    /// Modelled arithmetic time, seconds.
    pub compute: f64,
    /// Modelled memory-traffic time, seconds.
    pub memory: f64,
    /// Modelled PCIe transfer time, seconds.
    pub transfer: f64,
    /// Summed hardware counters.
    pub counters: HwCounters,
}

fn write_span_args(out: &mut String, args: &SpanArgs) {
    match args {
        SpanArgs::None => {}
        SpanArgs::Window { index } => {
            let _ = write!(out, ",\"args\":{{\"window\":{index}}}");
        }
        SpanArgs::Kernel {
            grid,
            compute,
            memory,
            transfer,
            counters,
        } => {
            let _ = write!(
                out,
                ",\"args\":{{\"grid\":{grid},\"compute_s\":{},\"memory_s\":{},\"transfer_s\":{},\
                 \"instructions\":{},\"g_load\":{},\"g_store\":{},\"g_load_random\":{},\
                 \"g_store_random\":{},\"s_load\":{},\"s_store\":{},\"h2d_bytes\":{},\"d2h_bytes\":{}}}",
                json_f64(*compute),
                json_f64(*memory),
                json_f64(*transfer),
                counters.instructions,
                counters.g_load(),
                counters.g_store(),
                counters.g_load_random,
                counters.g_store_random,
                counters.s_load,
                counters.s_store,
                counters.h2d_bytes,
                counters.d2h_bytes,
            );
        }
        SpanArgs::Xfer { bytes } => {
            let _ = write!(out, ",\"args\":{{\"bytes\":{bytes}}}");
        }
    }
}

/// Render an `f64` as a JSON number (never `NaN`/`Infinity`, which JSON
/// forbids; those clamp to 0 / a large sentinel).
fn json_f64(v: f64) -> String {
    if v.is_nan() {
        return "0".to_string();
    }
    if v.is_infinite() {
        return if v > 0.0 { "1e308" } else { "-1e308" }.to_string();
    }
    let mut s = format!("{v}");
    // `{}` on f64 never produces exponent-free integers with a trailing
    // dot, but be safe for JSON consumers that require a fraction digit.
    if s.ends_with('.') {
        s.push('0');
    }
    s
}

/// JSON-escape a string, quotes included.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Chrome-trace JSON validation (a dependency-free mini JSON parser).
// ---------------------------------------------------------------------------

/// A parsed JSON value (validation support; not a general-purpose library).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 passes through unchanged.
                let ch_len = utf8_len(c);
                let chunk = b
                    .get(*pos..*pos + ch_len)
                    .ok_or("truncated UTF-8 sequence")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += ch_len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        out.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// Validate a Chrome trace-event document: it must parse as JSON, carry a
/// `traceEvents` array, and every event must satisfy the trace-event
/// schema (`ph` string; `pid` number; spans carry `ts`, `dur` ≥ 0 and a
/// `name`; instants carry `ts`; counters carry a numeric `args.value`).
/// Returns the number of validated events.
pub fn validate_chrome_json(input: &str) -> Result<usize, String> {
    let doc = parse_json(input)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents key")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        e.get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let need_ts = matches!(ph, "X" | "i" | "C");
        if need_ts {
            let ts = e
                .get("ts")
                .and_then(Json::as_num)
                .ok_or_else(|| format!("event {i}: missing ts"))?;
            if !ts.is_finite() {
                return Err(format!("event {i}: non-finite ts"));
            }
            e.get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("event {i}: missing name"))?;
        }
        match ph {
            "X" => {
                let dur = e
                    .get("dur")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i}: span missing dur"))?;
                if dur.is_nan() || dur < 0.0 {
                    return Err(format!("event {i}: negative span dur {dur}"));
                }
            }
            "C" => {
                e.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i}: counter missing args.value"))?;
            }
            "i" | "M" => {}
            other => return Err(format!("event {i}: unknown ph {other:?}")),
        }
    }
    Ok(events.len())
}

// ---------------------------------------------------------------------------
// Prometheus-style metrics snapshot.
// ---------------------------------------------------------------------------

/// Metric kind, rendered into the `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic total.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Classic Prometheus histogram (`_bucket{le=...}`/`_sum`/`_count`);
    /// populated via [`MetricsSnapshot::push_histogram`].
    Histogram,
}

#[derive(Debug, Clone)]
struct Metric {
    name: String,
    help: String,
    kind: MetricKind,
    samples: Vec<(Vec<(String, String)>, f64)>,
    hists: Vec<(Vec<(String, String)>, crate::hist::Histogram)>,
}

/// An ordered set of named metrics rendering to the Prometheus text
/// exposition format. The container is schema-free; `gsnp-core` and the
/// CLI build call-side and decode-side snapshots that share one naming
/// scheme (`gsnp_*`).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    metrics: Vec<Metric>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample. Samples of the same metric `name` are grouped under
    /// one `# HELP`/`# TYPE` header in insertion order; `help`/`kind` are
    /// taken from the first insertion.
    pub fn push(
        &mut self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        if let Some(m) = self.metrics.iter_mut().find(|m| m.name == name) {
            m.samples.push((labels, value));
            return;
        }
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples: vec![(labels, value)],
            hists: Vec::new(),
        });
    }

    /// Add one histogram series. Series of the same metric `name` (one
    /// per label set — e.g. per stage or per kernel) group under a single
    /// `# HELP`/`# TYPE <name> histogram` header and render as the
    /// classic cumulative `_bucket{le=...}`/`_sum`/`_count` exposition.
    pub fn push_histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: &crate::hist::Histogram,
    ) {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        if let Some(m) = self.metrics.iter_mut().find(|m| m.name == name) {
            m.hists.push((labels, hist.clone()));
            return;
        }
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind: MetricKind::Histogram,
            samples: Vec::new(),
            hists: vec![(labels, hist.clone())],
        });
    }

    /// The histogram series of `name` with exactly the given labels.
    pub fn get_histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&crate::hist::Histogram> {
        let m = self.metrics.iter().find(|m| m.name == name)?;
        m.hists
            .iter()
            .find(|(ls, _)| {
                ls.len() == labels.len()
                    && ls
                        .iter()
                        .zip(labels)
                        .all(|((k, v), (lk, lv))| k == lk && v == lv)
            })
            .map(|(_, h)| h)
    }

    /// Fold another snapshot in: families with the same name merge their
    /// samples under this snapshot's header (HELP/TYPE stay emitted once
    /// per family), new families append in `other`'s order. This is how
    /// the live `/metrics` endpoint composes progress gauges with core
    /// and cohort series without duplicating headers.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for m in &other.metrics {
            if let Some(mine) = self.metrics.iter_mut().find(|x| x.name == m.name) {
                mine.samples.extend(m.samples.iter().cloned());
                mine.hists.extend(m.hists.iter().cloned());
            } else {
                self.metrics.push(m.clone());
            }
        }
    }

    /// Number of distinct metric names.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when no metric has been pushed.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The value of `name` with exactly the given labels, if present.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let m = self.metrics.iter().find(|m| m.name == name)?;
        m.samples
            .iter()
            .find(|(ls, _)| {
                ls.len() == labels.len()
                    && ls
                        .iter()
                        .zip(labels)
                        .all(|((k, v), (lk, lv))| k == lk && v == lv)
            })
            .map(|&(_, v)| v)
    }

    /// Render the Prometheus text exposition format.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
            let _ = writeln!(
                out,
                "# TYPE {} {}",
                m.name,
                match m.kind {
                    MetricKind::Counter => "counter",
                    MetricKind::Gauge => "gauge",
                    MetricKind::Histogram => "histogram",
                }
            );
            for (labels, value) in &m.samples {
                if labels.is_empty() {
                    let _ = writeln!(out, "{} {}", m.name, prom_f64(*value));
                } else {
                    let _ = writeln!(
                        out,
                        "{}{{{}}} {}",
                        m.name,
                        render_labels(labels),
                        prom_f64(*value)
                    );
                }
            }
            for (labels, hist) in &m.hists {
                let prefix = render_labels(labels);
                let sep = if prefix.is_empty() { "" } else { "," };
                for (upper, cumulative) in hist.cumulative_buckets() {
                    let _ = writeln!(
                        out,
                        "{}_bucket{{{prefix}{sep}le=\"{}\"}} {cumulative}",
                        m.name,
                        prom_f64(upper)
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{{{prefix}{sep}le=\"+Inf\"}} {}",
                    m.name,
                    hist.count()
                );
                if prefix.is_empty() {
                    let _ = writeln!(out, "{}_sum {}", m.name, prom_f64(hist.sum()));
                    let _ = writeln!(out, "{}_count {}", m.name, hist.count());
                } else {
                    let _ = writeln!(out, "{}_sum{{{prefix}}} {}", m.name, prom_f64(hist.sum()));
                    let _ = writeln!(out, "{}_count{{{prefix}}} {}", m.name, hist.count());
                }
            }
        }
        out
    }
}

fn render_labels(labels: &[(String, String)]) -> String {
    labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prom_label_escape(v)))
        .collect::<Vec<_>>()
        .join(",")
}

fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

fn prom_label_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder_with_one_of_each() -> (TraceRecorder, TrackId, TrackId) {
        let rec = TraceRecorder::new(64);
        let spans = rec.register_track("device0", "kernels", TrackKind::Spans);
        let ctr = rec.register_track("device0", "pool bytes", TrackKind::Counter);
        let k = rec.intern("likelihood_comp");
        rec.span(
            spans,
            k,
            1.0,
            0.5,
            SpanArgs::Kernel {
                grid: 8,
                compute: 0.2,
                memory: 0.3,
                transfer: 0.0,
                counters: HwCounters {
                    instructions: 100,
                    ..Default::default()
                },
            },
        );
        rec.instant(spans, rec.intern("steal"), 1.25);
        rec.counter(ctr, rec.intern("pool_outstanding_bytes"), 1.5, 4096.0);
        (rec, spans, ctr)
    }

    #[test]
    fn spans_round_trip_through_snapshot() {
        let (rec, spans, _) = recorder_with_one_of_each();
        let snap = rec.snapshot();
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.dropped, 0);
        assert!((snap.sum_span_durations(spans, "likelihood_comp") - 0.5).abs() < 1e-12);
        assert_eq!(snap.count_events(spans, "steal"), 1);
        let profiles = snap.kernel_profiles();
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].launches, 1);
        assert_eq!(profiles[0].counters.instructions, 100);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let rec = TraceRecorder::new(4);
        let t = rec.register_track("p", "t", TrackKind::Spans);
        let n = rec.intern("e");
        for i in 0..10 {
            rec.instant(t, n, f64::from(i));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.dropped, 6);
        // Oldest-first order: the survivors are events 6..10.
        let ts: Vec<f64> = snap.events.iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![6.0, 7.0, 8.0, 9.0]);
        assert!(snap.events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn interning_is_stable() {
        let rec = TraceRecorder::new(8);
        let a = rec.intern("counting");
        let b = rec.intern("counting");
        let c = rec.intern("other");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(rec.snapshot().names, vec!["counting", "other"]);
    }

    #[test]
    fn tracks_share_pid_per_process() {
        let rec = TraceRecorder::new(8);
        let a = rec.register_track("device0", "kernels", TrackKind::Spans);
        let b = rec.register_track("device0", "transfers", TrackKind::Spans);
        let c = rec.register_track("pipeline", "read_site", TrackKind::Spans);
        let snap = rec.snapshot();
        assert_eq!(snap.tracks[a.0 as usize].pid, snap.tracks[b.0 as usize].pid);
        assert_ne!(snap.tracks[a.0 as usize].pid, snap.tracks[c.0 as usize].pid);
        let tids: Vec<u32> = snap.tracks.iter().map(|t| t.tid).collect();
        assert_eq!(tids, vec![1, 2, 3]);
    }

    #[test]
    fn chrome_export_validates() {
        let (rec, _, _) = recorder_with_one_of_each();
        let json = rec.snapshot().to_chrome_json();
        let n = validate_chrome_json(&json).expect("export must validate");
        // 3 events + 2 thread metadata + 1 process metadata.
        assert_eq!(n, 6);
    }

    #[test]
    fn chrome_export_escapes_names() {
        let rec = TraceRecorder::new(8);
        let t = rec.register_track("p\"q\\r", "t\nu", TrackKind::Spans);
        rec.span(t, rec.intern("a\"b"), 0.0, 1.0, SpanArgs::None);
        let json = rec.snapshot().to_chrome_json();
        validate_chrome_json(&json).expect("escaped export must validate");
        let doc = parse_json(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"));
        assert_eq!(
            span.unwrap().get("name").and_then(Json::as_str),
            Some("a\"b")
        );
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_json("not json").is_err());
        assert!(validate_chrome_json("{}").is_err());
        assert!(validate_chrome_json("{\"traceEvents\":{}}").is_err());
        // A span without dur fails the schema.
        let bad = "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"name\":\"k\"}]}";
        assert!(validate_chrome_json(bad).unwrap_err().contains("dur"));
        // Unknown phase fails.
        let bad = "{\"traceEvents\":[{\"ph\":\"Z\",\"pid\":1,\"ts\":0,\"name\":\"k\"}]}";
        assert!(validate_chrome_json(bad).is_err());
    }

    #[test]
    fn json_parser_handles_nesting_and_escapes() {
        let v =
            parse_json(r#"{"a":[1,2.5,{"b":"x\ny","c":null,"d":[true,false]}],"e":-3e2}"#).unwrap();
        assert_eq!(v.get("e").and_then(Json::as_num), Some(-300.0));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_num(), Some(2.5));
        assert_eq!(arr[2].get("b").and_then(Json::as_str), Some("x\ny"));
        assert!(parse_json("[1,2,]").is_err());
        assert!(parse_json("[1 2]").is_err());
        assert!(parse_json("{\"k\" 1}").is_err());
    }

    #[test]
    fn metrics_render_prometheus_text() {
        let mut m = MetricsSnapshot::new();
        m.push(
            "gsnp_windows_total",
            "Windows processed",
            MetricKind::Counter,
            &[],
            5.0,
        );
        m.push(
            "gsnp_stage_busy_seconds",
            "Busy seconds per stage",
            MetricKind::Gauge,
            &[("stage", "read_site")],
            1.5,
        );
        m.push(
            "gsnp_stage_busy_seconds",
            "ignored duplicate help",
            MetricKind::Counter,
            &[("stage", "device")],
            2.5,
        );
        let text = m.render_text();
        assert!(text.contains("# HELP gsnp_windows_total Windows processed"));
        assert!(text.contains("# TYPE gsnp_windows_total counter"));
        assert!(text.contains("gsnp_windows_total 5"));
        assert!(text.contains("gsnp_stage_busy_seconds{stage=\"read_site\"} 1.5"));
        assert!(text.contains("gsnp_stage_busy_seconds{stage=\"device\"} 2.5"));
        // One header for the two-sample metric.
        assert_eq!(text.matches("# TYPE gsnp_stage_busy_seconds").count(), 1);
        assert_eq!(
            m.get("gsnp_stage_busy_seconds", &[("stage", "device")]),
            Some(2.5)
        );
        assert_eq!(m.get("gsnp_stage_busy_seconds", &[]), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn recording_is_allocation_free_after_warmup() {
        // Names interned and ring at capacity: the record path must not
        // grow anything (the property alloc_steady_state.rs pins for the
        // whole pipeline; checked structurally here).
        let rec = TraceRecorder::new(16);
        let t = rec.register_track("p", "t", TrackKind::Spans);
        let n = rec.intern("k");
        for i in 0..64 {
            rec.span(t, n, f64::from(i), 1.0, SpanArgs::None);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.events.len(), 16);
        assert_eq!(snap.dropped, 48);
    }
}
