//! Pluggable compute backends.
//!
//! Every GSNP kernel is written against [`KernelCtx`], a thin dispatch
//! layer over two execution engines:
//!
//! * [`SimBackend`] — the instrumented simulator. Kernels run through
//!   [`BlockCtx`] exactly as before: every access is tallied into the
//!   Table III hardware counters, the analytic cost model prices the
//!   launch, and the sanitizer/trace layers see everything. A bare
//!   [`Device`] *is* a sim backend (the trait is implemented on it
//!   directly), so existing call sites keep working unchanged.
//! * [`NativeBackend`] — the same kernels executed for real wall-clock
//!   speed: rayon-parallel outer loops over blocks, typed contiguous
//!   shared tiles the compiler can auto-vectorize, and none of the
//!   simulator's per-access bookkeeping. Results are bit-identical —
//!   both arms run the same kernel bodies over the same buffers with the
//!   same log tables — but the returned [`LaunchStats`] carry **zero**
//!   hardware counters and zero modelled time: those are sim-only
//!   observables, and the backend refuses traced devices outright (see
//!   [`BackendError`]) rather than silently reporting zeros. Sanitized
//!   devices are admitted per launch: a statically verified
//!   [`AccessContract`] stands in for the dynamic checks the native path
//!   bypasses (see [`ComputeBackend::launch_contracted`]), while
//!   uncontracted launches on such devices panic.
//! * [`BackendDispatcher`] — picks one of the two per launch. With
//!   [`BackendChoice::Auto`] the decision comes from the launch's grid
//!   size against a calibrated native-worthwhile threshold
//!   ([`AutoPolicy::native_min_blocks`]): grids wide enough to occupy the
//!   native executor's rayon block fan-out run native for real wall-clock
//!   speed, while sub-occupancy grids stay on the simulator, whose fixed
//!   per-launch setup is negligible at that size and which keeps the cost
//!   model fed. Sim-only features (trace always; sanitizer/conformance
//!   per the contract rules) override the size rule. Every decision is
//!   tallied on the [`crate::DeviceLedger`] ([`BackendTallies`]) and,
//!   when a trace is attached, recorded as a
//!   `dispatch_sim`/`dispatch_native` instant on the device's kernel
//!   track.
//!
//! The CUDA analogy: `SimBackend` is the driver-API path that launches
//! real kernels on the GPU (with profiler instrumentation enabled), while
//! `NativeBackend` is the host fallback a production caller dispatches to
//! when the workload is too small to be worth a PCIe round-trip.

use std::time::Instant;

use rayon::prelude::*;

use crate::buffer::{ConstBuffer, DeviceInt, DeviceScalar, GlobalBuffer};
use crate::config::DeviceConfig;
use crate::contract::AccessContract;
use crate::counters::LaunchStats;
use crate::ctx::{scratch_put, scratch_take, BlockCtx, SharedMem};
use crate::launch::Device;
use crate::pool::PooledBuffer;

/// Which compute backend executes kernel launches.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// The instrumented simulator: hardware counters, cost model,
    /// sanitizer, trace. The default — and the source of truth for every
    /// recorded Table III number.
    #[default]
    Sim,
    /// The native rayon executor: bit-identical outputs, real wall-clock
    /// speed, no per-access instrumentation.
    Native,
    /// Pick per launch from the workload size (see [`AutoPolicy`]).
    Auto,
}

impl BackendChoice {
    /// Parse a CLI-style name (`sim` | `native` | `auto`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sim" => Some(BackendChoice::Sim),
            "native" => Some(BackendChoice::Native),
            "auto" => Some(BackendChoice::Auto),
            _ => None,
        }
    }

    /// The CLI-style name (`sim` | `native` | `auto`).
    pub fn name(self) -> &'static str {
        match self {
            BackendChoice::Sim => "sim",
            BackendChoice::Native => "native",
            BackendChoice::Auto => "auto",
        }
    }
}

/// Why a backend refused a device configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendError {
    /// The device has a trace recorder attached. Kernel spans carry
    /// per-launch hardware counters and modelled compute/memory splits —
    /// sim-only observables the native executor cannot produce (and must
    /// not fake with zeros).
    TraceRequiresSim,
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::TraceRequiresSim => write!(
                f,
                "the native backend cannot run traced configs: kernel trace spans \
                 carry sim-only hardware counters and modelled times (use --backend \
                 sim or auto, or disable tracing)"
            ),
        }
    }
}

impl std::error::Error for BackendError {}

/// Refuse sim-only device features for native execution.
///
/// A *sanitized* device is no longer refused outright: contracted
/// launches on the native backend statically verify their
/// [`AccessContract`] before running and reconcile the sanitizer's
/// shadow state afterwards (see [`ComputeBackend::launch_contracted`]),
/// so only *uncontracted* native launches are rejected — at launch time,
/// per kernel — on such devices.
fn validate_native(dev: &Device) -> Result<(), BackendError> {
    if dev.trace_enabled() {
        return Err(BackendError::TraceRequiresSim);
    }
    Ok(())
}

/// Uncontracted native launches on a sanitized device would perform raw
/// buffer operations the shadow-state checkers never see, silently
/// disabling checking; a verified contract is the admission ticket.
fn require_contract_free(dev: &Device, name: &str) {
    assert!(
        !dev.sanitizer_enabled(),
        "native launch `{name}` on a sanitized device requires a verified \
         AccessContract: use launch_contracted so the static analyzer can \
         prove the kernel's footprints before the sanitizer is bypassed \
         (or run --backend sim)"
    );
}

/// Per-backend launch and dispatch-decision tallies, kept on the
/// [`crate::DeviceLedger`]. `sim + native` always equals the ledger's
/// `launches`; the `auto_*` fields count only launches routed by an
/// [`BackendChoice::Auto`] dispatcher (each such launch also lands in
/// `sim` or `native`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BackendTallies {
    /// Launches executed by the instrumented simulator.
    pub sim: u64,
    /// Launches executed by the native rayon executor.
    pub native: u64,
    /// Auto-dispatch decisions that picked the simulator.
    pub auto_sim: u64,
    /// Auto-dispatch decisions that picked the native executor.
    pub auto_native: u64,
}

impl BackendTallies {
    /// Accumulate another tally set into this one (group summation).
    pub fn sum(&mut self, other: &BackendTallies) {
        self.sim += other.sim;
        self.native += other.native;
        self.auto_sim += other.auto_sim;
        self.auto_native += other.auto_native;
    }
}

/// Native per-block execution state: the uninstrumented counterpart of
/// [`BlockCtx`]. Holds just the grid coordinates and the shared-memory
/// budget (still enforced, so a kernel that over-allocates fails the same
/// way on both backends).
pub struct NativeCtx<'a> {
    block_idx: usize,
    grid_dim: usize,
    cfg: &'a DeviceConfig,
    shared_used: usize,
}

impl<'a> NativeCtx<'a> {
    fn new(block_idx: usize, grid_dim: usize, cfg: &'a DeviceConfig) -> Self {
        NativeCtx {
            block_idx,
            grid_dim,
            cfg,
            shared_used: 0,
        }
    }

    fn shared_alloc<T: DeviceScalar>(&mut self, len: usize) -> NativeTile<T> {
        let bytes = len * T::BYTES as usize;
        let new_used = self.shared_used + bytes;
        assert!(
            new_used <= self.cfg.shared_mem_per_block,
            "shared memory overflow: {} + {} bytes > {} available on {}",
            self.shared_used,
            bytes,
            self.cfg.shared_mem_per_block,
            self.cfg.name
        );
        self.shared_used = new_used;
        // Same thread-local scratch pool the simulator tiles use: shared
        // memory is hardware, so per-block tile allocation must not turn
        // into per-block heap churn (at large grids the churn costs more
        // than the simulator's bookkeeping does).
        let mut data = scratch_take();
        data.clear();
        data.resize(len, 0);
        NativeTile {
            data,
            _marker: std::marker::PhantomData,
        }
    }

    fn shared_free_bytes(&mut self, bytes: usize) {
        self.shared_used = self.shared_used.saturating_sub(bytes);
    }
}

/// Execution context handed to a kernel body, one per block: either the
/// instrumented simulator's [`BlockCtx`] or a bare-metal [`NativeCtx`].
///
/// The method set mirrors [`BlockCtx`] exactly (same names, same
/// semantics), so kernels written against `KernelCtx` read identically to
/// their simulator-only ancestors; the sim arm delegates access-for-access
/// — counter sequences are byte-identical by construction — while the
/// native arm performs the raw buffer operation and nothing else.
pub enum KernelCtx<'a, 'b> {
    /// Instrumented simulator block.
    Sim(&'a mut BlockCtx<'b>),
    /// Native executor block.
    Native(&'a mut NativeCtx<'b>),
}

impl KernelCtx<'_, '_> {
    /// Index of this block within the launch grid.
    #[inline(always)]
    pub fn block_idx(&self) -> usize {
        match self {
            KernelCtx::Sim(c) => c.block_idx,
            KernelCtx::Native(c) => c.block_idx,
        }
    }

    /// Total number of blocks in the launch grid.
    #[inline(always)]
    pub fn grid_dim(&self) -> usize {
        match self {
            KernelCtx::Sim(c) => c.grid_dim,
            KernelCtx::Native(c) => c.grid_dim,
        }
    }

    /// Device configuration this block runs under.
    pub fn config(&self) -> &DeviceConfig {
        match self {
            KernelCtx::Sim(c) => c.config(),
            KernelCtx::Native(c) => c.cfg,
        }
    }

    /// Whether this block executes on the native backend. Kernels with a
    /// hand-tuned host implementation branch on this to run plain chunked
    /// loops over [`GlobalBuffer`] spans instead of per-access `KernelCtx`
    /// ops — the CPU analogue of a CUDA kernel with an optimized fallback
    /// path. The instrumented arm must stay the semantic reference: the
    /// native arm's output is required to be byte-identical.
    #[inline(always)]
    pub fn is_native(&self) -> bool {
        matches!(self, KernelCtx::Native(_))
    }

    /// Record `n` scalar arithmetic/control instructions (sim-only tally;
    /// a native block does no accounting).
    #[inline(always)]
    pub fn add_inst(&mut self, n: u64) {
        if let KernelCtx::Sim(c) = self {
            c.add_inst(n);
        }
    }

    /// Coalesced global load.
    #[inline(always)]
    pub fn ld_co<T: DeviceScalar>(&mut self, buf: &GlobalBuffer<T>, i: usize) -> T {
        match self {
            KernelCtx::Sim(c) => c.ld_co(buf, i),
            KernelCtx::Native(_) => buf.get(i),
        }
    }

    /// Random (non-coalesced) global load.
    #[inline(always)]
    pub fn ld_rand<T: DeviceScalar>(&mut self, buf: &GlobalBuffer<T>, i: usize) -> T {
        match self {
            KernelCtx::Sim(c) => c.ld_rand(buf, i),
            KernelCtx::Native(_) => buf.get(i),
        }
    }

    /// Batched random global load of `out.len()` consecutive elements.
    #[inline]
    pub fn ld_rand_span<T: DeviceScalar>(
        &mut self,
        buf: &GlobalBuffer<T>,
        start: usize,
        out: &mut [T],
    ) {
        match self {
            KernelCtx::Sim(c) => c.ld_rand_span(buf, start, out),
            KernelCtx::Native(_) => buf.read_span_plain(start, out),
        }
    }

    /// Batched random global read-modify-write:
    /// `buf[start + n] += terms[n]` for each `n`.
    #[inline]
    pub fn add_rand_span(&mut self, buf: &GlobalBuffer<f64>, start: usize, terms: &[f64]) {
        match self {
            KernelCtx::Sim(c) => c.add_rand_span(buf, start, terms),
            KernelCtx::Native(_) => buf.add_assign_span_plain(start, terms),
        }
    }

    /// Coalesced global store.
    #[inline(always)]
    pub fn st_co<T: DeviceScalar>(&mut self, buf: &GlobalBuffer<T>, i: usize, v: T) {
        match self {
            KernelCtx::Sim(c) => c.st_co(buf, i, v),
            KernelCtx::Native(_) => buf.set(i, v),
        }
    }

    /// Random (non-coalesced) global store.
    #[inline(always)]
    pub fn st_rand<T: DeviceScalar>(&mut self, buf: &GlobalBuffer<T>, i: usize, v: T) {
        match self {
            KernelCtx::Sim(c) => c.st_rand(buf, i, v),
            KernelCtx::Native(_) => buf.set(i, v),
        }
    }

    /// Atomic add on global memory; returns the previous value.
    #[inline(always)]
    pub fn atomic_add<T: DeviceInt>(&mut self, buf: &GlobalBuffer<T>, i: usize, v: T) -> T {
        match self {
            KernelCtx::Sim(c) => c.atomic_add(buf, i, v),
            KernelCtx::Native(_) => T::fetch_add(buf.cell(i), v),
        }
    }

    /// Constant-memory read.
    #[inline(always)]
    pub fn ld_const<T: Copy + Send + Sync + 'static>(
        &mut self,
        buf: &ConstBuffer<T>,
        i: usize,
    ) -> T {
        match self {
            KernelCtx::Sim(c) => c.ld_const(buf, i),
            KernelCtx::Native(_) => buf.get(i),
        }
    }

    /// Allocate `len` elements of per-block shared memory.
    ///
    /// # Panics
    /// Panics (on both backends, with the same message) if the block's
    /// cumulative shared allocation exceeds `shared_mem_per_block`.
    pub fn shared_alloc<T: DeviceScalar>(&mut self, len: usize) -> SharedTile<T> {
        match self {
            KernelCtx::Sim(c) => SharedTile::Sim(c.shared_alloc(len)),
            KernelCtx::Native(c) => SharedTile::Native(c.shared_alloc(len)),
        }
    }

    /// Release a shared allocation, returning its bytes to the block
    /// budget.
    pub fn shared_free<T: DeviceScalar>(&mut self, tile: SharedTile<T>) {
        match (self, tile) {
            (KernelCtx::Sim(c), SharedTile::Sim(m)) => c.shared_free(m),
            (KernelCtx::Native(c), SharedTile::Native(v)) => {
                c.shared_free_bytes(v.data.len() * T::BYTES as usize);
            }
            _ => panic!("shared tile freed on a different backend than allocated it"),
        }
    }
}

/// Per-block on-chip shared memory, backend-polymorphic: the simulator's
/// counted [`SharedMem`] or the uncounted [`NativeTile`]. Method set
/// mirrors [`SharedMem`].
pub enum SharedTile<T: DeviceScalar> {
    /// Simulator tile (counted, sanitizer-shadowed, scratch-pooled).
    Sim(SharedMem<T>),
    /// Native tile: contiguous storage, no bookkeeping.
    Native(NativeTile<T>),
}

/// The native executor's shared-memory tile: raw `u64` lanes from the
/// same thread-local scratch pool [`SharedMem`] recycles through, with no
/// per-access counting. Raw lanes share the [`GlobalBuffer`] cell
/// encoding, so stage-in/flush are straight lane copies with no
/// decode/encode on the way through.
pub struct NativeTile<T: DeviceScalar> {
    data: Vec<u64>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: DeviceScalar> Drop for NativeTile<T> {
    fn drop(&mut self) {
        scratch_put(std::mem::take(&mut self.data));
    }
}

/// Internal: unreachable unless a tile crosses backends mid-kernel.
macro_rules! tile_mismatch {
    () => {
        panic!("shared tile used with a different backend than allocated it")
    };
}

impl<T: DeviceScalar> SharedTile<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            SharedTile::Sim(m) => m.len(),
            SharedTile::Native(v) => v.data.len(),
        }
    }

    /// Whether the allocation is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shared-memory load.
    #[inline(always)]
    pub fn read(&self, ctx: &mut KernelCtx<'_, '_>, i: usize) -> T {
        match (self, ctx) {
            (SharedTile::Sim(m), KernelCtx::Sim(b)) => m.read(b, i),
            (SharedTile::Native(v), KernelCtx::Native(_)) => T::from_raw(v.data[i]),
            _ => tile_mismatch!(),
        }
    }

    /// Shared-memory store.
    #[inline(always)]
    pub fn write(&mut self, ctx: &mut KernelCtx<'_, '_>, i: usize, v: T) {
        match (self, ctx) {
            (SharedTile::Sim(m), KernelCtx::Sim(b)) => m.write(b, i, v),
            (SharedTile::Native(t), KernelCtx::Native(_)) => t.data[i] = v.to_raw(),
            _ => tile_mismatch!(),
        }
    }

    /// Zero the allocation.
    pub fn fill_default(&mut self, ctx: &mut KernelCtx<'_, '_>) {
        match (self, ctx) {
            (SharedTile::Sim(m), KernelCtx::Sim(b)) => m.fill_default(b),
            (SharedTile::Native(t), KernelCtx::Native(_)) => t.data.fill(T::default().to_raw()),
            _ => tile_mismatch!(),
        }
    }

    /// Batched stage-in: copy `len` consecutive global elements starting
    /// at `src` into the tile starting at `dst`.
    #[inline]
    pub fn stage_co(
        &mut self,
        ctx: &mut KernelCtx<'_, '_>,
        buf: &GlobalBuffer<T>,
        src: usize,
        dst: usize,
        len: usize,
    ) {
        match (self, ctx) {
            (SharedTile::Sim(m), KernelCtx::Sim(b)) => m.stage_co(b, buf, src, dst, len),
            (SharedTile::Native(t), KernelCtx::Native(_)) => {
                buf.copy_lanes_into(src, &mut t.data[dst..dst + len]);
            }
            _ => tile_mismatch!(),
        }
    }

    /// Batched flush: write `len` tile elements starting at `src` back to
    /// consecutive global addresses starting at `dst`.
    #[inline]
    pub fn flush_co(
        &self,
        ctx: &mut KernelCtx<'_, '_>,
        buf: &GlobalBuffer<T>,
        src: usize,
        dst: usize,
        len: usize,
    ) {
        match (self, ctx) {
            (SharedTile::Sim(m), KernelCtx::Sim(b)) => m.flush_co(b, buf, src, dst, len),
            (SharedTile::Native(t), KernelCtx::Native(_)) => {
                buf.copy_lanes_from(dst, &t.data[src..src + len]);
            }
            _ => tile_mismatch!(),
        }
    }

    /// Batched fill of `start..end` with one value.
    #[inline]
    pub fn fill_span(&mut self, ctx: &mut KernelCtx<'_, '_>, start: usize, end: usize, v: T) {
        match (self, ctx) {
            (SharedTile::Sim(m), KernelCtx::Sim(b)) => m.fill_span(b, start, end, v),
            (SharedTile::Native(t), KernelCtx::Native(_)) => t.data[start..end].fill(v.to_raw()),
            _ => tile_mismatch!(),
        }
    }
}

impl SharedTile<u32> {
    /// Bitonic compare-exchange: load both lanes, swap if out of order.
    #[inline]
    pub fn compare_exchange(&mut self, ctx: &mut KernelCtx<'_, '_>, lo: usize, hi: usize) {
        match (self, ctx) {
            (SharedTile::Sim(m), KernelCtx::Sim(b)) => m.compare_exchange(b, lo, hi),
            (SharedTile::Native(t), KernelCtx::Native(_)) => {
                // u32 lanes are zero-extended, so raw lane order is key
                // order.
                if t.data[lo] > t.data[hi] {
                    t.data.swap(lo, hi);
                }
            }
            _ => tile_mismatch!(),
        }
    }

    /// Replay a caller-supplied compare-exchange *sorting network* over
    /// `self[0..m]`.
    ///
    /// `network` must enumerate the pair sequence of a sorting network for
    /// `m` elements (e.g. the bitonic network): applying compare-exchange
    /// at every enumerated pair must leave `self[0..m]` sorted ascending.
    /// The simulator replays the network pair by pair — one instruction
    /// plus one fused compare-exchange per pair, exactly as if the kernel
    /// body issued them itself — so Table III counters are unchanged. The
    /// native executor instead sorts the raw lanes directly: for `u32`
    /// keys every comparison sort yields the same bytes as the network,
    /// and skipping the O(n·log²n) pair replay is most of the native
    /// batch-sort win.
    pub fn sort_network<F>(&mut self, ctx: &mut KernelCtx<'_, '_>, m: usize, network: F)
    where
        F: Fn(&mut dyn FnMut(usize, usize)),
    {
        match (self, ctx) {
            (SharedTile::Sim(t), KernelCtx::Sim(b)) => network(&mut |lo, hi| {
                b.add_inst(1);
                t.compare_exchange(b, lo, hi);
            }),
            (SharedTile::Native(t), KernelCtx::Native(_)) => t.data[..m].sort_unstable(),
            _ => tile_mismatch!(),
        }
    }
}

impl SharedTile<f64> {
    /// Batched accumulate: `self[start + n] += terms[n]` for each `n`.
    #[inline]
    pub fn add_span(&mut self, ctx: &mut KernelCtx<'_, '_>, start: usize, terms: &[f64]) {
        match (self, ctx) {
            (SharedTile::Sim(m), KernelCtx::Sim(b)) => m.add_span(b, start, terms),
            (SharedTile::Native(t), KernelCtx::Native(_)) => {
                for (lane, &v) in t.data[start..start + terms.len()].iter_mut().zip(terms) {
                    *lane = (f64::from_bits(*lane) + v).to_bits();
                }
            }
            _ => tile_mismatch!(),
        }
    }
}

/// A kernel execution engine over one [`Device`]'s memory.
///
/// Buffers, transfers, and pools stay on the device — both backends read
/// and write the same [`GlobalBuffer`] cells, which is what makes their
/// outputs bit-identical — so the trait only abstracts *kernel
/// execution*, and forwards the allocation/transfer surface to
/// [`ComputeBackend::device`].
pub trait ComputeBackend: Sync {
    /// The device whose memory this backend executes against.
    fn device(&self) -> &Device;

    /// Launch `grid_dim` blocks of the kernel; blocks may run in parallel.
    fn launch<F>(&self, name: &str, grid_dim: usize, kernel: F) -> LaunchStats
    where
        F: Fn(&mut KernelCtx<'_, '_>) + Sync;

    /// Launch a kernel sequentially (block `0..grid_dim` in order, one
    /// host thread); the closure may mutate captured host state.
    fn launch_seq<F>(&self, name: &str, grid_dim: usize, kernel: F) -> LaunchStats
    where
        F: FnMut(&mut KernelCtx<'_, '_>);

    /// Launch with a declared [`AccessContract`]. The builder closure runs
    /// only when the device wants the declaration (static checking,
    /// conformance, or a sanitized native launch); the static analyzer
    /// proves or refutes it before any block executes. The default
    /// implementation routes through the simulator; the native backend
    /// overrides it to execute uninstrumented *after* the proof.
    ///
    /// # Panics
    /// Panics before executing any block when the contract is refuted.
    fn launch_contracted<C, F>(
        &self,
        name: &str,
        grid_dim: usize,
        contract: C,
        kernel: F,
    ) -> LaunchStats
    where
        C: FnOnce() -> AccessContract,
        F: Fn(&mut KernelCtx<'_, '_>) + Sync,
    {
        sim_launch_contracted(self.device(), name, grid_dim, contract, kernel)
    }

    /// Sequential counterpart of [`ComputeBackend::launch_contracted`].
    ///
    /// # Panics
    /// Panics before executing any block when the contract is refuted.
    fn launch_contracted_seq<C, F>(
        &self,
        name: &str,
        grid_dim: usize,
        contract: C,
        kernel: F,
    ) -> LaunchStats
    where
        C: FnOnce() -> AccessContract,
        F: FnMut(&mut KernelCtx<'_, '_>),
    {
        sim_launch_contracted_seq(self.device(), name, grid_dim, contract, kernel)
    }

    /// Device configuration (forwarded).
    fn config(&self) -> &DeviceConfig {
        self.device().config()
    }

    /// Allocate a zeroed global buffer (forwarded).
    fn alloc<T: DeviceScalar>(&self, len: usize) -> GlobalBuffer<T> {
        self.device().alloc(len)
    }

    /// Allocate a zeroed pooled buffer (forwarded).
    fn alloc_pooled<T: DeviceScalar>(&self, len: usize) -> PooledBuffer<T> {
        self.device().alloc_pooled(len)
    }

    /// Allocate a pooled buffer without zeroing recycled contents
    /// (forwarded; the caller must write every element before reading).
    fn alloc_pooled_dirty<T: DeviceScalar>(&self, len: usize) -> PooledBuffer<T> {
        self.device().alloc_pooled_dirty(len)
    }

    /// Upload host data into a new global buffer (forwarded).
    fn upload<T: DeviceScalar>(&self, data: &[T]) -> GlobalBuffer<T> {
        self.device().upload(data)
    }

    /// Upload host data into a pooled buffer (forwarded).
    fn upload_pooled<T: DeviceScalar>(&self, data: &[T]) -> PooledBuffer<T> {
        self.device().upload_pooled(data)
    }

    /// Upload into constant memory (forwarded; capacity-checked).
    fn upload_const<T: Copy + Send + Sync + 'static>(&self, data: &[T]) -> ConstBuffer<T> {
        self.device().upload_const(data)
    }

    /// Download a buffer to the host (forwarded).
    fn download<T: DeviceScalar>(&self, buf: &GlobalBuffer<T>) -> Vec<T> {
        self.device().download(buf)
    }

    /// Account an explicit host→device transfer (forwarded).
    fn charge_h2d(&self, stats: &mut LaunchStats, bytes: u64) {
        self.device().charge_h2d(stats, bytes);
    }

    /// Account an explicit device→host transfer (forwarded).
    fn charge_d2h(&self, stats: &mut LaunchStats, bytes: u64) {
        self.device().charge_d2h(stats, bytes);
    }
}

/// Run a launch on the instrumented simulator.
fn sim_launch<F>(dev: &Device, name: &str, grid_dim: usize, kernel: F) -> LaunchStats
where
    F: Fn(&mut KernelCtx<'_, '_>) + Sync,
{
    dev.launch(name, grid_dim, |bctx| kernel(&mut KernelCtx::Sim(bctx)))
}

/// Run a sequential launch on the instrumented simulator.
fn sim_launch_seq<F>(dev: &Device, name: &str, grid_dim: usize, mut kernel: F) -> LaunchStats
where
    F: FnMut(&mut KernelCtx<'_, '_>),
{
    dev.launch_seq(name, grid_dim, |bctx| kernel(&mut KernelCtx::Sim(bctx)))
}

/// Below this grid size a native launch runs its blocks inline: rayon's
/// task overhead would dwarf a couple of blocks' work.
const NATIVE_PAR_MIN_GRID: usize = 4;

/// Execute the blocks of a native launch (no admission checks). Returns
/// wall-clock only — counters and modelled time are sim-only observables
/// and stay zero.
fn native_run<F>(dev: &Device, name: &str, grid_dim: usize, kernel: F) -> LaunchStats
where
    F: Fn(&mut KernelCtx<'_, '_>) + Sync,
{
    let cfg = dev.config();
    let start = Instant::now();
    let run_block = |b: usize| {
        let mut nctx = NativeCtx::new(b, grid_dim, cfg);
        kernel(&mut KernelCtx::Native(&mut nctx));
    };
    if grid_dim < NATIVE_PAR_MIN_GRID {
        (0..grid_dim).for_each(run_block);
    } else {
        (0..grid_dim).into_par_iter().for_each(run_block);
    }
    let stats = LaunchStats {
        wall_time: start.elapsed().as_secs_f64(),
        grid_dim,
        ..Default::default()
    };
    dev.record_native_launch(name, &stats);
    stats
}

/// Sequential counterpart of [`native_run`].
fn native_run_seq<F>(dev: &Device, name: &str, grid_dim: usize, mut kernel: F) -> LaunchStats
where
    F: FnMut(&mut KernelCtx<'_, '_>),
{
    let cfg = dev.config();
    let start = Instant::now();
    for b in 0..grid_dim {
        let mut nctx = NativeCtx::new(b, grid_dim, cfg);
        kernel(&mut KernelCtx::Native(&mut nctx));
    }
    let stats = LaunchStats {
        wall_time: start.elapsed().as_secs_f64(),
        grid_dim,
        ..Default::default()
    };
    dev.record_native_launch(name, &stats);
    stats
}

/// Run an uncontracted launch on the native executor: rayon over blocks,
/// no instrumentation.
///
/// # Panics
/// Panics when the device is sanitized (see [`require_contract_free`]).
fn native_launch<F>(dev: &Device, name: &str, grid_dim: usize, kernel: F) -> LaunchStats
where
    F: Fn(&mut KernelCtx<'_, '_>) + Sync,
{
    // Zero-grid launches are device-wide no-ops on every backend.
    if grid_dim == 0 {
        return LaunchStats::default();
    }
    require_contract_free(dev, name);
    dev.tally_assumed(name);
    native_run(dev, name, grid_dim, kernel)
}

/// Run an uncontracted sequential launch on the native executor.
///
/// # Panics
/// Panics when the device is sanitized (see [`require_contract_free`]).
fn native_launch_seq<F>(dev: &Device, name: &str, grid_dim: usize, kernel: F) -> LaunchStats
where
    F: FnMut(&mut KernelCtx<'_, '_>),
{
    if grid_dim == 0 {
        return LaunchStats::default();
    }
    require_contract_free(dev, name);
    dev.tally_assumed(name);
    native_run_seq(dev, name, grid_dim, kernel)
}

/// Run a contracted launch on the native executor: the static analyzer
/// verifies the declared footprints *before* any block runs (refutations
/// panic with structured diagnostics), the uninstrumented blocks then
/// execute on the strength of the proof, and on sanitized devices the
/// contract's declared write spans are replayed into the shadow state so
/// later sim-side checking stays sound.
fn native_launch_contracted<C, F>(
    dev: &Device,
    name: &str,
    grid_dim: usize,
    contract: C,
    kernel: F,
) -> LaunchStats
where
    C: FnOnce() -> AccessContract,
    F: Fn(&mut KernelCtx<'_, '_>) + Sync,
{
    if grid_dim == 0 {
        return LaunchStats::default();
    }
    if dev.sanitizer_enabled() || dev.contracts_enabled() {
        let built = contract();
        dev.enforce_contract(name, grid_dim, &built);
        let stats = native_run(dev, name, grid_dim, kernel);
        built.define_writes(grid_dim);
        return stats;
    }
    native_run(dev, name, grid_dim, kernel)
}

/// Sequential counterpart of [`native_launch_contracted`].
fn native_launch_contracted_seq<C, F>(
    dev: &Device,
    name: &str,
    grid_dim: usize,
    contract: C,
    kernel: F,
) -> LaunchStats
where
    C: FnOnce() -> AccessContract,
    F: FnMut(&mut KernelCtx<'_, '_>),
{
    if grid_dim == 0 {
        return LaunchStats::default();
    }
    if dev.sanitizer_enabled() || dev.contracts_enabled() {
        let built = contract();
        dev.enforce_contract(name, grid_dim, &built);
        let stats = native_run_seq(dev, name, grid_dim, kernel);
        built.define_writes(grid_dim);
        return stats;
    }
    native_run_seq(dev, name, grid_dim, kernel)
}

/// Run a contracted launch on the instrumented simulator (delegates to
/// [`Device::launch_contracted`]).
fn sim_launch_contracted<C, F>(
    dev: &Device,
    name: &str,
    grid_dim: usize,
    contract: C,
    kernel: F,
) -> LaunchStats
where
    C: FnOnce() -> AccessContract,
    F: Fn(&mut KernelCtx<'_, '_>) + Sync,
{
    dev.launch_contracted(name, grid_dim, contract, |bctx| {
        kernel(&mut KernelCtx::Sim(bctx));
    })
}

/// Run a contracted sequential launch on the instrumented simulator.
fn sim_launch_contracted_seq<C, F>(
    dev: &Device,
    name: &str,
    grid_dim: usize,
    contract: C,
    mut kernel: F,
) -> LaunchStats
where
    C: FnOnce() -> AccessContract,
    F: FnMut(&mut KernelCtx<'_, '_>),
{
    dev.launch_contracted_seq(name, grid_dim, contract, |bctx| {
        kernel(&mut KernelCtx::Sim(bctx));
    })
}

/// A bare [`Device`] is the sim backend: existing call sites that pass
/// `&Device` into backend-generic code get simulator semantics (and
/// byte-identical counters) with no changes.
impl ComputeBackend for Device {
    fn device(&self) -> &Device {
        self
    }

    fn launch<F>(&self, name: &str, grid_dim: usize, kernel: F) -> LaunchStats
    where
        F: Fn(&mut KernelCtx<'_, '_>) + Sync,
    {
        sim_launch(self, name, grid_dim, kernel)
    }

    fn launch_seq<F>(&self, name: &str, grid_dim: usize, kernel: F) -> LaunchStats
    where
        F: FnMut(&mut KernelCtx<'_, '_>),
    {
        sim_launch_seq(self, name, grid_dim, kernel)
    }
}

/// Named wrapper for the instrumented simulator backend (equivalent to
/// launching on the wrapped [`Device`] directly).
pub struct SimBackend<'d> {
    dev: &'d Device,
}

impl<'d> SimBackend<'d> {
    /// Wrap a device. Never refuses: every device feature is sim-capable.
    pub fn new(dev: &'d Device) -> Self {
        SimBackend { dev }
    }
}

impl ComputeBackend for SimBackend<'_> {
    fn device(&self) -> &Device {
        self.dev
    }

    fn launch<F>(&self, name: &str, grid_dim: usize, kernel: F) -> LaunchStats
    where
        F: Fn(&mut KernelCtx<'_, '_>) + Sync,
    {
        sim_launch(self.dev, name, grid_dim, kernel)
    }

    fn launch_seq<F>(&self, name: &str, grid_dim: usize, kernel: F) -> LaunchStats
    where
        F: FnMut(&mut KernelCtx<'_, '_>),
    {
        sim_launch_seq(self.dev, name, grid_dim, kernel)
    }
}

/// The native rayon executor. Construction refuses traced devices (trace
/// spans are sim-only observables — see [`BackendError`]). Sanitized
/// devices are accepted: contracted launches verify their declared
/// footprints statically before running uninstrumented, while
/// *uncontracted* launches on such a device panic at launch time.
pub struct NativeBackend<'d> {
    dev: &'d Device,
}

impl<'d> NativeBackend<'d> {
    /// Wrap a device for native execution.
    ///
    /// # Errors
    /// Refuses when the device has a trace recorder attached: trace spans
    /// carry counters only the simulator's instrumented access paths can
    /// produce.
    pub fn new(dev: &'d Device) -> Result<Self, BackendError> {
        validate_native(dev)?;
        Ok(NativeBackend { dev })
    }
}

impl ComputeBackend for NativeBackend<'_> {
    fn device(&self) -> &Device {
        self.dev
    }

    fn launch<F>(&self, name: &str, grid_dim: usize, kernel: F) -> LaunchStats
    where
        F: Fn(&mut KernelCtx<'_, '_>) + Sync,
    {
        native_launch(self.dev, name, grid_dim, kernel)
    }

    fn launch_seq<F>(&self, name: &str, grid_dim: usize, kernel: F) -> LaunchStats
    where
        F: FnMut(&mut KernelCtx<'_, '_>),
    {
        native_launch_seq(self.dev, name, grid_dim, kernel)
    }

    fn launch_contracted<C, F>(
        &self,
        name: &str,
        grid_dim: usize,
        contract: C,
        kernel: F,
    ) -> LaunchStats
    where
        C: FnOnce() -> AccessContract,
        F: Fn(&mut KernelCtx<'_, '_>) + Sync,
    {
        native_launch_contracted(self.dev, name, grid_dim, contract, kernel)
    }

    fn launch_contracted_seq<C, F>(
        &self,
        name: &str,
        grid_dim: usize,
        contract: C,
        kernel: F,
    ) -> LaunchStats
    where
        C: FnOnce() -> AccessContract,
        F: FnMut(&mut KernelCtx<'_, '_>),
    {
        native_launch_contracted_seq(self.dev, name, grid_dim, contract, kernel)
    }
}

/// Workload-size policy for [`BackendChoice::Auto`].
///
/// The grid size is the dispatcher's workload proxy: GSNP kernels put a
/// fixed tile of work in each block, so blocks ∝ sites. The simulator
/// prices and instruments every access, so its wall-clock cost grows with
/// the work in the launch; the native path amortizes its rayon fan-out
/// setup across blocks instead. Per-kernel `KernelTally.wall_seconds`
/// measured on the launch-batching workload shows native cheaper than sim
/// for every paper kernel once a grid spans a handful of blocks, and the
/// sim's fixed setup negligible below that — so wide grids run native and
/// sub-occupancy grids stay on the simulator. (An earlier revision had
/// this backwards — routing big grids to sim — which pinned `Auto` at
/// 1.09x vs native's 2.36x with 394 of 455 launches on the slow arm; see
/// `BENCH_native_backend.json`.)
#[derive(Debug, Clone, Copy)]
pub struct AutoPolicy {
    /// Minimum grid size (in blocks) routed to the native executor;
    /// narrower grids run on the simulator. Calibrated from measured
    /// per-kernel wall seconds; configurable as `--auto-threshold` on the
    /// CLI.
    pub native_min_blocks: usize,
}

impl Default for AutoPolicy {
    fn default() -> Self {
        AutoPolicy {
            native_min_blocks: 8,
        }
    }
}

/// Per-launch backend dispatch over one device.
///
/// [`BackendChoice::Sim`] and [`BackendChoice::Native`] route every
/// launch to the corresponding backend; [`BackendChoice::Auto`] decides
/// per launch from the grid size (see [`AutoPolicy`]), falling back to
/// the simulator when the device carries features the native path cannot
/// honor: tracing always, the sanitizer for uncontracted launches (no
/// proof to stand in for the checks), and conformance mode even for
/// contracted ones (observed-⊆-declared needs instrumented accesses).
/// Decisions are tallied on the
/// ledger and, under a trace, recorded as instants on the kernel track.
pub struct BackendDispatcher<'d> {
    dev: &'d Device,
    choice: BackendChoice,
    policy: AutoPolicy,
}

impl<'d> BackendDispatcher<'d> {
    /// Build a dispatcher with the default [`AutoPolicy`].
    ///
    /// # Errors
    /// Refuses [`BackendChoice::Native`] on a traced device (see
    /// [`NativeBackend::new`]); `Sim` and `Auto` accept any device.
    pub fn new(dev: &'d Device, choice: BackendChoice) -> Result<Self, BackendError> {
        Self::with_policy(dev, choice, AutoPolicy::default())
    }

    /// Build a dispatcher with an explicit [`AutoPolicy`].
    ///
    /// # Errors
    /// Same refusal rules as [`BackendDispatcher::new`].
    pub fn with_policy(
        dev: &'d Device,
        choice: BackendChoice,
        policy: AutoPolicy,
    ) -> Result<Self, BackendError> {
        if choice == BackendChoice::Native {
            validate_native(dev)?;
        }
        Ok(BackendDispatcher {
            dev,
            choice,
            policy,
        })
    }

    /// The configured backend choice.
    pub fn choice(&self) -> BackendChoice {
        self.choice
    }

    /// Auto decision for one *uncontracted* launch: `true` ⇒ simulator.
    /// Sanitized devices force sim here because without a contract the
    /// native path has no proof to run on; sub-occupancy grids stay on
    /// the simulator too (see [`AutoPolicy`]).
    fn pick_sim(&self, grid_dim: usize) -> bool {
        self.dev.sanitizer_enabled()
            || self.dev.trace_enabled()
            || grid_dim < self.policy.native_min_blocks
    }

    /// Auto decision for one *contracted* launch: `true` ⇒ simulator.
    /// A verified contract substitutes for the sanitizer's instrumented
    /// checking, so plain sanitized devices may go native; conformance
    /// mode must observe real accesses and stays on the simulator, as do
    /// traced devices (sim-only observables) and sub-occupancy grids.
    fn pick_sim_contracted(&self, grid_dim: usize) -> bool {
        self.dev.trace_enabled()
            || self.dev.conformance_enabled()
            || grid_dim < self.policy.native_min_blocks
    }
}

impl ComputeBackend for BackendDispatcher<'_> {
    fn device(&self) -> &Device {
        self.dev
    }

    fn launch<F>(&self, name: &str, grid_dim: usize, kernel: F) -> LaunchStats
    where
        F: Fn(&mut KernelCtx<'_, '_>) + Sync,
    {
        match self.choice {
            BackendChoice::Sim => sim_launch(self.dev, name, grid_dim, kernel),
            BackendChoice::Native => native_launch(self.dev, name, grid_dim, kernel),
            BackendChoice::Auto => {
                if grid_dim == 0 {
                    return LaunchStats::default();
                }
                let to_sim = self.pick_sim(grid_dim);
                self.dev.record_auto_decision(to_sim);
                if to_sim {
                    sim_launch(self.dev, name, grid_dim, kernel)
                } else {
                    native_launch(self.dev, name, grid_dim, kernel)
                }
            }
        }
    }

    fn launch_seq<F>(&self, name: &str, grid_dim: usize, kernel: F) -> LaunchStats
    where
        F: FnMut(&mut KernelCtx<'_, '_>),
    {
        match self.choice {
            BackendChoice::Sim => sim_launch_seq(self.dev, name, grid_dim, kernel),
            BackendChoice::Native => native_launch_seq(self.dev, name, grid_dim, kernel),
            BackendChoice::Auto => {
                if grid_dim == 0 {
                    return LaunchStats::default();
                }
                let to_sim = self.pick_sim(grid_dim);
                self.dev.record_auto_decision(to_sim);
                if to_sim {
                    sim_launch_seq(self.dev, name, grid_dim, kernel)
                } else {
                    native_launch_seq(self.dev, name, grid_dim, kernel)
                }
            }
        }
    }

    fn launch_contracted<C, F>(
        &self,
        name: &str,
        grid_dim: usize,
        contract: C,
        kernel: F,
    ) -> LaunchStats
    where
        C: FnOnce() -> AccessContract,
        F: Fn(&mut KernelCtx<'_, '_>) + Sync,
    {
        match self.choice {
            BackendChoice::Sim => sim_launch_contracted(self.dev, name, grid_dim, contract, kernel),
            BackendChoice::Native => {
                native_launch_contracted(self.dev, name, grid_dim, contract, kernel)
            }
            BackendChoice::Auto => {
                if grid_dim == 0 {
                    return LaunchStats::default();
                }
                let to_sim = self.pick_sim_contracted(grid_dim);
                self.dev.record_auto_decision(to_sim);
                if to_sim {
                    sim_launch_contracted(self.dev, name, grid_dim, contract, kernel)
                } else {
                    native_launch_contracted(self.dev, name, grid_dim, contract, kernel)
                }
            }
        }
    }

    fn launch_contracted_seq<C, F>(
        &self,
        name: &str,
        grid_dim: usize,
        contract: C,
        kernel: F,
    ) -> LaunchStats
    where
        C: FnOnce() -> AccessContract,
        F: FnMut(&mut KernelCtx<'_, '_>),
    {
        match self.choice {
            BackendChoice::Sim => {
                sim_launch_contracted_seq(self.dev, name, grid_dim, contract, kernel)
            }
            BackendChoice::Native => {
                native_launch_contracted_seq(self.dev, name, grid_dim, contract, kernel)
            }
            BackendChoice::Auto => {
                if grid_dim == 0 {
                    return LaunchStats::default();
                }
                let to_sim = self.pick_sim_contracted(grid_dim);
                self.dev.record_auto_decision(to_sim);
                if to_sim {
                    sim_launch_contracted_seq(self.dev, name, grid_dim, contract, kernel)
                } else {
                    native_launch_contracted_seq(self.dev, name, grid_dim, contract, kernel)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sanitizer::SanitizerConfig;
    use crate::trace::TraceRecorder;
    use std::sync::Arc;

    /// A representative kernel exercising every ctx/tile operation the
    /// GSNP kernels use; runs identically on both backends.
    fn workload<B: ComputeBackend>(backend: &B, n: usize) -> (Vec<u32>, Vec<f64>, u64) {
        let dev = backend.device();
        let input = dev.upload(
            &(0..n as u32)
                .map(|i| i.wrapping_mul(2654435761))
                .collect::<Vec<_>>(),
        );
        let sorted: GlobalBuffer<u32> = dev.alloc(n);
        let sums: GlobalBuffer<f64> = dev.alloc(n.div_ceil(64));
        let hits: GlobalBuffer<u64> = dev.alloc(1);
        let table = dev.upload_const(&(0..256).map(|i| (i as f64).ln_1p()).collect::<Vec<_>>());
        backend.launch("backend_workload", n.div_ceil(64), |ctx| {
            let base = ctx.block_idx() * 64;
            let len = 64.min(n - base);
            let mut tile = ctx.shared_alloc::<u32>(64);
            tile.stage_co(ctx, &input, base, 0, len);
            tile.fill_span(ctx, len, 64, u32::MAX);
            for w in [1usize, 2, 4, 8, 16, 32] {
                for lo in 0..64 - w {
                    tile.compare_exchange(ctx, lo, lo + w);
                }
            }
            tile.flush_co(ctx, &sorted, 0, base, len);
            let mut acc = ctx.shared_alloc::<f64>(1);
            acc.fill_default(ctx);
            for t in 0..len {
                let v = tile.read(ctx, t);
                let term = table_val(ctx, &table, v);
                acc.add_span(ctx, 0, &[term]);
                if v % 3 == 0 {
                    ctx.atomic_add(&hits, 0, 1u64);
                }
                ctx.add_inst(2);
            }
            let total = acc.read(ctx, 0);
            ctx.st_co(&sums, ctx.block_idx(), total);
            ctx.shared_free(acc);
            ctx.shared_free(tile);
        });
        let mut grand = 0f64;
        backend.launch_seq("backend_combine", 1, |ctx| {
            for b in 0..n.div_ceil(64) {
                grand += ctx.ld_co(&sums, b);
            }
        });
        let mut out_sums = sums.to_vec();
        out_sums.push(grand);
        (sorted.to_vec(), out_sums, hits.get(0))
    }

    fn table_val(ctx: &mut KernelCtx<'_, '_>, table: &ConstBuffer<f64>, v: u32) -> f64 {
        ctx.ld_const(table, (v % 256) as usize)
    }

    #[test]
    fn native_output_is_bit_identical_to_sim() {
        let sim_dev = Device::m2050();
        let nat_dev = Device::m2050();
        let native = NativeBackend::new(&nat_dev).expect("plain device");
        let (a_sorted, a_sums, a_hits) = workload(&sim_dev, 1000);
        let (b_sorted, b_sums, b_hits) = workload(&native, 1000);
        assert_eq!(a_sorted, b_sorted);
        assert_eq!(a_hits, b_hits);
        // f64 bit-identity, not approximate equality.
        let a_bits: Vec<u64> = a_sums.iter().map(|v| v.to_bits()).collect();
        let b_bits: Vec<u64> = b_sums.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a_bits, b_bits);
    }

    #[test]
    fn native_stats_carry_no_sim_observables() {
        let dev = Device::m2050();
        let native = NativeBackend::new(&dev).unwrap();
        let buf: GlobalBuffer<u32> = dev.alloc(64);
        let stats = native.launch("mark", 8, |ctx| {
            ctx.st_co(&buf, ctx.block_idx(), 1);
        });
        assert_eq!(stats.counters, crate::HwCounters::default());
        assert_eq!(stats.sim_time, 0.0);
        assert_eq!(stats.grid_dim, 8);
        let led = dev.ledger();
        assert_eq!(led.launches, 1);
        assert_eq!(led.backend.native, 1);
        assert_eq!(led.backend.sim, 0);
        assert_eq!(led.sim_time, 0.0);
    }

    #[test]
    fn sim_launches_tally_on_the_ledger() {
        let dev = Device::m2050();
        let buf: GlobalBuffer<u32> = dev.alloc(4);
        dev.launch("a", 2, |ctx| ctx.st_co(&buf, ctx.block_idx, 1));
        dev.launch_seq("b", 1, |ctx| ctx.st_co(&buf, 2, ctx.block_idx as u32));
        let led = dev.ledger();
        assert_eq!(led.backend.sim, 2);
        assert_eq!(led.backend.native, 0);
        assert_eq!(led.backend.sim + led.backend.native, led.launches);
    }

    #[test]
    fn native_accepts_sanitized_devices_for_contracted_launches() {
        let dev = Device::m2050().with_sanitizer(SanitizerConfig::all());
        let native = NativeBackend::new(&dev).expect("sanitized devices are accepted");
        assert!(BackendDispatcher::new(&dev, BackendChoice::Native).is_ok());
        assert!(BackendDispatcher::new(&dev, BackendChoice::Sim).is_ok());
        assert!(BackendDispatcher::new(&dev, BackendChoice::Auto).is_ok());
        // A contracted launch verifies statically, runs native, and
        // reconciles the shadow state: the buffer starts poisoned (dirty
        // pooled allocation), the native kernel fills it unobserved, and
        // the declared write footprint clears the poison — so the sim
        // side may then read the span without uninit-read findings.
        let buf = dev.alloc_pooled_dirty::<u32>(64);
        native.launch_contracted(
            "fill",
            2,
            || AccessContract::default().write(&buf, crate::contract::Footprint::tiled(32, 64)),
            |ctx| {
                let base = ctx.block_idx() * 32;
                for t in 0..32 {
                    ctx.st_co(&buf, base + t, (base + t) as u32);
                }
            },
        );
        dev.launch("readback", 2, |ctx| {
            let base = ctx.block_idx * 32;
            for t in 0..32 {
                let v = ctx.ld_co(&buf, base + t);
                assert_eq!(v, (base + t) as u32);
            }
        });
        assert!(dev.sanitizer_report().unwrap().counts.is_clean());
        assert_eq!(dev.ledger().backend.native, 1);
    }

    #[test]
    #[should_panic(expected = "requires a verified AccessContract")]
    fn native_uncontracted_launch_panics_on_sanitized_devices() {
        let dev = Device::m2050().with_sanitizer(SanitizerConfig::all());
        let native = NativeBackend::new(&dev).unwrap();
        let buf: GlobalBuffer<u32> = dev.alloc(4);
        native.launch("plain", 1, |ctx| ctx.st_co(&buf, 0, 1));
    }

    #[test]
    #[should_panic(expected = "contract refuted for kernel `oob`")]
    fn native_contracted_launch_refutes_before_any_block_runs() {
        let dev = Device::m2050().with_sanitizer(SanitizerConfig::all());
        let native = NativeBackend::new(&dev).unwrap();
        let buf: GlobalBuffer<u32> = dev.alloc(16);
        // Declares 32 elements/block over a 16-element buffer: refuted
        // statically; the kernel body must never execute.
        native.launch_contracted(
            "oob",
            2,
            || AccessContract::default().write(&buf, crate::contract::Footprint::tiled(32, 64)),
            |_ctx| panic!("kernel body must not run"),
        );
    }

    #[test]
    fn auto_contracted_routes_native_under_plain_sanitizer() {
        // Plain sanitizer (no conformance): a wide contracted launch may
        // go native on the strength of the static proof.
        let dev = Device::m2050().with_sanitizer(SanitizerConfig::all());
        let disp = BackendDispatcher::new(&dev, BackendChoice::Auto).unwrap();
        let buf: GlobalBuffer<u32> = dev.alloc(32);
        disp.launch_contracted(
            "wide",
            8,
            || AccessContract::default().write(&buf, crate::contract::Footprint::tiled(4, 32)),
            |ctx| {
                let base = ctx.block_idx() * 4;
                for t in 0..4 {
                    ctx.st_co(&buf, base + t, 1);
                }
            },
        );
        assert_eq!(dev.ledger().backend.auto_native, 1);
        assert_eq!(dev.ledger().backend.native, 1);

        // A sub-occupancy contracted launch stays on the simulator even
        // though the proof would admit it natively.
        disp.launch_contracted(
            "narrow",
            1,
            || AccessContract::default().write(&buf, crate::contract::Footprint::tiled(4, 32)),
            |ctx| ctx.st_co(&buf, ctx.block_idx(), 1),
        );
        assert_eq!(dev.ledger().backend.auto_sim, 1);

        // Conformance mode needs instrumented accesses: forced to sim
        // regardless of grid width.
        let dev = Device::m2050().with_sanitizer(SanitizerConfig::all().with_conformance());
        let disp = BackendDispatcher::new(&dev, BackendChoice::Auto).unwrap();
        let buf: GlobalBuffer<u32> = dev.alloc(32);
        disp.launch_contracted(
            "wide",
            8,
            || AccessContract::default().write(&buf, crate::contract::Footprint::tiled(4, 32)),
            |ctx| {
                let base = ctx.block_idx() * 4;
                for t in 0..4 {
                    ctx.st_co(&buf, base + t, 1);
                }
            },
        );
        assert_eq!(dev.ledger().backend.auto_sim, 1);
        assert_eq!(dev.ledger().backend.native, 0);
    }

    #[test]
    fn native_refuses_traced_devices() {
        let rec = Arc::new(TraceRecorder::new(64));
        let dev = Device::m2050().with_trace(&rec, 0);
        let err = NativeBackend::new(&dev).err().expect("must refuse");
        assert_eq!(err, BackendError::TraceRequiresSim);
        assert!(err.to_string().contains("trace"));
        assert!(BackendDispatcher::new(&dev, BackendChoice::Native).is_err());
        assert!(BackendDispatcher::new(&dev, BackendChoice::Auto).is_ok());
    }

    #[test]
    fn auto_routes_by_grid_size_and_tallies_decisions() {
        let dev = Device::m2050();
        let disp = BackendDispatcher::with_policy(
            &dev,
            BackendChoice::Auto,
            AutoPolicy {
                native_min_blocks: 8,
            },
        )
        .unwrap();
        let buf: GlobalBuffer<u32> = dev.alloc(64);
        disp.launch("small", 2, |ctx| ctx.st_co(&buf, ctx.block_idx(), 1));
        disp.launch("big", 32, |ctx| ctx.st_co(&buf, ctx.block_idx() % 64, 1));
        disp.launch("empty", 0, |_ctx| panic!("must not run"));
        let led = dev.ledger();
        assert_eq!(led.backend.auto_native, 1);
        assert_eq!(led.backend.auto_sim, 1);
        assert_eq!(led.backend.native, 1);
        assert_eq!(led.backend.sim, 1);
        assert_eq!(led.launches, 2, "zero-grid launch records nothing");
        // Per-kernel attribution distinguishes the backends: wide grids
        // occupy the native fan-out, narrow grids stay on the simulator.
        let tallies = dev.kernel_launches();
        let find = |n: &str| tallies.iter().find(|t| t.name == n).unwrap();
        assert_eq!(find("small").native_launches, 0);
        assert_eq!(find("big").native_launches, 1);
    }

    #[test]
    fn auto_threshold_is_configurable() {
        // Raising the threshold pushes the same launch back to sim;
        // dropping it to 1 sends everything native.
        let dev = Device::m2050();
        let disp = BackendDispatcher::with_policy(
            &dev,
            BackendChoice::Auto,
            AutoPolicy {
                native_min_blocks: 64,
            },
        )
        .unwrap();
        let buf: GlobalBuffer<u32> = dev.alloc(64);
        disp.launch("mid", 32, |ctx| ctx.st_co(&buf, ctx.block_idx(), 1));
        assert_eq!(dev.ledger().backend.auto_sim, 1);

        let dev = Device::m2050();
        let disp = BackendDispatcher::with_policy(
            &dev,
            BackendChoice::Auto,
            AutoPolicy {
                native_min_blocks: 1,
            },
        )
        .unwrap();
        let buf: GlobalBuffer<u32> = dev.alloc(64);
        disp.launch("one", 1, |ctx| ctx.st_co(&buf, ctx.block_idx(), 1));
        assert_eq!(dev.ledger().backend.auto_native, 1);
    }

    #[test]
    fn auto_forces_sim_under_sanitizer_and_trace() {
        // Grids wide enough for the native path (≥ the default threshold)
        // still go to the simulator when it owns required observables.
        let dev = Device::m2050().with_sanitizer(SanitizerConfig::all());
        let disp = BackendDispatcher::new(&dev, BackendChoice::Auto).unwrap();
        let buf: GlobalBuffer<u32> = dev.alloc(8);
        disp.launch("tiny", 8, |ctx| ctx.st_co(&buf, ctx.block_idx(), 1));
        assert_eq!(dev.ledger().backend.auto_sim, 1);
        assert_eq!(dev.ledger().backend.native, 0);

        let rec = Arc::new(TraceRecorder::new(64));
        let dev = Device::m2050().with_trace(&rec, 0);
        let disp = BackendDispatcher::new(&dev, BackendChoice::Auto).unwrap();
        let buf: GlobalBuffer<u32> = dev.alloc(8);
        disp.launch("tiny", 8, |ctx| ctx.st_co(&buf, ctx.block_idx(), 1));
        assert_eq!(dev.ledger().backend.auto_sim, 1);
        assert_eq!(dev.ledger().backend.native, 0);
        // The decision itself lands on the trace as an instant.
        let snap = rec.snapshot();
        let kernels = crate::TrackId(
            snap.tracks
                .iter()
                .position(|t| t.thread == "kernels")
                .unwrap() as u32,
        );
        assert_eq!(snap.count_events(kernels, "dispatch_sim"), 1);
    }

    #[test]
    fn native_zero_grid_is_a_noop() {
        let dev = Device::m2050();
        let native = NativeBackend::new(&dev).unwrap();
        let stats = native.launch("empty", 0, |_ctx| panic!("must not run"));
        assert_eq!(stats.grid_dim, 0);
        let seq = native.launch_seq("empty_seq", 0, |_ctx| panic!("must not run"));
        assert_eq!(seq.grid_dim, 0);
        assert_eq!(dev.ledger().launches, 0);
        assert!(dev.kernel_launches().is_empty());
    }

    #[test]
    fn native_launch_seq_runs_blocks_in_order_and_mutates_host_state() {
        let dev = Device::m2050();
        let native = NativeBackend::new(&dev).unwrap();
        let mut order = Vec::new();
        native.launch_seq("seq", 10, |ctx| order.push(ctx.block_idx()));
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "shared memory overflow")]
    fn native_shared_overflow_panics_like_sim() {
        let dev = Device::m2050();
        let native = NativeBackend::new(&dev).unwrap();
        native.launch("overflow", 1, |ctx| {
            // 48 KB limit on the M2050; 6145 f64 lanes exceed it.
            let t = ctx.shared_alloc::<f64>(6145);
            ctx.shared_free(t);
        });
    }

    #[test]
    fn backend_choice_parses_cli_names() {
        assert_eq!(BackendChoice::parse("sim"), Some(BackendChoice::Sim));
        assert_eq!(BackendChoice::parse("native"), Some(BackendChoice::Native));
        assert_eq!(BackendChoice::parse("auto"), Some(BackendChoice::Auto));
        assert_eq!(BackendChoice::parse("gpu"), None);
        assert_eq!(BackendChoice::Auto.name(), "auto");
        assert_eq!(BackendChoice::default(), BackendChoice::Sim);
    }
}
