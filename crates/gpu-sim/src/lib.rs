//! # gpu-sim — a SIMT execution-model simulator
//!
//! The GSNP paper (Lu et al., ICPP 2011) runs its kernels on an NVIDIA Tesla
//! M2050. This crate is the substitution for that hardware: it executes
//! *kernels* — closures launched over a grid of thread blocks — with real
//! thread parallelism on the host CPU, while simulating the aspects of the
//! GPU that the paper's claims depend on:
//!
//! * **Memory spaces.** [`GlobalBuffer`] (device global memory),
//!   [`SharedMem`] (per-block on-chip scratch, capacity-checked against the
//!   device configuration), and [`ConstBuffer`] (cached constant memory).
//! * **Hardware counters.** Every access performed through a [`BlockCtx`]
//!   is tallied: instructions, global loads/stores split into *coalesced*
//!   and *random* transactions, shared-memory loads/stores, and host↔device
//!   transfer bytes. These reproduce the CUDA Visual Profiler counters of
//!   the paper's Table III from first principles.
//! * **An analytic cost model.** [`CostModel`] converts a counter set into
//!   an estimated kernel time for a configured device (the M2050 preset uses
//!   the bandwidth figures measured in the paper: 82 GB/s coalesced,
//!   3.2 GB/s random).
//!
//! Blocks are distributed over a work-stealing thread pool (rayon); threads
//! *within* a block are stepped by the kernel body itself, which mirrors how
//! the GSNP kernels are written (one logical thread per DNA site, or one
//! block per small array for the sorting network).
//!
//! ```
//! use gpu_sim::{Device, DeviceConfig, GlobalBuffer};
//!
//! let dev = Device::new(DeviceConfig::tesla_m2050());
//! let input: GlobalBuffer<u32> = dev.upload(&(0..1024u32).collect::<Vec<_>>());
//! let output: GlobalBuffer<u32> = dev.alloc(1024);
//!
//! // One block per 256-element tile, one logical thread per element.
//! let stats = dev.launch("double", 4, |ctx| {
//!     let base = ctx.block_idx * 256;
//!     for tid in 0..256 {
//!         let v = ctx.ld_co(&input, base + tid);
//!         ctx.st_co(&output, base + tid, v * 2);
//!         ctx.add_inst(1);
//!     }
//! });
//! assert_eq!(output.to_vec()[10], 20);
//! assert_eq!(stats.counters.g_load_coalesced, 1024);
//! ```

pub mod backend;
pub mod buffer;
pub mod config;
pub mod contract;
pub mod cost;
pub mod counters;
pub mod ctx;
pub mod group;
pub mod hist;
pub mod launch;
pub mod pool;
pub mod primitives;
pub mod sanitizer;
pub mod trace;

pub use backend::{
    AutoPolicy, BackendChoice, BackendDispatcher, BackendError, BackendTallies, ComputeBackend,
    KernelCtx, NativeBackend, NativeCtx, SharedTile, SimBackend,
};
pub use buffer::{ConstBuffer, DeviceInt, DeviceScalar, GlobalBuffer};
pub use config::DeviceConfig;
pub use contract::{
    verify_contract, AccessContract, AccessMode, AffineExpr, BlockInterval, ContractReport,
    ContractTally, ContractViolation, Footprint, SharedDecl, Verdict, ViolationKind,
};
pub use cost::CostModel;
pub use counters::{HwCounters, LaunchStats};
pub use ctx::{BlockCtx, SharedMem};
pub use group::{DeviceGroup, GroupLedger};
pub use hist::{Histogram, HistogramDigest, SharedHistogram};
pub use launch::{BlockSchedule, Device, DeviceLedger, KernelTally};
pub use pool::{BufferPool, PoolStats, PooledBuffer};
pub use sanitizer::{
    check_block_order_invariance, CheckKind, DeterminismReport, Diagnostic, SanitizerConfig,
    SanitizerCounts, SanitizerReport,
};
pub use trace::{
    parse_json, validate_chrome_json, EventKind, Json, KernelProfile, MetricKind, MetricsSnapshot,
    NameId, SpanArgs, TraceEvent, TraceRecorder, TraceSnapshot, TrackId, TrackKind,
};
