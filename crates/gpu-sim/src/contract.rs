//! Static kernel access contracts: prove bounds- and race-safety
//! **before** a single lane executes.
//!
//! Every paper kernel declares an [`AccessContract`] alongside its body —
//! per-buffer read/write footprints as affine ranges over the block index
//! plus shared-memory obligations — and the launch layer evaluates the
//! contract *symbolically* at launch time: interval arithmetic proves
//! every footprint within buffer bounds, and a pairwise inter-block
//! overlap sweep proves write/write and write/read race-freedom. This is
//! the GPUVerify-style static leg of the correctness story; the dynamic
//! sanitizer's conformance mode (observed ⊆ declared) keeps the
//! declarations honest so the proof cannot rot.
//!
//! A verified contract is what lets the uninstrumented
//! [`crate::NativeBackend`] run on analysis configurations: instead of
//! refusing sanitized devices outright it demands the static proof, runs
//! at full speed, and marks the declared write footprints as defined so
//! the dynamic checker's shadow state stays coherent across backends.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::{DeviceScalar, GlobalBuffer};
use crate::sanitizer::{AccessKind, BufferShadow};

/// Cap on retained [`ContractViolation`]s per device (mirrors the
/// sanitizer's diagnostic cap).
const MAX_VIOLATIONS: usize = 64;

/// An affine index expression over the block index:
/// `base + per_block * block_idx`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffineExpr {
    /// Constant term.
    pub base: i64,
    /// Coefficient of the block index.
    pub per_block: i64,
}

impl AffineExpr {
    /// A new affine expression `base + per_block * block_idx`.
    pub const fn new(base: i64, per_block: i64) -> Self {
        AffineExpr { base, per_block }
    }

    /// Evaluate at a concrete block index.
    pub fn eval(&self, block: usize) -> i64 {
        self.base + self.per_block * block as i64
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.per_block, self.base) {
            (0, b) => write!(f, "{b}"),
            (p, 0) => write!(f, "block*{p}"),
            (p, b) if b < 0 => write!(f, "block*{p} - {}", -b),
            (p, b) => write!(f, "block*{p} + {b}"),
        }
    }
}

/// One explicitly-materialized per-block interval (half-open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInterval {
    /// Block index the interval belongs to.
    pub block: usize,
    /// Inclusive start element.
    pub lo: usize,
    /// Exclusive end element.
    pub hi: usize,
}

/// The set of buffer elements a kernel touches, as a function of the
/// block index. All intervals are half-open element ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Footprint {
    /// The kernel never touches the buffer (vacuously safe).
    Empty,
    /// Block `b` touches `[max(0, lo(b)), min(hi(b), cap))` — the clamp
    /// models both `i == 0` guards (negative `lo`) and `.min(n)` tail
    /// clamps (`cap`).
    Affine {
        /// Lower bound expression (clamped below at 0).
        lo: AffineExpr,
        /// Upper bound expression (exclusive).
        hi: AffineExpr,
        /// Optional exclusive clamp applied to `hi` (typically the
        /// element count the grid was sized for).
        cap: Option<usize>,
    },
    /// Explicit per-block intervals — for data-dependent footprints the
    /// call site materializes from launch parameters (e.g. scatter
    /// targets derived from an exclusive scan's block boundaries). A
    /// block may own several entries.
    Intervals(Vec<BlockInterval>),
    /// Every block may touch the whole buffer (read-only tables; a
    /// declared data race if combined with writes across blocks).
    All,
}

impl Footprint {
    /// The canonical tiling: block `b` covers `[b*per_block,
    /// min((b+1)*per_block, n))`.
    pub fn tiled(per_block: usize, n: usize) -> Self {
        let p = per_block as i64;
        Footprint::Affine {
            lo: AffineExpr::new(0, p),
            hi: AffineExpr::new(p, p),
            cap: Some(n),
        }
    }

    /// A tiling whose lower edge reaches one element into the previous
    /// tile (flag kernels comparing `x[i-1]`, guarded at `i == 0`).
    pub fn tiled_with_prev(per_block: usize, n: usize) -> Self {
        let p = per_block as i64;
        Footprint::Affine {
            lo: AffineExpr::new(-1, p),
            hi: AffineExpr::new(p, p),
            cap: Some(n),
        }
    }

    /// A tiling whose upper edge reaches one element into the next tile
    /// (length kernels reading `x[i + 1]`, guarded at the last element).
    pub fn tiled_with_next(per_block: usize, n: usize) -> Self {
        let p = per_block as i64;
        Footprint::Affine {
            lo: AffineExpr::new(0, p),
            hi: AffineExpr::new(p + 1, p),
            cap: Some(n),
        }
    }

    /// One element per block: block `b` touches `[b, b+1)`.
    pub fn elem_per_block() -> Self {
        Footprint::Affine {
            lo: AffineExpr::new(0, 1),
            hi: AffineExpr::new(1, 1),
            cap: None,
        }
    }

    /// The same fixed span for every block (single-block or sequential
    /// launches).
    pub fn span(lo: usize, hi: usize) -> Self {
        Footprint::Affine {
            lo: AffineExpr::new(lo as i64, 0),
            hi: AffineExpr::new(hi as i64, 0),
            cap: None,
        }
    }

    /// Explicit per-block intervals.
    pub fn per_block(intervals: Vec<BlockInterval>) -> Self {
        Footprint::Intervals(intervals)
    }

    /// Visit every non-empty effective interval of `block` (buffer-length
    /// clamping is the verifier's job; only the declared clamps apply
    /// here). `len` is the buffer length, used solely by [`Footprint::All`].
    fn for_each_interval(&self, block: usize, len: usize, mut f: impl FnMut(usize, usize)) {
        match self {
            Footprint::Empty => {}
            Footprint::Affine { lo, hi, cap } => {
                let lo_e = lo.eval(block).max(0) as usize;
                let mut hi_e = hi.eval(block).max(0) as usize;
                if let Some(c) = cap {
                    hi_e = hi_e.min(*c);
                }
                if hi_e > lo_e {
                    f(lo_e, hi_e);
                }
            }
            Footprint::Intervals(v) => {
                for iv in v.iter().filter(|iv| iv.block == block && iv.hi > iv.lo) {
                    f(iv.lo, iv.hi);
                }
            }
            Footprint::All => {
                if len > 0 {
                    f(0, len);
                }
            }
        }
    }

    /// Whether the access `[start, end)` of `block` lies inside one of
    /// the declared intervals.
    fn covers(&self, block: usize, len: usize, start: usize, end: usize) -> bool {
        if matches!(self, Footprint::All) {
            return end <= len;
        }
        let mut hit = false;
        self.for_each_interval(block, len, |lo, hi| {
            if start >= lo && end <= hi {
                hit = true;
            }
        });
        hit
    }

    /// Hull of the footprint over the whole grid, or `None` for
    /// [`Footprint::All`] / empty footprints (exempt from the over-wide
    /// conformance check).
    fn hull(&self, grid: usize, len: usize) -> Option<(usize, usize)> {
        if matches!(self, Footprint::All) {
            return None;
        }
        let mut hull: Option<(usize, usize)> = None;
        for b in 0..grid {
            self.for_each_interval(b, len, |lo, hi| {
                hull = Some(match hull {
                    None => (lo, hi),
                    Some((l, h)) => (l.min(lo), h.max(hi)),
                });
            });
        }
        hull
    }
}

impl fmt::Display for Footprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Footprint::Empty => write!(f, "∅"),
            Footprint::Affine { lo, hi, cap } => {
                write!(f, "[{lo}, {hi})")?;
                if let Some(c) = cap {
                    write!(f, " cap {c}")?;
                }
                Ok(())
            }
            Footprint::Intervals(v) => write!(f, "{} per-block interval(s)", v.len()),
            Footprint::All => write!(f, "[0, len)"),
        }
    }
}

/// How the kernel accesses a declared buffer footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Loads only.
    Read,
    /// Stores only.
    Write,
    /// Loads and stores.
    ReadWrite,
    /// Atomic read-modify-write (commutes; atomics never race with each
    /// other).
    Atomic,
}

impl AccessMode {
    fn name(self) -> &'static str {
        match self {
            AccessMode::Read => "read",
            AccessMode::Write => "write",
            AccessMode::ReadWrite => "read-write",
            AccessMode::Atomic => "atomic",
        }
    }

    /// Whether an observed dynamic access of `kind` is licensed by this
    /// declared mode.
    fn covers_kind(self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => matches!(self, AccessMode::Read | AccessMode::ReadWrite),
            AccessKind::Write => matches!(self, AccessMode::Write | AccessMode::ReadWrite),
            AccessKind::Atomic => matches!(self, AccessMode::Atomic),
        }
    }
}

/// One buffer's declared footprint within an [`AccessContract`].
#[derive(Clone)]
pub struct BufferContract {
    pub(crate) uid: u64,
    /// Human-readable buffer label (shadow label under the sanitizer,
    /// else a synthesized `buf#id[len]`).
    pub label: String,
    /// Buffer length in elements at declaration time.
    pub len: usize,
    /// Declared access mode.
    pub mode: AccessMode,
    /// Declared footprint.
    pub footprint: Footprint,
    pub(crate) shadow: Option<Arc<BufferShadow>>,
}

impl fmt::Debug for BufferContract {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BufferContract")
            .field("label", &self.label)
            .field("len", &self.len)
            .field("mode", &self.mode)
            .field("footprint", &self.footprint)
            .finish()
    }
}

/// One shared-memory allocation obligation: the kernel allocates at most
/// `bytes` of shared memory per block and (unless seeded with a defect)
/// frees it before the block retires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedDecl {
    /// Worst-case live bytes per block.
    pub bytes: usize,
    /// Whether the kernel frees the allocation before block retirement.
    pub freed: bool,
}

/// A kernel's complete declared access pattern, registered alongside the
/// kernel body at the launch call site.
#[derive(Debug, Clone, Default)]
pub struct AccessContract {
    /// Per-buffer declarations (a buffer may appear more than once, e.g.
    /// a coalesced-read footprint plus a scatter-write footprint).
    pub buffers: Vec<BufferContract>,
    /// Shared-memory obligations (worst case over blocks).
    pub shared: Vec<SharedDecl>,
}

impl AccessContract {
    /// An empty contract (a kernel touching no global buffers).
    pub fn new() -> Self {
        Self::default()
    }

    fn access<T: DeviceScalar>(
        mut self,
        buf: &GlobalBuffer<T>,
        mode: AccessMode,
        footprint: Footprint,
    ) -> Self {
        let label = match buf.shadow() {
            Some(sh) => sh.label().to_string(),
            None => format!("buf#{}[{}]", buf.uid(), buf.len()),
        };
        self.buffers.push(BufferContract {
            uid: buf.uid(),
            label,
            len: buf.len(),
            mode,
            footprint,
            shadow: buf.shadow().cloned(),
        });
        self
    }

    /// Declare a read footprint.
    pub fn read<T: DeviceScalar>(self, buf: &GlobalBuffer<T>, fp: Footprint) -> Self {
        self.access(buf, AccessMode::Read, fp)
    }

    /// Declare a write footprint.
    pub fn write<T: DeviceScalar>(self, buf: &GlobalBuffer<T>, fp: Footprint) -> Self {
        self.access(buf, AccessMode::Write, fp)
    }

    /// Declare a read-write footprint.
    pub fn read_write<T: DeviceScalar>(self, buf: &GlobalBuffer<T>, fp: Footprint) -> Self {
        self.access(buf, AccessMode::ReadWrite, fp)
    }

    /// Declare an atomic footprint.
    pub fn atomic<T: DeviceScalar>(self, buf: &GlobalBuffer<T>, fp: Footprint) -> Self {
        self.access(buf, AccessMode::Atomic, fp)
    }

    /// Declare a shared-memory allocation of `elems` elements of `T` per
    /// block (worst case), freed before block retirement.
    pub fn shared<T: DeviceScalar>(mut self, elems: usize) -> Self {
        self.shared.push(SharedDecl {
            bytes: elems * T::BYTES as usize,
            freed: true,
        });
        self
    }

    /// Declare a shared-memory allocation the kernel *leaks* (never
    /// frees) — always refuted; exists so seeded-defect kernels can state
    /// their defect honestly and be rejected before execution.
    pub fn shared_leaked<T: DeviceScalar>(mut self, elems: usize) -> Self {
        self.shared.push(SharedDecl {
            bytes: elems * T::BYTES as usize,
            freed: false,
        });
        self
    }

    /// Whether `[start, start+n)` of `block` on buffer `uid` is licensed
    /// for a dynamic access of `kind` (the sanitizer's conformance
    /// check). Accesses to undeclared buffers are escapes.
    pub(crate) fn covers(
        &self,
        uid: u64,
        block: usize,
        start: usize,
        n: usize,
        kind: AccessKind,
    ) -> bool {
        self.buffers.iter().any(|bc| {
            bc.uid == uid
                && bc.mode.covers_kind(kind)
                && bc.footprint.covers(block, bc.len, start, start + n)
        })
    }

    /// Declared hull of buffer `uid` over the grid, or `None` when the
    /// buffer is undeclared or any of its declarations is
    /// [`Footprint::All`] (exempt from the over-wide check).
    pub(crate) fn declared_hull(&self, uid: u64, grid: usize) -> Option<(usize, usize)> {
        let mut hull: Option<(usize, usize)> = None;
        for bc in self.buffers.iter().filter(|bc| bc.uid == uid) {
            let (lo, hi) = bc.footprint.hull(grid, bc.len)?;
            hull = Some(match hull {
                None => (lo, hi),
                Some((l, h)) => (l.min(lo), h.max(hi)),
            });
        }
        hull
    }

    /// The label of buffer `uid`, if declared.
    pub(crate) fn label_of(&self, uid: u64) -> Option<&str> {
        self.buffers
            .iter()
            .find(|bc| bc.uid == uid)
            .map(|bc| bc.label.as_str())
    }

    /// Mark every declared write footprint as defined in the dynamic
    /// checker's shadow state — called after a *verified* native launch,
    /// whose plain lanes bypass per-access instrumentation. Defines the
    /// exact per-block intervals (never the hull), so initcheck keeps its
    /// precision on the slots the contract did not license.
    pub(crate) fn define_writes(&self, grid: usize) {
        for bc in &self.buffers {
            if !matches!(
                bc.mode,
                AccessMode::Write | AccessMode::ReadWrite | AccessMode::Atomic
            ) {
                continue;
            }
            let Some(shadow) = &bc.shadow else { continue };
            for block in 0..grid {
                bc.footprint.for_each_interval(block, bc.len, |lo, hi| {
                    shadow.define_span(lo, (hi - lo).min(bc.len.saturating_sub(lo)));
                });
            }
        }
    }
}

/// The violation classes the static analyzer can refute a contract on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A declared footprint reaches past the end of its buffer.
    OutOfBounds,
    /// Two blocks' declared footprints overlap with at least one writer.
    InterBlockOverlap,
    /// Declared shared-memory obligations exceed the device's per-block
    /// capacity.
    SharedOverflow,
    /// A declared shared-memory allocation is never freed.
    SharedLeak,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ViolationKind::OutOfBounds => "out-of-bounds footprint",
            ViolationKind::InterBlockOverlap => "inter-block overlap",
            ViolationKind::SharedOverflow => "shared-memory overflow",
            ViolationKind::SharedLeak => "shared-memory leak",
        })
    }
}

/// A structured refutation: which kernel, which buffer, the offending
/// index expression, and (for overlaps) a concrete witness block pair.
#[derive(Debug, Clone)]
pub struct ContractViolation {
    /// Kernel name as passed to the launch.
    pub kernel: String,
    /// Buffer label (empty for shared-memory violations).
    pub buffer: String,
    /// Violation class.
    pub kind: ViolationKind,
    /// The declared index expression that fails.
    pub index_expr: String,
    /// Witness block pair for overlaps; `(block, block)` for per-block
    /// bounds violations.
    pub witness: Option<(usize, usize)>,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for ContractViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kernel, self.kind)?;
        if !self.buffer.is_empty() {
            write!(f, " on {}", self.buffer)?;
        }
        if !self.index_expr.is_empty() {
            write!(f, " ({})", self.index_expr)?;
        }
        if let Some((a, b)) = self.witness {
            write!(f, " witness blocks ({a}, {b})")?;
        }
        if !self.detail.is_empty() {
            write!(f, ": {}", self.detail)?;
        }
        Ok(())
    }
}

/// The static analyzer's judgement on one contracted launch.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Every footprint in bounds and inter-block race-free.
    Verified,
    /// At least one violation; the launch must not execute.
    Refuted(Vec<ContractViolation>),
}

/// Access class used by the overlap sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    R,
    W,
    A,
}

fn classes_conflict(a: Class, b: Class) -> bool {
    // Reads never race with reads; atomics commute with atomics.
    !((a == Class::R && b == Class::R) || (a == Class::A && b == Class::A))
}

/// Top-2 max-`hi` interval holders from *distinct* blocks for one access
/// class — enough to answer "does any earlier interval of this class from
/// another block overlap `lo`?" exactly during the sweep.
#[derive(Default, Clone, Copy)]
struct Top2 {
    best: Option<(usize, usize)>,   // (hi, block)
    second: Option<(usize, usize)>, // (hi, block != best.block)
}

impl Top2 {
    fn push(&mut self, hi: usize, block: usize) {
        match self.best {
            None => self.best = Some((hi, block)),
            Some((bh, bb)) if bb == block => {
                if hi > bh {
                    self.best = Some((hi, block));
                }
            }
            Some((bh, _)) if hi > bh => {
                self.second = self.best;
                self.best = Some((hi, block));
            }
            Some(_) => match self.second {
                None => self.second = Some((hi, block)),
                Some((sh, sb)) if sb == block => {
                    if hi > sh {
                        self.second = Some((hi, block));
                    }
                }
                Some((sh, _)) => {
                    if hi > sh {
                        self.second = Some((hi, block));
                    }
                }
            },
        }
    }

    /// A previously-swept interval from a block other than `block` whose
    /// end exceeds `lo`, if one exists: `(other_block, other_hi)`.
    fn overlapping_other(&self, lo: usize, block: usize) -> Option<(usize, usize)> {
        if let Some((bh, bb)) = self.best {
            if bb != block && bh > lo {
                return Some((bb, bh));
            }
        }
        if let Some((sh, sb)) = self.second {
            if sb != block && sh > lo {
                return Some((sb, sh));
            }
        }
        None
    }
}

/// One materialized access record for the sweep.
struct Rec {
    class: Class,
    block: usize,
    lo: usize,
    hi: usize,
    entry: usize,
}

/// Statically verify `contract` for a launch of `grid_dim` blocks on a
/// device with `shared_limit` bytes of shared memory per block. Pure
/// interval arithmetic over the declarations — no lane executes.
pub fn verify_contract(
    kernel: &str,
    contract: &AccessContract,
    grid_dim: usize,
    shared_limit: usize,
) -> Verdict {
    let mut violations: Vec<ContractViolation> = Vec::new();

    // Shared-memory obligations: total worst-case live bytes per block
    // must fit, and every allocation must be freed.
    let shared_total: usize = contract.shared.iter().map(|s| s.bytes).sum();
    if shared_total > shared_limit {
        violations.push(ContractViolation {
            kernel: kernel.to_string(),
            buffer: String::new(),
            kind: ViolationKind::SharedOverflow,
            index_expr: format!("{shared_total} bytes/block"),
            witness: None,
            detail: format!("device provides {shared_limit} bytes per block"),
        });
    }
    for s in contract.shared.iter().filter(|s| !s.freed) {
        violations.push(ContractViolation {
            kernel: kernel.to_string(),
            buffer: String::new(),
            kind: ViolationKind::SharedLeak,
            index_expr: format!("{} bytes/block", s.bytes),
            witness: None,
            detail: "declared allocation is never freed".to_string(),
        });
    }

    // Bounds: every materialized interval must sit inside its buffer.
    // Records are collected per buffer identity for the overlap sweep.
    let mut by_uid: BTreeMap<u64, Vec<Rec>> = BTreeMap::new();
    for (entry, bc) in contract.buffers.iter().enumerate() {
        let mut oob: Option<(usize, usize)> = None; // (block, hi)
        for block in 0..grid_dim {
            bc.footprint.for_each_interval(block, bc.len, |lo, hi| {
                if hi > bc.len && oob.is_none() {
                    oob = Some((block, hi));
                }
                let recs = by_uid.entry(bc.uid).or_default();
                match bc.mode {
                    AccessMode::Read => recs.push(Rec {
                        class: Class::R,
                        block,
                        lo,
                        hi,
                        entry,
                    }),
                    AccessMode::Write => recs.push(Rec {
                        class: Class::W,
                        block,
                        lo,
                        hi,
                        entry,
                    }),
                    AccessMode::Atomic => recs.push(Rec {
                        class: Class::A,
                        block,
                        lo,
                        hi,
                        entry,
                    }),
                    AccessMode::ReadWrite => {
                        recs.push(Rec {
                            class: Class::R,
                            block,
                            lo,
                            hi,
                            entry,
                        });
                        recs.push(Rec {
                            class: Class::W,
                            block,
                            lo,
                            hi,
                            entry,
                        });
                    }
                }
            });
        }
        if let Some((block, hi)) = oob {
            violations.push(ContractViolation {
                kernel: kernel.to_string(),
                buffer: bc.label.clone(),
                kind: ViolationKind::OutOfBounds,
                index_expr: bc.footprint.to_string(),
                witness: Some((block, block)),
                detail: format!(
                    "block {block} {} footprint reaches {hi} but len is {}",
                    bc.mode.name(),
                    bc.len
                ),
            });
        }
    }

    // Race-freedom: sort each buffer's records by interval start and
    // sweep, tracking the top-2 max-end holders per class from distinct
    // blocks. A conflict exists iff a record overlaps an earlier record
    // of a conflicting class from a different block.
    for (_uid, mut recs) in by_uid {
        recs.sort_by_key(|r| r.lo);
        let mut tops = [Top2::default(); 3];
        let mut found = false;
        for r in &recs {
            for (ci, c2) in [Class::R, Class::W, Class::A].into_iter().enumerate() {
                if !classes_conflict(r.class, c2) {
                    continue;
                }
                if let Some((other, other_hi)) = tops[ci].overlapping_other(r.lo, r.block) {
                    let bc = &contract.buffers[r.entry];
                    violations.push(ContractViolation {
                        kernel: kernel.to_string(),
                        buffer: bc.label.clone(),
                        kind: ViolationKind::InterBlockOverlap,
                        index_expr: bc.footprint.to_string(),
                        witness: Some((other.min(r.block), other.max(r.block))),
                        detail: format!(
                            "block {} [{}, {}) overlaps block {} (ends {})",
                            r.block, r.lo, r.hi, other, other_hi
                        ),
                    });
                    found = true;
                    break;
                }
            }
            if found {
                break; // one witness per buffer is enough
            }
            let ci = match r.class {
                Class::R => 0,
                Class::W => 1,
                Class::A => 2,
            };
            tops[ci].push(r.hi, r.block);
        }
    }

    if violations.is_empty() {
        Verdict::Verified
    } else {
        Verdict::Refuted(violations)
    }
}

/// Per-kernel proof tally: how each contracted (or uncontracted) launch
/// was judged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContractTally {
    /// Launches whose contract the static analyzer proved safe.
    pub verified: u64,
    /// Launches refuted before execution.
    pub refuted: u64,
    /// Launches with no contract — executed on dynamic checking alone.
    pub assumed: u64,
}

impl ContractTally {
    /// Element-wise sum.
    pub fn add(&mut self, other: &ContractTally) {
        self.verified += other.verified;
        self.refuted += other.refuted;
        self.assumed += other.assumed;
    }
}

/// End-of-run proof table: per-kernel tallies plus retained refutation
/// diagnostics.
#[derive(Debug, Clone, Default)]
pub struct ContractReport {
    /// Tallies by kernel name.
    pub per_kernel: BTreeMap<String, ContractTally>,
    /// Retained violations (capped like sanitizer diagnostics).
    pub diagnostics: Vec<ContractViolation>,
}

impl ContractReport {
    /// Sum of all per-kernel tallies.
    pub fn totals(&self) -> ContractTally {
        let mut t = ContractTally::default();
        for v in self.per_kernel.values() {
            t.add(v);
        }
        t
    }

    /// Fold another device's report into this one.
    pub fn merge(&mut self, other: &ContractReport) {
        for (k, v) in &other.per_kernel {
            self.per_kernel.entry(k.clone()).or_default().add(v);
        }
        for d in &other.diagnostics {
            if self.diagnostics.len() >= MAX_VIOLATIONS {
                break;
            }
            self.diagnostics.push(d.clone());
        }
    }

    /// True when every launch carried a contract and every contract was
    /// proved (`refuted == 0` and `assumed == 0`).
    pub fn all_verified(&self) -> bool {
        let t = self.totals();
        t.refuted == 0 && t.assumed == 0
    }
}

/// Per-device contract accounting attached by
/// [`crate::Device`]::`with_contracts`.
#[derive(Debug, Default)]
pub(crate) struct ContractLedger {
    tallies: Mutex<BTreeMap<String, ContractTally>>,
    diagnostics: Mutex<Vec<ContractViolation>>,
}

impl ContractLedger {
    pub(crate) fn tally_verified(&self, kernel: &str) {
        self.tallies
            .lock()
            .entry(kernel.to_string())
            .or_default()
            .verified += 1;
    }

    pub(crate) fn tally_assumed(&self, kernel: &str) {
        self.tallies
            .lock()
            .entry(kernel.to_string())
            .or_default()
            .assumed += 1;
    }

    pub(crate) fn tally_refuted(&self, kernel: &str, violations: &[ContractViolation]) {
        self.tallies
            .lock()
            .entry(kernel.to_string())
            .or_default()
            .refuted += 1;
        let mut diags = self.diagnostics.lock();
        for v in violations {
            if diags.len() >= MAX_VIOLATIONS {
                break;
            }
            diags.push(v.clone());
        }
    }

    pub(crate) fn report(&self) -> ContractReport {
        ContractReport {
            per_kernel: self.tallies.lock().clone(),
            diagnostics: self.diagnostics.lock().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::Device;
    use crate::DeviceConfig;

    fn dev() -> Device {
        Device::new(DeviceConfig::tesla_m2050())
    }

    #[test]
    fn tiled_footprints_verify_in_bounds_and_race_free() {
        let d = dev();
        let input: GlobalBuffer<u32> = d.alloc(1000);
        let output: GlobalBuffer<u32> = d.alloc(1000);
        let c = AccessContract::new()
            .read(&input, Footprint::tiled(256, 1000))
            .write(&output, Footprint::tiled(256, 1000))
            .shared::<u64>(256);
        assert!(matches!(
            verify_contract("k", &c, 4, 48 * 1024),
            Verdict::Verified
        ));
    }

    #[test]
    fn oob_footprint_is_refuted_with_a_block_witness() {
        let d = dev();
        let short: GlobalBuffer<u32> = d.alloc(900); // tile 4 ends at 1000
        let c = AccessContract::new().write(&short, Footprint::tiled(256, 1000));
        let Verdict::Refuted(v) = verify_contract("k", &c, 4, 48 * 1024) else {
            panic!("must refute")
        };
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::OutOfBounds);
        assert_eq!(v[0].witness, Some((3, 3)));
        assert!(v[0].to_string().contains("out-of-bounds"));
    }

    #[test]
    fn overlapping_writes_are_refuted_with_a_witness_pair() {
        let d = dev();
        let buf: GlobalBuffer<u32> = d.alloc(1000);
        // Tiles of 256 but each block claims 300 elements: neighbours
        // collide.
        let c = AccessContract::new().write(
            &buf,
            Footprint::Affine {
                lo: AffineExpr::new(0, 256),
                hi: AffineExpr::new(300, 256),
                cap: Some(1000),
            },
        );
        let Verdict::Refuted(v) = verify_contract("k", &c, 3, 48 * 1024) else {
            panic!("must refute")
        };
        assert_eq!(v[0].kind, ViolationKind::InterBlockOverlap);
        let (a, b) = v[0].witness.unwrap();
        assert!(a != b);
    }

    #[test]
    fn write_read_overlap_across_blocks_is_refuted() {
        let d = dev();
        let buf: GlobalBuffer<u32> = d.alloc(512);
        let c = AccessContract::new()
            .write(&buf, Footprint::tiled(256, 512))
            .read(&buf, Footprint::All); // every block reads what others write
        let Verdict::Refuted(v) = verify_contract("k", &c, 2, 48 * 1024) else {
            panic!("must refute")
        };
        assert_eq!(v[0].kind, ViolationKind::InterBlockOverlap);
    }

    #[test]
    fn disjoint_reads_and_atomics_do_not_conflict() {
        let d = dev();
        let table: GlobalBuffer<f64> = d.alloc(64);
        let acc: GlobalBuffer<f64> = d.alloc(64);
        let c = AccessContract::new()
            .read(&table, Footprint::All)
            .atomic(&acc, Footprint::All);
        assert!(matches!(
            verify_contract("k", &c, 8, 48 * 1024),
            Verdict::Verified
        ));
    }

    #[test]
    fn shared_overflow_and_leak_are_refuted() {
        let c = AccessContract::new().shared::<f64>(7000); // 56 KB > 48 KB
        let Verdict::Refuted(v) = verify_contract("k", &c, 1, 48 * 1024) else {
            panic!("must refute")
        };
        assert_eq!(v[0].kind, ViolationKind::SharedOverflow);

        let c = AccessContract::new().shared_leaked::<u32>(16);
        let Verdict::Refuted(v) = verify_contract("k", &c, 1, 48 * 1024) else {
            panic!("must refute")
        };
        assert_eq!(v[0].kind, ViolationKind::SharedLeak);
    }

    #[test]
    fn tiled_with_prev_clamps_at_zero_and_does_not_race_on_reads() {
        let d = dev();
        let sorted: GlobalBuffer<u32> = d.alloc(700);
        let flags: GlobalBuffer<u32> = d.alloc(700);
        let c = AccessContract::new()
            .read(&sorted, Footprint::tiled_with_prev(256, 700))
            .write(&flags, Footprint::tiled(256, 700));
        assert!(matches!(
            verify_contract("unique_flags", &c, 3, 48 * 1024),
            Verdict::Verified
        ));
    }

    #[test]
    fn explicit_intervals_race_only_when_overlapping() {
        let d = dev();
        let buf: GlobalBuffer<u32> = d.alloc(100);
        let ok = AccessContract::new().write(
            &buf,
            Footprint::per_block(vec![
                BlockInterval {
                    block: 0,
                    lo: 0,
                    hi: 40,
                },
                BlockInterval {
                    block: 1,
                    lo: 40,
                    hi: 100,
                },
            ]),
        );
        assert!(matches!(
            verify_contract("k", &ok, 2, 48 * 1024),
            Verdict::Verified
        ));

        let bad = AccessContract::new().write(
            &buf,
            Footprint::per_block(vec![
                BlockInterval {
                    block: 0,
                    lo: 0,
                    hi: 41,
                },
                BlockInterval {
                    block: 1,
                    lo: 40,
                    hi: 100,
                },
            ]),
        );
        let Verdict::Refuted(v) = verify_contract("k", &bad, 2, 48 * 1024) else {
            panic!("must refute")
        };
        assert_eq!(v[0].kind, ViolationKind::InterBlockOverlap);
        assert_eq!(v[0].witness, Some((0, 1)));
    }

    #[test]
    fn conformance_cover_checks_mode_and_interval() {
        let d = dev();
        let buf: GlobalBuffer<u32> = d.alloc(512);
        let c = AccessContract::new().write(&buf, Footprint::tiled(256, 512));
        let uid = c.buffers[0].uid;
        assert!(c.covers(uid, 0, 0, 256, AccessKind::Write));
        assert!(!c.covers(uid, 0, 0, 257, AccessKind::Write)); // escapes tile
        assert!(!c.covers(uid, 0, 0, 1, AccessKind::Read)); // wrong mode
        assert!(!c.covers(uid + 1, 0, 0, 1, AccessKind::Write)); // undeclared
    }

    #[test]
    fn report_merge_and_totals() {
        let ledger = ContractLedger::default();
        ledger.tally_verified("a");
        ledger.tally_verified("a");
        ledger.tally_assumed("b");
        let mut r = ledger.report();
        assert_eq!(r.per_kernel["a"].verified, 2);
        assert!(!r.all_verified());

        let other = ContractLedger::default();
        other.tally_verified("b");
        r.merge(&other.report());
        assert_eq!(r.totals().verified, 3);
        assert_eq!(r.totals().assumed, 1);
    }

    #[test]
    fn affine_expr_renders_readably() {
        assert_eq!(AffineExpr::new(0, 256).to_string(), "block*256");
        assert_eq!(AffineExpr::new(-1, 256).to_string(), "block*256 - 1");
        assert_eq!(AffineExpr::new(5, 0).to_string(), "5");
        assert_eq!(
            Footprint::tiled(256, 1000).to_string(),
            "[block*256, block*256 + 256) cap 1000"
        );
    }
}
