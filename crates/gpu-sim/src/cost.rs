//! Analytic device-time model.
//!
//! Converts a [`HwCounters`] snapshot into an estimated kernel time for a
//! given [`DeviceConfig`]. The model mirrors the estimation style the paper
//! itself uses (Formula 1 in §IV-B estimates the dense-matrix access time
//! from size and bandwidth alone):
//!
//! ```text
//! compute = instructions / inst_throughput
//! memory  = co_bytes/coalesced_bw + rand_bytes/random_bw + s_bytes/shared_bw
//! kernel  = launch_overhead + max(compute, memory)   (GPUs overlap the two)
//! xfer    = (h2d + d2h) / pcie_bw
//! ```
//!
//! Absolute numbers are a model, not a measurement; the reproduction relies
//! on them only for *ratios* between kernel variants that run identical
//! workloads, where bandwidth asymmetry (coalesced vs random) is what the
//! paper's optimizations exploit.

use crate::config::DeviceConfig;
use crate::counters::HwCounters;

/// Cost model bound to a device configuration.
#[derive(Debug, Clone)]
pub struct CostModel {
    cfg: DeviceConfig,
}

impl CostModel {
    /// Build a model for a device.
    pub fn new(cfg: DeviceConfig) -> Self {
        CostModel { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Time spent on arithmetic, seconds.
    pub fn compute_time(&self, c: &HwCounters) -> f64 {
        c.instructions as f64 / self.cfg.inst_throughput
    }

    /// Time spent on memory traffic, seconds.
    pub fn memory_time(&self, c: &HwCounters) -> f64 {
        let co = (c.g_load_bytes_co + c.g_store_bytes_co) as f64 / self.cfg.coalesced_bw;
        let rand = (c.g_load_bytes_rand + c.g_store_bytes_rand) as f64 / self.cfg.random_bw;
        let shared = c.s_bytes as f64 / self.cfg.shared_bw;
        co + rand + shared
    }

    /// Host↔device transfer time, seconds.
    pub fn transfer_time(&self, c: &HwCounters) -> f64 {
        (c.h2d_bytes + c.d2h_bytes) as f64 / self.cfg.pcie_bw
    }

    /// Estimated kernel time: launch overhead plus the slower of the two
    /// overlapped pipelines, plus (non-overlapped) PCIe transfers.
    pub fn kernel_time(&self, c: &HwCounters) -> f64 {
        self.cfg.launch_overhead
            + self.compute_time(c).max(self.memory_time(c))
            + self.transfer_time(c)
    }

    /// The paper's Formula (1): time to stream `total_bytes` sequentially
    /// at the device's sequential bandwidth. Used to estimate the
    /// dense-representation access time on the CPU (Fig. 4a).
    pub fn sequential_stream_time(&self, total_bytes: u64) -> f64 {
        total_bytes as f64 / self.cfg.coalesced_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(inst: u64, co: u64, rand: u64) -> HwCounters {
        HwCounters {
            instructions: inst,
            g_load_bytes_co: co,
            g_load_bytes_rand: rand,
            ..Default::default()
        }
    }

    #[test]
    fn random_traffic_dominates_equal_bytes() {
        let m = CostModel::new(DeviceConfig::tesla_m2050());
        let co_only = m.memory_time(&c(0, 1_000_000, 0));
        let rand_only = m.memory_time(&c(0, 0, 1_000_000));
        // 82 GB/s vs 3.2 GB/s → random ~25.6x slower for the same bytes.
        let ratio = rand_only / co_only;
        assert!((ratio - 82.0 / 3.2).abs() < 1e-9, "ratio = {ratio}");
    }

    #[test]
    fn compute_and_memory_overlap() {
        let m = CostModel::new(DeviceConfig::tesla_m2050());
        let counters = c(u64::MAX / 2, 8, 0);
        // Compute-bound: kernel time tracks instructions, not the 8 bytes.
        let t = m.kernel_time(&counters);
        assert!((t - m.config().launch_overhead - m.compute_time(&counters)).abs() < 1e-12);
    }

    #[test]
    fn formula_1_sequential_stream() {
        let m = CostModel::new(DeviceConfig::xeon_e5630());
        // 4.2 GB at 4.2 GB/s = 1 second.
        let t = m.sequential_stream_time(4_200_000_000);
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_uses_pcie() {
        let m = CostModel::new(DeviceConfig::tesla_m2050());
        let counters = HwCounters {
            h2d_bytes: 3_000_000_000,
            d2h_bytes: 3_000_000_000,
            ..Default::default()
        };
        assert!((m.transfer_time(&counters) - 1.0).abs() < 1e-9);
    }
}
