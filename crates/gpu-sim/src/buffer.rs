//! Device memory buffers.
//!
//! [`GlobalBuffer`] models GPU global memory. Kernels running in different
//! blocks may scatter into the same buffer concurrently, so the storage is
//! backed by per-element atomics with relaxed ordering — which on x86-64
//! compiles to plain loads and stores, costing nothing, while giving the
//! same well-defined "last writer wins" semantics racing global-memory
//! writes have on a real GPU (no Rust-level undefined behaviour).
//!
//! Storage is type-erased: every scalar is held in an `AtomicU64` cell via
//! its raw bit pattern. This keeps one untyped free-list per size class in
//! the [`crate::BufferPool`], so recycling a `u32` word buffer as an `f64`
//! likelihood buffer needs no re-allocation. Logical length is tracked
//! separately from cell capacity for the same reason.
//!
//! Accesses from inside a kernel must go through [`crate::BlockCtx`] so they
//! are counted; the methods here are host-side (uncounted) conveniences.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::sanitizer::BufferShadow;

/// Raw type-erased device cells (shared with the buffer pool).
pub(crate) type RawCells = Box<[AtomicU64]>;

/// Allocate `cells` zeroed raw cells (zero is the raw encoding of every
/// scalar's default value).
///
/// Goes through `vec![0u64; n]` so the allocator's zeroed path (calloc)
/// can hand back untouched zero pages: device buffers are large and
/// windowed pipelines allocate them constantly, and an element-wise
/// constructor loop would memset every byte up front.
#[allow(unsafe_code)]
pub(crate) fn raw_zeroed(cells: usize) -> RawCells {
    let mut lanes = std::mem::ManuallyDrop::new(vec![0u64; cells]);
    // SAFETY: `AtomicU64` is documented to have the same size and bit
    // validity as `u64` (and the same alignment on every supported
    // target), and `vec![0u64; n]` allocates capacity == len, so the
    // rebuilt Vec owns the identical allocation.
    let v = unsafe {
        Vec::from_raw_parts(
            lanes.as_mut_ptr() as *mut AtomicU64,
            lanes.len(),
            lanes.capacity(),
        )
    };
    v.into_boxed_slice()
}

/// Scalar types that can live in device memory.
///
/// Each scalar is stored as a `u64` bit pattern in an atomic backing cell;
/// loads/stores use `Relaxed` ordering. Floats are stored as their IEEE-754
/// bit patterns, narrower integers zero-extended.
pub trait DeviceScalar: Copy + Default + Send + Sync + 'static {
    /// Size in bytes of the *modelled* scalar (used for bandwidth
    /// accounting; the simulator's backing cell is always 8 bytes).
    const BYTES: u64;
    /// Encode into the raw cell representation.
    fn to_raw(self) -> u64;
    /// Decode from the raw cell representation.
    fn from_raw(raw: u64) -> Self;
}

macro_rules! int_scalar {
    ($t:ty, $bytes:expr) => {
        impl DeviceScalar for $t {
            const BYTES: u64 = $bytes;
            #[inline(always)]
            fn to_raw(self) -> u64 {
                self as u64
            }
            #[inline(always)]
            fn from_raw(raw: u64) -> Self {
                raw as $t
            }
        }
    };
}

int_scalar!(u8, 1);
int_scalar!(u16, 2);
int_scalar!(u32, 4);
int_scalar!(u64, 8);

impl DeviceScalar for i32 {
    const BYTES: u64 = 4;
    #[inline(always)]
    fn to_raw(self) -> u64 {
        self as u32 as u64
    }
    #[inline(always)]
    fn from_raw(raw: u64) -> Self {
        raw as u32 as i32
    }
}

impl DeviceScalar for f32 {
    const BYTES: u64 = 4;
    #[inline(always)]
    fn to_raw(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline(always)]
    fn from_raw(raw: u64) -> Self {
        f32::from_bits(raw as u32)
    }
}

impl DeviceScalar for f64 {
    const BYTES: u64 = 8;
    #[inline(always)]
    fn to_raw(self) -> u64 {
        self.to_bits()
    }
    #[inline(always)]
    fn from_raw(raw: u64) -> Self {
        f64::from_bits(raw)
    }
}

/// A buffer in simulated device global memory.
///
/// The logical length may be smaller than the backing capacity when the
/// buffer came from a size-classed pool; all indexing is bounds-checked
/// against the logical length.
pub struct GlobalBuffer<T: DeviceScalar> {
    cells: RawCells,
    len: usize,
    /// Process-unique tenancy id, used by access contracts to key declared
    /// footprints to observed accesses. A recycled pool buffer gets a fresh
    /// id with each tenancy, matching its fresh shadow state.
    uid: u64,
    /// Sanitizer shadow state. `None` unless the buffer was allocated
    /// through a [`crate::Device`] with an attached sanitizer, so the only
    /// cost on unsanitized paths is one never-taken branch per host access.
    shadow: Option<Arc<BufferShadow>>,
    _marker: PhantomData<T>,
}

/// Tenancy-id source for [`GlobalBuffer::uid`].
static NEXT_UID: AtomicU64 = AtomicU64::new(0);

fn next_uid() -> u64 {
    NEXT_UID.fetch_add(1, Ordering::Relaxed)
}

impl<T: DeviceScalar> GlobalBuffer<T> {
    /// Allocate `len` zero-initialized elements.
    pub fn zeroed(len: usize) -> Self {
        GlobalBuffer {
            cells: raw_zeroed(len),
            len,
            uid: next_uid(),
            shadow: None,
            _marker: PhantomData,
        }
    }

    /// Allocate from host data (an "upload"; byte accounting happens on the
    /// [`crate::Device`] methods).
    pub fn from_slice(data: &[T]) -> Self {
        GlobalBuffer {
            cells: data.iter().map(|&v| AtomicU64::new(v.to_raw())).collect(),
            len: data.len(),
            uid: next_uid(),
            shadow: None,
            _marker: PhantomData,
        }
    }

    /// Rewrap recycled raw cells with a (possibly shorter) logical length.
    ///
    /// # Panics
    /// Panics if `len` exceeds the cell capacity.
    pub(crate) fn from_raw_cells(cells: RawCells, len: usize) -> Self {
        assert!(len <= cells.len(), "logical length exceeds cell capacity");
        GlobalBuffer {
            cells,
            len,
            uid: next_uid(),
            shadow: None,
            _marker: PhantomData,
        }
    }

    /// Unwrap into the raw backing cells (for return to a pool; any shadow
    /// state dies with the tenancy — a recycled buffer gets a fresh shadow).
    pub(crate) fn into_raw_cells(self) -> RawCells {
        self.cells
    }

    /// Attach sanitizer shadow state (done by [`crate::Device`] allocation
    /// paths when a sanitizer is configured).
    pub(crate) fn set_shadow(&mut self, shadow: Arc<BufferShadow>) {
        self.shadow = Some(shadow);
    }

    /// The attached shadow state, if any.
    pub(crate) fn shadow(&self) -> Option<&Arc<BufferShadow>> {
        self.shadow.as_ref()
    }

    /// Process-unique tenancy id (contract footprint key).
    pub(crate) fn uid(&self) -> u64 {
        self.uid
    }

    /// Number of (logical) elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Backing capacity in elements (≥ `len()` for pooled buffers).
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size in bytes of the modelled allocation (logical length × scalar
    /// width, matching what a real device allocation would occupy).
    pub fn size_bytes(&self) -> u64 {
        self.len as u64 * T::BYTES
    }

    /// Uncounted host-side read (bounds-checked).
    #[inline(always)]
    pub fn get(&self, i: usize) -> T {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        if let Some(sh) = &self.shadow {
            sh.host_read(i, 1);
        }
        T::from_raw(self.cells[i].load(Ordering::Relaxed))
    }

    /// Uncounted host-side write (bounds-checked).
    #[inline(always)]
    pub fn set(&self, i: usize, v: T) {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        if let Some(sh) = &self.shadow {
            sh.host_write(i, 1);
        }
        self.cells[i].store(v.to_raw(), Ordering::Relaxed);
    }

    /// Uncounted host-side read of `out.len()` consecutive elements
    /// starting at `start` (bounds-checked once for the whole span).
    #[inline]
    pub fn read_span(&self, start: usize, out: &mut [T]) {
        let end = start + out.len();
        assert!(
            end <= self.len,
            "span {start}..{end} out of bounds (len {})",
            self.len
        );
        if let Some(sh) = &self.shadow {
            sh.host_read(start, out.len());
        }
        for (o, c) in out.iter_mut().zip(&self.cells[start..end]) {
            *o = T::from_raw(c.load(Ordering::Relaxed));
        }
    }

    /// Uncounted host-side write of `vals.len()` consecutive elements
    /// starting at `start` (bounds-checked once for the whole span).
    #[inline]
    pub fn write_span(&self, start: usize, vals: &[T]) {
        let end = start + vals.len();
        assert!(
            end <= self.len,
            "span {start}..{end} out of bounds (len {})",
            self.len
        );
        if let Some(sh) = &self.shadow {
            sh.host_write(start, vals.len());
        }
        for (c, v) in self.cells[start..end].iter().zip(vals) {
            c.store(v.to_raw(), Ordering::Relaxed);
        }
    }

    /// Download the whole buffer to a host `Vec` (uncounted; use
    /// [`crate::Device::download`] for counted transfers).
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::new();
        self.read_into(&mut out);
        out
    }

    /// Download into a caller-owned `Vec`, reusing its capacity. The vector
    /// is cleared first; after the call it holds exactly `len()` elements.
    /// This is the zero-allocation readback path: once the vector has grown
    /// to the steady-state window size no heap traffic occurs.
    pub fn read_into(&self, out: &mut Vec<T>) {
        out.clear();
        if let Some(sh) = &self.shadow {
            sh.host_read(0, self.len);
        }
        out.extend(
            self.cells[..self.len]
                .iter()
                .map(|c| T::from_raw(c.load(Ordering::Relaxed))),
        );
    }

    /// Overwrite the buffer contents from a host slice of the same length.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn write_from(&self, data: &[T]) {
        assert_eq!(data.len(), self.len, "host/device length mismatch");
        if let Some(sh) = &self.shadow {
            sh.host_write(0, self.len);
        }
        for (cell, &v) in self.cells[..self.len].iter().zip(data) {
            cell.store(v.to_raw(), Ordering::Relaxed);
        }
    }

    /// Reset every element to the default value (the GSNP `recycle` step).
    pub fn clear(&self) {
        if let Some(sh) = &self.shadow {
            sh.host_write(0, self.len);
        }
        for cell in &self.cells[..self.len] {
            cell.store(0, Ordering::Relaxed);
        }
    }

    /// Raw bit pattern of every logical element (uncounted, shadow-exempt).
    /// Observation hook for the block-order determinism check — comparing
    /// raw lanes makes "byte-identical" literal, NaN payloads included.
    pub fn raw_snapshot(&self) -> Vec<u64> {
        self.cells[..self.len]
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    // ---- plain (non-atomic) span access: the native backend's fast
    // path ----
    //
    // Kernel launches partition their buffers between blocks: each block
    // reads and writes only its own spans, and the simulator's racecheck
    // exists precisely to verify that no two blocks touch the same
    // location. The native executor leans on that invariant to access
    // span data through plain loads and stores instead of per-element
    // relaxed atomics — same instructions on x86-64, but visible to the
    // auto-vectorizer, which the atomic loop never is. Scalar accesses
    // (including `atomic_add`, which *is* cross-block traffic) stay on
    // the atomic cells.
    //
    // SAFETY (shared by the methods below): the caller must guarantee no
    // concurrent access to the addressed span — the launch-disjointness
    // invariant above. The raw views cover only the requested span, so
    // concurrent atomics on *other* cells of the same buffer are fine.

    /// Plain bulk read of `out.len()` consecutive elements (native
    /// kernels only; see the span-access safety note above).
    #[inline]
    pub(crate) fn read_span_plain<U: DeviceScalar>(&self, start: usize, out: &mut [U]) {
        let lanes = self.lanes_plain(start, out.len());
        for (o, &lane) in out.iter_mut().zip(lanes) {
            *o = U::from_raw(lane);
        }
    }

    /// Plain raw-lane copy into a tile (native stage-in).
    #[inline]
    pub(crate) fn copy_lanes_into(&self, start: usize, out: &mut [u64]) {
        out.copy_from_slice(self.lanes_plain(start, out.len()));
    }

    /// Plain raw-lane copy out of a tile (native flush).
    #[inline]
    pub(crate) fn copy_lanes_from(&self, start: usize, src: &[u64]) {
        self.lanes_plain_mut(start, src.len()).copy_from_slice(src);
    }

    /// Plain read-add-write of a consecutive `f64` span (native kernels
    /// only). Element order matches [`GlobalBuffer::add_assign_span`], so
    /// results are bit-exact with the counted path.
    #[inline]
    pub(crate) fn add_assign_span_plain(&self, start: usize, terms: &[f64]) {
        for (lane, &t) in self
            .lanes_plain_mut(start, terms.len())
            .iter_mut()
            .zip(terms)
        {
            *lane = (f64::from_bits(*lane) + t).to_bits();
        }
    }

    // Plain lanes are legal on sanitized buffers *only* under a verified
    // access contract: the static proof replaces the per-access dynamic
    // checks, and `BufferShadow::define_span` reconciles the shadow state
    // after the launch.
    #[allow(unsafe_code)]
    #[inline(always)]
    fn lanes_plain(&self, start: usize, len: usize) -> &[u64] {
        let cells = self.cells_span(start, len);
        // SAFETY: `AtomicU64` has the same size, alignment, and bit
        // validity as `u64`; the view covers exactly the bounds-checked
        // span, which the caller guarantees no other thread touches.
        unsafe { std::slice::from_raw_parts(cells.as_ptr() as *const u64, cells.len()) }
    }

    #[allow(unsafe_code)]
    #[allow(clippy::mut_from_ref)] // interior mutability: cells are atomics
    #[inline(always)]
    fn lanes_plain_mut(&self, start: usize, len: usize) -> &mut [u64] {
        let cells = self.cells_span(start, len);
        // SAFETY: as above, plus exclusivity over the span — the caller
        // (one kernel block) is its only accessor for the view's
        // lifetime.
        unsafe { std::slice::from_raw_parts_mut(cells.as_ptr() as *mut u64, cells.len()) }
    }

    #[inline(always)]
    pub(crate) fn cell(&self, i: usize) -> &AtomicU64 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        &self.cells[i]
    }

    #[inline(always)]
    pub(crate) fn cells_span(&self, start: usize, len: usize) -> &[AtomicU64] {
        let end = start + len;
        assert!(
            end <= self.len,
            "span {start}..{end} out of bounds (len {})",
            self.len
        );
        &self.cells[start..end]
    }
}

impl GlobalBuffer<f64> {
    /// Uncounted host-side read-add-write of a consecutive span:
    /// `self[start + n] += terms[n]` for each `n`, in index order. The
    /// per-element addition sequence is identical to a `get`/`set` pair,
    /// so results are bit-exact with the scalar path.
    #[inline]
    pub fn add_assign_span(&self, start: usize, terms: &[f64]) {
        let end = start + terms.len();
        assert!(
            end <= self.len,
            "span {start}..{end} out of bounds (len {})",
            self.len
        );
        if let Some(sh) = &self.shadow {
            sh.host_read(start, terms.len());
            sh.host_write(start, terms.len());
        }
        for (c, &t) in self.cells[start..end].iter().zip(terms) {
            let cur = f64::from_bits(c.load(Ordering::Relaxed));
            c.store((cur + t).to_bits(), Ordering::Relaxed);
        }
    }
}

/// Atomic read-modify-write support for integer device scalars (used by
/// counting kernels that histogram into shared structures).
///
/// The raw cells are 64-bit; carries past the scalar's width land in raw
/// bits that [`DeviceScalar::from_raw`] masks off, so a plain 64-bit
/// `fetch_add` gives exact wrapping semantics at every width.
pub trait DeviceInt: DeviceScalar {
    /// Atomic fetch-add with relaxed ordering; returns the previous value.
    #[inline(always)]
    fn fetch_add(cell: &AtomicU64, v: Self) -> Self {
        Self::from_raw(cell.fetch_add(v.to_raw(), Ordering::Relaxed))
    }
}

impl DeviceInt for u8 {}
impl DeviceInt for u16 {}
impl DeviceInt for u32 {}
impl DeviceInt for u64 {}

/// Read-only cached constant memory (the M2050 has 64 KB). Stores plain
/// values: constant memory is immutable during a launch, so no atomics are
/// needed.
pub struct ConstBuffer<T: Copy> {
    data: Box<[T]>,
}

impl<T: Copy + Send + Sync + 'static> ConstBuffer<T> {
    /// Build from host data. Capacity against the device configuration is
    /// validated by [`crate::Device::upload_const`].
    pub fn from_slice(data: &[T]) -> Self {
        ConstBuffer { data: data.into() }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bounds-checked read. Constant memory is cached on-chip, so reads are
    /// counted as instructions only, not as global transactions.
    #[inline(always)]
    pub fn get(&self, i: usize) -> T {
        self.data[i]
    }

    /// Raw view of the contents.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_roundtrip() {
        let b: GlobalBuffer<u32> = GlobalBuffer::zeroed(8);
        assert_eq!(b.len(), 8);
        assert_eq!(b.to_vec(), vec![0; 8]);
        b.set(3, 42);
        assert_eq!(b.get(3), 42);
    }

    #[test]
    fn float_bitcast_roundtrip() {
        let b = GlobalBuffer::from_slice(&[1.5f64, -0.0, f64::NEG_INFINITY]);
        assert_eq!(b.get(0), 1.5);
        assert!(b.get(1) == 0.0 && b.get(1).is_sign_negative());
        assert_eq!(b.get(2), f64::NEG_INFINITY);
        b.set(1, 2.25);
        assert_eq!(b.to_vec(), vec![1.5, 2.25, f64::NEG_INFINITY]);
    }

    #[test]
    fn nan_survives_bitcast() {
        let b = GlobalBuffer::from_slice(&[f64::NAN]);
        assert!(b.get(0).is_nan());
    }

    #[test]
    fn clear_resets() {
        let b = GlobalBuffer::from_slice(&[7u8, 8, 9]);
        b.clear();
        assert_eq!(b.to_vec(), vec![0, 0, 0]);
    }

    #[test]
    fn size_bytes_accounts_element_width() {
        let b: GlobalBuffer<f64> = GlobalBuffer::zeroed(10);
        assert_eq!(b.size_bytes(), 80);
    }

    #[test]
    fn fetch_add_returns_previous() {
        let b = GlobalBuffer::from_slice(&[10u32]);
        let prev = u32::fetch_add(b.cell(0), 5);
        assert_eq!(prev, 10);
        assert_eq!(b.get(0), 15);
    }

    #[test]
    fn fetch_add_wraps_at_scalar_width() {
        let b = GlobalBuffer::from_slice(&[u8::MAX]);
        let prev = u8::fetch_add(b.cell(0), 3);
        assert_eq!(prev, u8::MAX);
        assert_eq!(b.get(0), 2, "u8 histogram must wrap at 8 bits");
        // And keep wrapping correctly after the first carry.
        u8::fetch_add(b.cell(0), 250);
        u8::fetch_add(b.cell(0), 250);
        assert_eq!(b.get(0), ((2u32 + 250 + 250) % 256) as u8);
    }

    #[test]
    fn write_from_overwrites() {
        let b: GlobalBuffer<u16> = GlobalBuffer::zeroed(3);
        b.write_from(&[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn write_from_length_mismatch_panics() {
        let b: GlobalBuffer<u16> = GlobalBuffer::zeroed(3);
        b.write_from(&[1, 2]);
    }

    #[test]
    fn read_into_reuses_capacity() {
        let b = GlobalBuffer::from_slice(&[1u32, 2, 3]);
        let mut out = Vec::with_capacity(16);
        let ptr = out.as_ptr();
        b.read_into(&mut out);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(out.as_ptr(), ptr, "readback must reuse the allocation");
    }

    #[test]
    fn logical_len_hides_pool_capacity() {
        let b: GlobalBuffer<u32> = GlobalBuffer::from_raw_cells(raw_zeroed(8), 5);
        assert_eq!(b.len(), 5);
        assert_eq!(b.capacity(), 8);
        assert_eq!(b.size_bytes(), 20);
        assert_eq!(b.to_vec().len(), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn access_past_logical_len_panics() {
        let b: GlobalBuffer<u32> = GlobalBuffer::from_raw_cells(raw_zeroed(8), 5);
        b.get(5);
    }

    #[test]
    fn const_buffer_reads() {
        let c = ConstBuffer::from_slice(&[0.5f64, 0.25]);
        assert_eq!(c.get(1), 0.25);
        assert_eq!(c.len(), 2);
    }
}
