//! Device memory buffers.
//!
//! [`GlobalBuffer`] models GPU global memory. Kernels running in different
//! blocks may scatter into the same buffer concurrently, so the storage is
//! backed by per-element atomics with relaxed ordering — which on x86-64
//! compiles to plain loads and stores, costing nothing, while giving the
//! same well-defined "last writer wins" semantics racing global-memory
//! writes have on a real GPU (no Rust-level undefined behaviour).
//!
//! Accesses from inside a kernel must go through [`crate::BlockCtx`] so they
//! are counted; the methods here are host-side (uncounted) conveniences.

use std::sync::atomic::{AtomicU16, AtomicU32, AtomicU64, AtomicU8, Ordering};

/// Scalar types that can live in device memory.
///
/// Each scalar maps to an atomic backing cell; loads/stores use `Relaxed`
/// ordering. Floats are stored as their IEEE-754 bit patterns.
pub trait DeviceScalar: Copy + Default + Send + Sync + 'static {
    /// Backing storage cell.
    type Atomic: Send + Sync;
    /// Size in bytes, used for bandwidth accounting.
    const BYTES: u64;
    /// Wrap a value into a fresh cell.
    fn new_cell(v: Self) -> Self::Atomic;
    /// Relaxed load.
    fn load(cell: &Self::Atomic) -> Self;
    /// Relaxed store.
    fn store(cell: &Self::Atomic, v: Self);
}

macro_rules! int_scalar {
    ($t:ty, $at:ty, $bytes:expr) => {
        impl DeviceScalar for $t {
            type Atomic = $at;
            const BYTES: u64 = $bytes;
            #[inline(always)]
            fn new_cell(v: Self) -> $at {
                <$at>::new(v)
            }
            #[inline(always)]
            fn load(cell: &$at) -> Self {
                cell.load(Ordering::Relaxed)
            }
            #[inline(always)]
            fn store(cell: &$at, v: Self) {
                cell.store(v, Ordering::Relaxed)
            }
        }
    };
}

int_scalar!(u8, AtomicU8, 1);
int_scalar!(u16, AtomicU16, 2);
int_scalar!(u32, AtomicU32, 4);
int_scalar!(u64, AtomicU64, 8);

impl DeviceScalar for i32 {
    type Atomic = AtomicU32;
    const BYTES: u64 = 4;
    #[inline(always)]
    fn new_cell(v: Self) -> AtomicU32 {
        AtomicU32::new(v as u32)
    }
    #[inline(always)]
    fn load(cell: &AtomicU32) -> Self {
        cell.load(Ordering::Relaxed) as i32
    }
    #[inline(always)]
    fn store(cell: &AtomicU32, v: Self) {
        cell.store(v as u32, Ordering::Relaxed)
    }
}

impl DeviceScalar for f32 {
    type Atomic = AtomicU32;
    const BYTES: u64 = 4;
    #[inline(always)]
    fn new_cell(v: Self) -> AtomicU32 {
        AtomicU32::new(v.to_bits())
    }
    #[inline(always)]
    fn load(cell: &AtomicU32) -> Self {
        f32::from_bits(cell.load(Ordering::Relaxed))
    }
    #[inline(always)]
    fn store(cell: &AtomicU32, v: Self) {
        cell.store(v.to_bits(), Ordering::Relaxed)
    }
}

impl DeviceScalar for f64 {
    type Atomic = AtomicU64;
    const BYTES: u64 = 8;
    #[inline(always)]
    fn new_cell(v: Self) -> AtomicU64 {
        AtomicU64::new(v.to_bits())
    }
    #[inline(always)]
    fn load(cell: &AtomicU64) -> Self {
        f64::from_bits(cell.load(Ordering::Relaxed))
    }
    #[inline(always)]
    fn store(cell: &AtomicU64, v: Self) {
        cell.store(v.to_bits(), Ordering::Relaxed)
    }
}

/// A buffer in simulated device global memory.
pub struct GlobalBuffer<T: DeviceScalar> {
    cells: Box<[T::Atomic]>,
}

impl<T: DeviceScalar> GlobalBuffer<T> {
    /// Allocate `len` zero-initialized elements.
    pub fn zeroed(len: usize) -> Self {
        GlobalBuffer {
            cells: (0..len).map(|_| T::new_cell(T::default())).collect(),
        }
    }

    /// Allocate from host data (an "upload"; byte accounting happens on the
    /// [`crate::Device`] methods).
    pub fn from_slice(data: &[T]) -> Self {
        GlobalBuffer {
            cells: data.iter().map(|&v| T::new_cell(v)).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.cells.len() as u64 * T::BYTES
    }

    /// Uncounted host-side read (bounds-checked).
    #[inline(always)]
    pub fn get(&self, i: usize) -> T {
        T::load(&self.cells[i])
    }

    /// Uncounted host-side write (bounds-checked).
    #[inline(always)]
    pub fn set(&self, i: usize, v: T) {
        T::store(&self.cells[i], v)
    }

    /// Download the whole buffer to a host `Vec` (uncounted; use
    /// [`crate::Device::download`] for counted transfers).
    pub fn to_vec(&self) -> Vec<T> {
        self.cells.iter().map(T::load).collect()
    }

    /// Overwrite the buffer contents from a host slice of the same length.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn write_from(&self, data: &[T]) {
        assert_eq!(data.len(), self.len(), "host/device length mismatch");
        for (cell, &v) in self.cells.iter().zip(data) {
            T::store(cell, v);
        }
    }

    /// Reset every element to the default value (the GSNP `recycle` step).
    pub fn clear(&self) {
        for cell in self.cells.iter() {
            T::store(cell, T::default());
        }
    }

    #[inline(always)]
    pub(crate) fn cell(&self, i: usize) -> &T::Atomic {
        &self.cells[i]
    }
}

/// Atomic read-modify-write support for integer device scalars (used by
/// counting kernels that histogram into shared structures).
pub trait DeviceInt: DeviceScalar {
    /// Atomic fetch-add with relaxed ordering; returns the previous value.
    fn fetch_add(cell: &Self::Atomic, v: Self) -> Self;
}

macro_rules! int_rmw {
    ($t:ty) => {
        impl DeviceInt for $t {
            #[inline(always)]
            fn fetch_add(cell: &Self::Atomic, v: Self) -> Self {
                cell.fetch_add(v, Ordering::Relaxed)
            }
        }
    };
}
int_rmw!(u8);
int_rmw!(u16);
int_rmw!(u32);
int_rmw!(u64);

/// Read-only cached constant memory (the M2050 has 64 KB). Stores plain
/// values: constant memory is immutable during a launch, so no atomics are
/// needed.
pub struct ConstBuffer<T: Copy> {
    data: Box<[T]>,
}

impl<T: Copy + Send + Sync + 'static> ConstBuffer<T> {
    /// Build from host data. Capacity against the device configuration is
    /// validated by [`crate::Device::upload_const`].
    pub fn from_slice(data: &[T]) -> Self {
        ConstBuffer { data: data.into() }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bounds-checked read. Constant memory is cached on-chip, so reads are
    /// counted as instructions only, not as global transactions.
    #[inline(always)]
    pub fn get(&self, i: usize) -> T {
        self.data[i]
    }

    /// Raw view of the contents.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_roundtrip() {
        let b: GlobalBuffer<u32> = GlobalBuffer::zeroed(8);
        assert_eq!(b.len(), 8);
        assert_eq!(b.to_vec(), vec![0; 8]);
        b.set(3, 42);
        assert_eq!(b.get(3), 42);
    }

    #[test]
    fn float_bitcast_roundtrip() {
        let b = GlobalBuffer::from_slice(&[1.5f64, -0.0, f64::NEG_INFINITY]);
        assert_eq!(b.get(0), 1.5);
        assert!(b.get(1) == 0.0 && b.get(1).is_sign_negative());
        assert_eq!(b.get(2), f64::NEG_INFINITY);
        b.set(1, 2.25);
        assert_eq!(b.to_vec(), vec![1.5, 2.25, f64::NEG_INFINITY]);
    }

    #[test]
    fn nan_survives_bitcast() {
        let b = GlobalBuffer::from_slice(&[f64::NAN]);
        assert!(b.get(0).is_nan());
    }

    #[test]
    fn clear_resets() {
        let b = GlobalBuffer::from_slice(&[7u8, 8, 9]);
        b.clear();
        assert_eq!(b.to_vec(), vec![0, 0, 0]);
    }

    #[test]
    fn size_bytes_accounts_element_width() {
        let b: GlobalBuffer<f64> = GlobalBuffer::zeroed(10);
        assert_eq!(b.size_bytes(), 80);
    }

    #[test]
    fn fetch_add_returns_previous() {
        let b = GlobalBuffer::from_slice(&[10u32]);
        let prev = u32::fetch_add(b.cell(0), 5);
        assert_eq!(prev, 10);
        assert_eq!(b.get(0), 15);
    }

    #[test]
    fn write_from_overwrites() {
        let b: GlobalBuffer<u16> = GlobalBuffer::zeroed(3);
        b.write_from(&[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn write_from_length_mismatch_panics() {
        let b: GlobalBuffer<u16> = GlobalBuffer::zeroed(3);
        b.write_from(&[1, 2]);
    }

    #[test]
    fn const_buffer_reads() {
        let c = ConstBuffer::from_slice(&[0.5f64, 0.25]);
        assert_eq!(c.get(1), 0.25);
        assert_eq!(c.len(), 2);
    }
}
