//! Compute-sanitizer-style dynamic checkers for simulated kernels.
//!
//! Real GSNP validates its kernels the way most GPU bioinformatics systems
//! do: diff the end-to-end output against the CPU reference. Because this
//! simulator already funnels *every* device memory access through
//! [`crate::BlockCtx`] / [`crate::SharedMem`], we can do strictly better and
//! check the executions themselves, in the spirit of NVIDIA's
//! `compute-sanitizer` tool suite:
//!
//! * **racecheck** — two blocks touching the same global word within one
//!   launch, where at least one side is a write and at least one side is a
//!   non-atomic access. (Same-block conflicts are fine: threads within a
//!   block are stepped by the kernel body itself, i.e. program order.)
//! * **initcheck** — a read of a word that was never written since
//!   allocation. Buffers from [`crate::Device::alloc_pooled_dirty`] start
//!   fully poisoned — their whole correctness contract is "every element is
//!   written before it is read", and this checker turns that convention into
//!   a machine-checked property. Fresh shared-memory tiles are poisoned too
//!   (CUDA `__shared__` storage is uninitialized even though the simulator
//!   happens to zero it).
//! * **boundscheck** — out-of-range kernel accesses reported with kernel
//!   name, block, index and logical length instead of a raw slice panic.
//! * **leakcheck** — [`crate::SharedMem`] allocations still live when their
//!   block retires, plus the per-launch shared-memory high-water mark.
//!
//! The checkers are attached with [`crate::Device::with_sanitizer`] and cost
//! nothing when absent: every hook is behind an `Option` that release
//! benchmarks never populate, and the hooks never touch the hardware
//! counters, so counter traces are byte-identical with the sanitizer on
//! *or* off.
//!
//! The dynamic checkers are complemented by a **block-order determinism
//! check** ([`check_block_order_invariance`]): run the same device work
//! under N seeded permutations of block execution order and assert the
//! observed results are byte-identical, turning the repo's "byte-identical
//! at every pipeline depth" claims into a checked property of each kernel.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::contract::AccessContract;
use crate::launch::{BlockSchedule, Device};

/// Which checkers to enable. The four classic checkers default to on;
/// contract conformance is opt-in (it requires contracted launches to be
/// meaningful).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SanitizerConfig {
    /// Detect inter-block conflicting accesses to the same global word.
    pub racecheck: bool,
    /// Detect reads of never-written words.
    pub initcheck: bool,
    /// Report precise kernel/block/index/len on out-of-range accesses.
    pub boundscheck: bool,
    /// Detect shared-memory allocations leaked past block retirement.
    pub leakcheck: bool,
    /// Contract-conformance mode: flag observed accesses escaping the
    /// kernel's declared [`AccessContract`] footprint, and declarations
    /// grossly wider than anything observed. Keeps static contracts from
    /// rotting; off by default and **not** part of [`SanitizerConfig::all`].
    pub conformance: bool,
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        Self::all()
    }
}

impl SanitizerConfig {
    /// Every classic checker enabled (conformance stays opt-in).
    pub fn all() -> Self {
        SanitizerConfig {
            racecheck: true,
            initcheck: true,
            boundscheck: true,
            leakcheck: true,
            conformance: false,
        }
    }

    /// Enable contract-conformance checking on top of this configuration.
    pub fn with_conformance(mut self) -> Self {
        self.conformance = true;
        self
    }
}

/// Which checker produced a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// Inter-block data race on a global word.
    Racecheck,
    /// Read of a never-written word.
    Initcheck,
    /// Out-of-range access.
    Boundscheck,
    /// Shared-memory leak at block retirement.
    Leakcheck,
    /// Observed access escaped the kernel's declared contract footprint.
    Conformance,
    /// Declared contract footprint grossly wider than anything observed.
    Overwide,
}

/// Block id standing in for "the host" (or "not applicable") in a
/// [`Diagnostic`]'s block pair.
pub const HOST: usize = usize::MAX;

/// One finding, with enough context to locate the offending access.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The checker that fired.
    pub kind: CheckKind,
    /// Kernel launch the access happened in (`"host"` for host-side reads).
    pub kernel: String,
    /// Label of the buffer involved (scalar type, logical length, id).
    pub buffer: String,
    /// Word index of the access.
    pub index: usize,
    /// Logical length of the buffer (or allocation size for leaks).
    pub len: usize,
    /// The one or two blocks involved; [`HOST`] where not applicable.
    pub blocks: (usize, usize),
    /// Human-readable description.
    pub detail: String,
}

/// Aggregate finding counts, cheap to copy onto [`crate::DeviceLedger`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SanitizerCounts {
    /// Distinct raced words (per launch, per buffer).
    pub races: u64,
    /// Distinct never-written words read (per buffer).
    pub uninit_reads: u64,
    /// Out-of-range accesses reported.
    pub oob_accesses: u64,
    /// Blocks retired with live shared allocations.
    pub shared_leaks: u64,
    /// Observed accesses escaping their declared contract footprint.
    pub conformance_escapes: u64,
    /// Declared contract footprints grossly wider than observed.
    pub overwide_declarations: u64,
    /// Peak per-block shared-memory bytes observed (leakcheck only).
    pub shared_high_water: u64,
}

impl SanitizerCounts {
    /// Total findings (the high-water mark is a gauge, not a finding).
    pub fn total(&self) -> u64 {
        self.races
            + self.uninit_reads
            + self.oob_accesses
            + self.shared_leaks
            + self.conformance_escapes
            + self.overwide_declarations
    }

    /// Whether no checker fired.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }
}

/// Structured sanitizer findings for one [`Device`].
#[derive(Debug, Default, Clone)]
pub struct SanitizerReport {
    /// Totals across every kernel.
    pub counts: SanitizerCounts,
    /// Per-kernel totals (host-side reads land under `"host"`).
    pub per_kernel: BTreeMap<String, SanitizerCounts>,
    /// First [`MAX_DIAGNOSTICS`] findings, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl SanitizerReport {
    /// Panic with the collected diagnostics if any checker fired.
    ///
    /// # Panics
    /// Panics when the report is not clean.
    pub fn assert_clean(&self, what: &str) {
        assert!(
            self.counts.is_clean(),
            "sanitizer found {} issue(s) in {what}: {:#?}",
            self.counts.total(),
            self.diagnostics
        );
    }
}

/// Cap on retained [`Diagnostic`]s; counts keep accumulating past it.
pub const MAX_DIAGNOSTICS: usize = 64;

/// Shared sanitizer state for one device: configuration, the launch-epoch
/// counter that scopes racecheck to a single launch, and the accumulated
/// report.
pub(crate) struct Sanitizer {
    pub(crate) cfg: SanitizerConfig,
    epoch: AtomicU64,
    next_buffer_id: AtomicU64,
    report: Mutex<SanitizerReport>,
}

impl Sanitizer {
    pub(crate) fn new(cfg: SanitizerConfig) -> Self {
        Sanitizer {
            cfg,
            // Epoch 0 means "no launch yet" in per-word shadow state.
            epoch: AtomicU64::new(0),
            next_buffer_id: AtomicU64::new(0),
            report: Mutex::new(SanitizerReport::default()),
        }
    }

    /// Start a new launch epoch (racecheck state from prior launches is
    /// implicitly invalidated by the epoch bump).
    pub(crate) fn next_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Allocate shadow state for a device buffer of `len` words.
    pub(crate) fn new_shadow(
        self: &Arc<Self>,
        scalar: &'static str,
        len: usize,
        poisoned: bool,
    ) -> Arc<BufferShadow> {
        let id = self.next_buffer_id.fetch_add(1, Ordering::Relaxed);
        let poison = if self.cfg.initcheck {
            vec![if poisoned { !0u64 } else { 0 }; len.div_ceil(64)]
        } else {
            Vec::new()
        };
        let race = if self.cfg.racecheck {
            vec![WordRace::default(); len]
        } else {
            Vec::new()
        };
        Arc::new(BufferShadow {
            san: Arc::clone(self),
            label: format!("{scalar}[{len}]#{id}"),
            len,
            state: Mutex::new(ShadowState { poison, race }),
        })
    }

    pub(crate) fn record(&self, diag: Diagnostic) {
        let mut rep = self.report.lock();
        let per = rep.per_kernel.entry(diag.kernel.clone()).or_default();
        match diag.kind {
            CheckKind::Racecheck => {
                per.races += 1;
                rep.counts.races += 1;
            }
            CheckKind::Initcheck => {
                per.uninit_reads += 1;
                rep.counts.uninit_reads += 1;
            }
            CheckKind::Boundscheck => {
                per.oob_accesses += 1;
                rep.counts.oob_accesses += 1;
            }
            CheckKind::Leakcheck => {
                per.shared_leaks += 1;
                rep.counts.shared_leaks += 1;
            }
            CheckKind::Conformance => {
                per.conformance_escapes += 1;
                rep.counts.conformance_escapes += 1;
            }
            CheckKind::Overwide => {
                per.overwide_declarations += 1;
                rep.counts.overwide_declarations += 1;
            }
        }
        if rep.diagnostics.len() < MAX_DIAGNOSTICS {
            rep.diagnostics.push(diag);
        }
    }

    fn note_shared_high(&self, kernel: &str, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let mut rep = self.report.lock();
        rep.counts.shared_high_water = rep.counts.shared_high_water.max(bytes);
        let per = rep.per_kernel.entry(kernel.to_string()).or_default();
        per.shared_high_water = per.shared_high_water.max(bytes);
    }

    pub(crate) fn counts(&self) -> SanitizerCounts {
        self.report.lock().counts
    }

    pub(crate) fn report(&self) -> SanitizerReport {
        self.report.lock().clone()
    }
}

/// How a kernel touched memory, as seen by the checkers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AccessKind {
    Read,
    Write,
    /// Atomic read-modify-write: counts as a write for initcheck, but only
    /// conflicts with *non-atomic* accesses for racecheck.
    Atomic,
}

/// Per-word racecheck state. Blocks are recorded as `id + 1` (0 = none);
/// [`MULTI`] means "more than one distinct block".
#[derive(Debug, Clone, Copy, Default)]
struct WordRace {
    epoch: u64,
    reader: u64,
    writer: u64,
    atomic: u64,
    raced: bool,
}

const MULTI: u64 = u64::MAX;

/// Record `block` into a participant slot.
fn note(slot: &mut u64, block: u64) {
    if *slot == 0 {
        *slot = block + 1;
    } else if *slot != block + 1 {
        *slot = MULTI;
    }
}

/// If `slot` holds a block other than `block`, return it (decoded; [`HOST`]
/// when several blocks are folded together).
fn other(slot: u64, block: u64) -> Option<usize> {
    if slot == 0 || slot == block + 1 {
        None
    } else if slot == MULTI {
        Some(HOST)
    } else {
        Some((slot - 1) as usize)
    }
}

fn bit_test(bits: &[u64], i: usize) -> bool {
    bits[i >> 6] >> (i & 63) & 1 == 1
}

fn bit_clear(bits: &mut [u64], i: usize) {
    bits[i >> 6] &= !(1 << (i & 63));
}

struct ShadowState {
    /// Initcheck bitset: bit set ⇒ word never written since allocation.
    /// Empty when initcheck is off.
    poison: Vec<u64>,
    /// Racecheck per-word participants. Empty when racecheck is off.
    race: Vec<WordRace>,
}

/// Shadow state attached to one device buffer. Every access — kernel or
/// host — funnels through here when the owning device has a sanitizer.
pub(crate) struct BufferShadow {
    san: Arc<Sanitizer>,
    label: String,
    len: usize,
    state: Mutex<ShadowState>,
}

impl BufferShadow {
    pub(crate) fn label(&self) -> &str {
        &self.label
    }

    /// A kernel access from `block` under launch `epoch`.
    pub(crate) fn kernel_access(
        &self,
        kernel: &str,
        block: usize,
        epoch: u64,
        start: usize,
        n: usize,
        kind: AccessKind,
    ) {
        let mut st = self.state.lock();
        let st = &mut *st;
        let b = block as u64;
        for i in start..start + n {
            if !st.poison.is_empty() {
                if kind != AccessKind::Write && bit_test(&st.poison, i) {
                    self.san.record(Diagnostic {
                        kind: CheckKind::Initcheck,
                        kernel: kernel.to_string(),
                        buffer: self.label.clone(),
                        index: i,
                        len: self.len,
                        blocks: (block, HOST),
                        detail: format!(
                            "kernel `{kernel}` block {block} read {}[{i}] before any write",
                            self.label
                        ),
                    });
                }
                // Any touch defines the word: writes by construction, reads
                // because the finding is reported once per word.
                bit_clear(&mut st.poison, i);
            }
            if !st.race.is_empty() {
                let w = &mut st.race[i];
                if w.epoch != epoch {
                    *w = WordRace {
                        epoch,
                        ..WordRace::default()
                    };
                }
                if !w.raced {
                    let conflict = match kind {
                        // A plain read races with any other-block write.
                        AccessKind::Read => other(w.writer, b).or_else(|| other(w.atomic, b)),
                        // A plain write races with any other-block access.
                        AccessKind::Write => other(w.reader, b)
                            .or_else(|| other(w.writer, b))
                            .or_else(|| other(w.atomic, b)),
                        // Atomics only race with non-atomic accesses.
                        AccessKind::Atomic => other(w.reader, b).or_else(|| other(w.writer, b)),
                    };
                    if let Some(peer) = conflict {
                        w.raced = true;
                        self.san.record(Diagnostic {
                            kind: CheckKind::Racecheck,
                            kernel: kernel.to_string(),
                            buffer: self.label.clone(),
                            index: i,
                            len: self.len,
                            blocks: (block, peer),
                            detail: format!(
                                "kernel `{kernel}`: blocks {block} and {peer} access \
                                 {}[{i}] with a conflicting {kind:?} in one launch",
                                self.label
                            ),
                        });
                    }
                }
                match kind {
                    AccessKind::Read => note(&mut w.reader, b),
                    AccessKind::Write => note(&mut w.writer, b),
                    AccessKind::Atomic => note(&mut w.atomic, b),
                }
            }
        }
    }

    /// A host-side read (download, `get`, span read). Initcheck only — the
    /// host cannot race with a launch in this model.
    pub(crate) fn host_read(&self, start: usize, n: usize) {
        if !self.san.cfg.initcheck {
            return;
        }
        let mut st = self.state.lock();
        if st.poison.is_empty() {
            return;
        }
        for i in start..start + n {
            if bit_test(&st.poison, i) {
                self.san.record(Diagnostic {
                    kind: CheckKind::Initcheck,
                    kernel: "host".to_string(),
                    buffer: self.label.clone(),
                    index: i,
                    len: self.len,
                    blocks: (HOST, HOST),
                    detail: format!("host read {}[{i}] before any write", self.label),
                });
                bit_clear(&mut st.poison, i);
            }
        }
    }

    /// A host-side write (upload, `set`, `clear`): defines the words.
    pub(crate) fn host_write(&self, start: usize, n: usize) {
        if !self.san.cfg.initcheck {
            return;
        }
        let mut st = self.state.lock();
        if st.poison.is_empty() {
            return;
        }
        for i in start..start + n {
            bit_clear(&mut st.poison, i);
        }
    }

    /// Define a span without recording any access — used after a
    /// *contract-verified* native launch, whose plain lanes bypass
    /// per-access instrumentation: the declared write footprints are known
    /// written, but crediting them as host writes would pollute racecheck
    /// participant state.
    pub(crate) fn define_span(&self, start: usize, n: usize) {
        if !self.san.cfg.initcheck {
            return;
        }
        let mut st = self.state.lock();
        if st.poison.is_empty() {
            return;
        }
        for i in start..(start + n).min(self.len) {
            bit_clear(&mut st.poison, i);
        }
    }
}

/// Per-launch sanitizer context threaded into every [`crate::BlockCtx`].
pub(crate) struct LaunchSession<'k> {
    pub(crate) san: &'k Sanitizer,
    pub(crate) epoch: u64,
    pub(crate) kernel: &'k str,
    /// The launch's declared access contract, when one was registered and
    /// conformance checking is on.
    pub(crate) contract: Option<&'k AccessContract>,
    /// Observed per-buffer access hulls (`uid → [lo, hi)`), for the
    /// end-of-launch over-wide declaration check. Empty maps do not
    /// allocate, so uncontracted launches pay nothing.
    pub(crate) observed: Mutex<BTreeMap<u64, (usize, usize)>>,
}

impl<'k> LaunchSession<'k> {
    pub(crate) fn new(
        san: &'k Sanitizer,
        kernel: &'k str,
        contract: Option<&'k AccessContract>,
    ) -> Self {
        LaunchSession {
            san,
            epoch: san.next_epoch(),
            kernel,
            // Conformance is per-config: without it, carry no contract so
            // the per-access fast path stays a single `None` check.
            contract: contract.filter(|_| san.cfg.conformance),
            observed: Mutex::new(BTreeMap::new()),
        }
    }

    /// Check one global-buffer access: precise bounds first, then contract
    /// conformance, then shadow state (if the buffer has any).
    #[allow(clippy::too_many_arguments)] // the hot access path stays flat
    pub(crate) fn global_access(
        &self,
        block: usize,
        uid: u64,
        shadow: Option<&Arc<BufferShadow>>,
        len: usize,
        start: usize,
        n: usize,
        kind: AccessKind,
    ) {
        if self.san.cfg.boundscheck && start + n > len {
            let buffer = shadow.map_or_else(|| "buffer".to_string(), |s| s.label().to_string());
            let detail = format!(
                "boundscheck: kernel `{}` block {block} {kind:?} at {buffer}[{start}..{}] \
                 out of bounds (len {len})",
                self.kernel,
                start + n,
            );
            self.san.record(Diagnostic {
                kind: CheckKind::Boundscheck,
                kernel: self.kernel.to_string(),
                buffer,
                index: start,
                len,
                blocks: (block, HOST),
                detail: detail.clone(),
            });
            panic!("{detail}");
        }
        if let Some(contract) = self.contract {
            self.observed
                .lock()
                .entry(uid)
                .and_modify(|h| {
                    h.0 = h.0.min(start);
                    h.1 = h.1.max(start + n);
                })
                .or_insert((start, start + n));
            if !contract.covers(uid, block, start, n, kind) {
                let buffer = shadow.map_or_else(
                    || {
                        contract
                            .label_of(uid)
                            .map_or_else(|| format!("buf#{uid}[{len}]"), str::to_string)
                    },
                    |s| s.label().to_string(),
                );
                self.san.record(Diagnostic {
                    kind: CheckKind::Conformance,
                    kernel: self.kernel.to_string(),
                    buffer: buffer.clone(),
                    index: start,
                    len,
                    blocks: (block, HOST),
                    detail: format!(
                        "conformance: kernel `{}` block {block} {kind:?} at \
                         {buffer}[{start}..{}] escapes the declared footprint",
                        self.kernel,
                        start + n,
                    ),
                });
            }
        }
        if let Some(sh) = shadow {
            sh.kernel_access(self.kernel, block, self.epoch, start, n, kind);
        }
    }

    /// End-of-launch conformance pass: flag declarations whose hull is
    /// grossly wider than the observed hull (8× plus slack), so contracts
    /// stay tight instead of devolving into blanket `All` claims.
    /// [`crate::contract::Footprint::All`] declarations are exempt — they
    /// *mean* "whole buffer" (read-only tables).
    pub(crate) fn finish_conformance(&self, grid: usize) {
        let Some(contract) = self.contract else {
            return;
        };
        for (&uid, &(olo, ohi)) in self.observed.lock().iter() {
            let Some((dlo, dhi)) = contract.declared_hull(uid, grid) else {
                continue;
            };
            let declared = dhi.saturating_sub(dlo);
            let observed = ohi.saturating_sub(olo);
            if declared > 8 * observed + 1024 {
                let buffer = contract
                    .label_of(uid)
                    .map_or_else(|| format!("buf#{uid}"), str::to_string);
                self.san.record(Diagnostic {
                    kind: CheckKind::Overwide,
                    kernel: self.kernel.to_string(),
                    buffer: buffer.clone(),
                    index: dlo,
                    len: declared,
                    blocks: (HOST, HOST),
                    detail: format!(
                        "conformance: kernel `{}` declares [{dlo}, {dhi}) on {buffer} \
                         but only [{olo}, {ohi}) was observed — tighten the footprint",
                        self.kernel
                    ),
                });
            }
        }
    }

    /// Report one uninitialized shared-memory read.
    pub(crate) fn shared_uninit(&self, block: usize, index: usize, len: usize) {
        self.san.record(Diagnostic {
            kind: CheckKind::Initcheck,
            kernel: self.kernel.to_string(),
            buffer: format!("shared[{len}]"),
            index,
            len,
            blocks: (block, HOST),
            detail: format!(
                "kernel `{}` block {block} read shared[{index}] before any write",
                self.kernel
            ),
        });
    }

    /// Block retirement: record the shared high-water mark and flag leaked
    /// shared allocations.
    ///
    /// # Panics
    /// Panics (after recording the finding) when leakcheck is on and the
    /// block retires with live shared allocations.
    pub(crate) fn block_retire(&self, block: usize, shared_used: usize, shared_high: usize) {
        if !self.san.cfg.leakcheck {
            return;
        }
        self.san.note_shared_high(self.kernel, shared_high as u64);
        if shared_used != 0 {
            let detail = format!(
                "leakcheck: kernel `{}` block {block} retired with {shared_used} bytes \
                 of shared memory still allocated (shared_free missing)",
                self.kernel
            );
            self.san.record(Diagnostic {
                kind: CheckKind::Leakcheck,
                kernel: self.kernel.to_string(),
                buffer: "shared".to_string(),
                index: 0,
                len: shared_used,
                blocks: (block, HOST),
                detail: detail.clone(),
            });
            panic!("{detail}");
        }
    }
}

// ---------------------------------------------------------------------------
// Block-order determinism check
// ---------------------------------------------------------------------------

/// Where a determinism check first observed a divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeterminismDivergence {
    /// Which permutation diverged (0-based).
    pub permutation: usize,
    /// Index of the diverging snapshot in the observation vector.
    pub snapshot: usize,
    /// Word index within that snapshot (`usize::MAX` for a length mismatch).
    pub word: usize,
}

/// Outcome of [`check_block_order_invariance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeterminismReport {
    /// Seeded permutations compared against the parallel baseline.
    pub permutations: usize,
    /// First divergence found, if any.
    pub divergence: Option<DeterminismDivergence>,
}

impl DeterminismReport {
    /// Whether every permutation reproduced the baseline bit-for-bit.
    pub fn is_deterministic(&self) -> bool {
        self.divergence.is_none()
    }

    /// Panic with the divergence location if any permutation diverged.
    ///
    /// # Panics
    /// Panics when a divergence was found.
    pub fn assert_deterministic(&self, what: &str) {
        assert!(
            self.is_deterministic(),
            "block-order divergence in {what} after {} permutation(s): {:?}",
            self.permutations,
            self.divergence
        );
    }
}

/// Run `run` once under the normal parallel block schedule, then under
/// `permutations` seeded sequential block orders, asserting each run's
/// observations are byte-identical to the baseline.
///
/// `run` performs arbitrary device work (uploads, launches, downloads) and
/// returns raw-bit snapshots of whatever results it wants compared — e.g.
/// `v.iter().map(|x| x.to_bits()).collect()` for an `f64` output. Only
/// launches through [`Device::launch`] are permuted; [`Device::launch_seq`]
/// keeps its documented in-order semantics (kernels use it precisely when
/// order matters).
///
/// The device's previous schedule is restored before returning.
pub fn check_block_order_invariance<R>(
    dev: &Device,
    permutations: usize,
    seed: u64,
    mut run: R,
) -> DeterminismReport
where
    R: FnMut(&Device) -> Vec<Vec<u64>>,
{
    let prev = dev.block_schedule();
    dev.set_block_schedule(BlockSchedule::Parallel);
    let baseline = run(dev);
    let mut divergence = None;
    'perms: for p in 0..permutations {
        dev.set_block_schedule(BlockSchedule::Permuted {
            seed: splitmix64(seed.wrapping_add(p as u64)),
        });
        let got = run(dev);
        for (s, (base, new)) in baseline.iter().zip(&got).enumerate() {
            if base.len() != new.len() {
                divergence = Some(DeterminismDivergence {
                    permutation: p,
                    snapshot: s,
                    word: usize::MAX,
                });
                break 'perms;
            }
            if let Some(w) = base.iter().zip(new).position(|(a, b)| a != b) {
                divergence = Some(DeterminismDivergence {
                    permutation: p,
                    snapshot: s,
                    word: w,
                });
                break 'perms;
            }
        }
        if baseline.len() != got.len() {
            divergence = Some(DeterminismDivergence {
                permutation: p,
                snapshot: baseline.len().min(got.len()),
                word: usize::MAX,
            });
            break;
        }
    }
    dev.set_block_schedule(prev);
    DeterminismReport {
        permutations,
        divergence,
    }
}

/// SplitMix64: the permutation stream's seed mixer. Self-contained so the
/// simulator keeps zero dependencies (the `rand` shim lives downstream).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Seeded Fisher–Yates permutation of `0..n`.
pub(crate) fn permuted_order(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed;
    for i in (1..n).rev() {
        state = splitmix64(state);
        let j = (state % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_bijection() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            for seed in [0u64, 1, 0xdead_beef] {
                let p = permuted_order(n, seed);
                let mut seen = vec![false; n];
                for &i in &p {
                    assert!(!seen[i], "duplicate index {i}");
                    seen[i] = true;
                }
                assert_eq!(p.len(), n);
            }
        }
    }

    #[test]
    fn permutations_vary_with_seed() {
        let a = permuted_order(64, splitmix64(1));
        let b = permuted_order(64, splitmix64(2));
        assert_ne!(a, b);
        assert_eq!(a, permuted_order(64, splitmix64(1)), "seeded ⇒ stable");
    }

    #[test]
    fn bitset_ops() {
        let mut bits = vec![!0u64; 2];
        assert!(bit_test(&bits, 0) && bit_test(&bits, 127));
        bit_clear(&mut bits, 64);
        assert!(!bit_test(&bits, 64));
        assert!(bit_test(&bits, 63) && bit_test(&bits, 65));
    }

    #[test]
    fn participant_slots_fold_multiple_blocks() {
        let mut slot = 0u64;
        assert_eq!(other(slot, 3), None);
        note(&mut slot, 3);
        assert_eq!(other(slot, 3), None, "same block is not a peer");
        assert_eq!(other(slot, 4), Some(3));
        note(&mut slot, 5);
        assert_eq!(slot, MULTI);
        assert_eq!(other(slot, 3), Some(HOST), "folded peers decode as HOST");
    }

    #[test]
    fn counts_total_ignores_high_water() {
        let c = SanitizerCounts {
            shared_high_water: 4096,
            ..SanitizerCounts::default()
        };
        assert!(c.is_clean());
        let c = SanitizerCounts {
            races: 1,
            ..SanitizerCounts::default()
        };
        assert_eq!(c.total(), 1);
        assert!(!c.is_clean());
    }
}
