//! Fixed-size log-bucketed latency histograms.
//!
//! The live-introspection layer records every per-window, per-stage,
//! per-kernel, and per-queue-wait duration into a [`Histogram`]: 40
//! power-of-two buckets spanning 1 ns to ~550 s. Recording is two array
//! index operations and a handful of float adds — no allocation, no
//! branching on the observation count — so the hot paths proven
//! allocation-free by `tests/alloc_steady_state.rs` can record freely.
//!
//! Quantile estimates come back as the upper bound of the bucket holding
//! the rank-p observation, clamped to the observed maximum, which bounds
//! the estimate to `[q, 2q]` of the true quantile for any observation
//! ≥ 1 ns (the bucket base). Merging is bucket-wise addition, so lane-
//! and device-local histograms fold together associatively and
//! commutatively — the property the merge proptests pin.

use parking_lot::Mutex;

/// Number of log₂ buckets. Bucket `i` counts observations in
/// `(BASE_SECONDS * 2^(i-1), BASE_SECONDS * 2^i]`; bucket 0 also absorbs
/// everything at or below the base. Observations above the last bound
/// land only in the implicit `+Inf` bucket (count/sum/max still track
/// them).
pub const NUM_BUCKETS: usize = 40;

/// Upper bound of bucket 0, seconds (1 ns).
pub const BASE_SECONDS: f64 = 1e-9;

/// Upper bound of bucket `i`, seconds.
#[inline]
pub fn bucket_upper(i: usize) -> f64 {
    BASE_SECONDS * (1u64 << i) as f64
}

/// A fixed-size log-bucketed histogram of durations in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0.0,
            max: 0.0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a finite observation `v > 0`.
    #[inline]
    fn index(v: f64) -> usize {
        if v <= BASE_SECONDS {
            return 0;
        }
        // log2 gets within a bucket of the right answer; the fixups make
        // the invariant `upper(i-1) < v <= upper(i)` exact at boundaries.
        let mut i = (v / BASE_SECONDS).log2().ceil().clamp(0.0, 63.0) as usize;
        while i > 0 && v <= bucket_upper(i - 1) {
            i -= 1;
        }
        while i < NUM_BUCKETS && v > bucket_upper(i) {
            i += 1;
        }
        i
    }

    /// Record one observation (seconds). Negative and non-finite values
    /// are ignored; zero lands in bucket 0.
    #[inline]
    pub fn record(&mut self, v: f64) {
        self.record_n(v, 1);
    }

    /// Record `n` observations of the same value — the per-window path
    /// records one batch's evenly-sliced window durations in O(1).
    #[inline]
    pub fn record_n(&mut self, v: f64, n: u64) {
        if !v.is_finite() || v < 0.0 || n == 0 {
            return;
        }
        let i = Self::index(v);
        if i < NUM_BUCKETS {
            self.buckets[i] += n;
        }
        self.count += n;
        self.sum += v * n as f64;
        self.max = self.max.max(v);
    }

    /// Fold `other` into `self` (bucket-wise addition; associative and
    /// commutative, so per-lane histograms merge in any order).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations, seconds.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Largest observation, seconds (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Mean observation, seconds (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The estimated `p`-quantile (`0 < p <= 1`), seconds: the upper
    /// bound of the bucket holding the rank-⌈p·count⌉ observation,
    /// clamped to the observed maximum. Within `[q, 2q]` of the true
    /// quantile `q` for observations above the 1 ns bucket base. Returns
    /// 0 for an empty histogram.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        // Rank falls in the +Inf overflow region.
        self.max
    }

    /// Cumulative `(upper_bound, count ≤ upper_bound)` pairs for the
    /// buckets where the cumulative count changes — the minimal classic
    /// Prometheus bucket set (the renderer adds `+Inf`).
    pub fn cumulative_buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let mut cumulative = 0u64;
        self.buckets.iter().enumerate().filter_map(move |(i, &c)| {
            if c == 0 {
                return None;
            }
            cumulative += c;
            Some((bucket_upper(i), cumulative))
        })
    }

    /// `p50/p95/p99/max/count` digest line, the rendering shared by
    /// `gsnp profile`, the run journal, and `gsnp report`.
    pub fn digest(&self) -> HistogramDigest {
        HistogramDigest {
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max,
            count: self.count,
            sum: self.sum,
        }
    }
}

/// Fixed-quantile summary of one [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramDigest {
    /// Median estimate, seconds.
    pub p50: f64,
    /// 95th-percentile estimate, seconds.
    pub p95: f64,
    /// 99th-percentile estimate, seconds.
    pub p99: f64,
    /// Largest observation, seconds.
    pub max: f64,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations, seconds.
    pub sum: f64,
}

/// A [`Histogram`] behind a lock, shared between recording threads (the
/// per-launch tally path, the live `/metrics` endpoint) and snapshot
/// readers. Locking is per *batch* or per *launch* on the paths that use
/// it — never per element — so contention stays negligible.
#[derive(Debug, Default)]
pub struct SharedHistogram {
    inner: Mutex<Histogram>,
}

impl SharedHistogram {
    /// An empty shared histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation (seconds).
    pub fn record(&self, v: f64) {
        self.inner.lock().record(v);
    }

    /// Fold a thread-local histogram in.
    pub fn merge(&self, other: &Histogram) {
        self.inner.lock().merge(other);
    }

    /// Copy out the current state.
    pub fn snapshot(&self) -> Histogram {
        self.inner.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_exact() {
        let mut h = Histogram::new();
        // Exactly on a bucket bound lands in that bucket, one ulp above
        // lands in the next.
        h.record(bucket_upper(10));
        assert_eq!(h.buckets[10], 1);
        h.record(bucket_upper(10) * 1.0000001);
        assert_eq!(h.buckets[11], 1);
        h.record(0.0);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn overflow_and_garbage_observations() {
        let mut h = Histogram::new();
        h.record(1e6); // beyond the last bucket: +Inf region only
        assert_eq!(h.buckets.iter().sum::<u64>(), 0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 1e6);
        assert_eq!(h.quantile(0.5), 1e6);
        h.record(f64::NAN);
        h.record(-1.0);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 1, "non-finite and negative values ignored");
    }

    #[test]
    fn quantiles_bound_the_true_value() {
        let mut h = Histogram::new();
        let values: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-4).collect();
        for &v in &values {
            h.record(v);
        }
        for p in [0.5f64, 0.95, 0.99, 1.0] {
            let rank = ((p * 1000.0).ceil() as usize).clamp(1, 1000);
            let truth = values[rank - 1];
            let est = h.quantile(p);
            assert!(est >= truth, "p{p}: {est} < true {truth}");
            assert!(est <= truth * 2.0, "p{p}: {est} > 2x true {truth}");
        }
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let (mut a, mut b, mut all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for i in 0..500u64 {
            let v = (i as f64 + 1.0) * 3.7e-6;
            if i % 2 == 0 { &mut a } else { &mut b }.record(v);
            all.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.buckets, all.buckets);
        assert_eq!(merged.count(), all.count());
        assert_eq!(merged.max(), all.max());
        // Sums differ only by float addition order.
        assert!((merged.sum() - all.sum()).abs() < 1e-9);
        let mut flipped = b.clone();
        flipped.merge(&a);
        assert_eq!(flipped.buckets, merged.buckets, "merge must commute");
        assert_eq!(flipped.sum(), merged.sum());
    }

    #[test]
    fn shared_histogram_roundtrips() {
        let s = SharedHistogram::new();
        s.record(0.25);
        let mut local = Histogram::new();
        local.record(0.5);
        s.merge(&local);
        let snap = s.snapshot();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.max(), 0.5);
    }
}
