//! Kernel launching.
//!
//! [`Device`] owns a configuration and a cost model and executes kernels:
//! the closure is invoked once per block, blocks are scheduled across a
//! work-stealing thread pool, and each block's locally-tallied counters are
//! flushed into the launch totals when it retires.

use std::time::Instant;

use rayon::prelude::*;

use crate::buffer::{ConstBuffer, DeviceScalar, GlobalBuffer};
use crate::config::DeviceConfig;
use crate::cost::CostModel;
use crate::counters::{AtomicCounters, HwCounters, LaunchStats};
use crate::ctx::BlockCtx;

/// A simulated device: launch target for kernels and owner of the cost
/// model. Cheap to construct; all state is the configuration.
pub struct Device {
    cfg: DeviceConfig,
    cost: CostModel,
}

impl Device {
    /// Create a device with the given configuration.
    pub fn new(cfg: DeviceConfig) -> Self {
        let cost = CostModel::new(cfg.clone());
        Device { cfg, cost }
    }

    /// Convenience: the paper's Tesla M2050.
    pub fn m2050() -> Self {
        Self::new(DeviceConfig::tesla_m2050())
    }

    /// Device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// The analytic cost model bound to this device.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Allocate a zeroed global buffer.
    pub fn alloc<T: DeviceScalar>(&self, len: usize) -> GlobalBuffer<T> {
        GlobalBuffer::zeroed(len)
    }

    /// Upload host data into a new global buffer (H2D bytes are charged to
    /// the *next* launch via [`Device::launch_with_transfers`], or can be
    /// accounted manually; plain `upload` is uncounted for setup data).
    pub fn upload<T: DeviceScalar>(&self, data: &[T]) -> GlobalBuffer<T> {
        GlobalBuffer::from_slice(data)
    }

    /// Download a buffer to the host (uncounted convenience).
    pub fn download<T: DeviceScalar>(&self, buf: &GlobalBuffer<T>) -> Vec<T> {
        buf.to_vec()
    }

    /// Upload into constant memory, enforcing the device's capacity.
    ///
    /// # Panics
    /// Panics if the data exceeds the configured constant-memory size.
    pub fn upload_const<T: Copy + Send + Sync + 'static>(&self, data: &[T]) -> ConstBuffer<T> {
        let bytes = std::mem::size_of_val(data);
        assert!(
            bytes <= self.cfg.constant_mem,
            "constant memory overflow: {} bytes > {} available on {}",
            bytes,
            self.cfg.constant_mem,
            self.cfg.name
        );
        ConstBuffer::from_slice(data)
    }

    /// Launch `grid_dim` blocks of the kernel. The closure runs once per
    /// block with a [`BlockCtx`]; blocks execute in parallel.
    ///
    /// `name` labels the launch for diagnostics only.
    pub fn launch<F>(&self, name: &str, grid_dim: usize, kernel: F) -> LaunchStats
    where
        F: Fn(&mut BlockCtx<'_>) + Sync,
    {
        let _ = name;
        let totals = AtomicCounters::default();
        // Critical path: a block runs on one SM, so the launch can never
        // finish before its heaviest block does. Tracked as f64 bits.
        let max_block = std::sync::atomic::AtomicU64::new(0f64.to_bits());
        let start = Instant::now();
        (0..grid_dim).into_par_iter().for_each(|b| {
            let mut ctx = BlockCtx::new(b, grid_dim, &self.cfg);
            kernel(&mut ctx);
            let counters = ctx.take_counters();
            let block_time = self.cost.compute_time(&counters).max(self.cost.memory_time(&counters));
            let _ = max_block.fetch_update(
                std::sync::atomic::Ordering::Relaxed,
                std::sync::atomic::Ordering::Relaxed,
                |cur| (f64::from_bits(cur) < block_time).then(|| block_time.to_bits()),
            );
            totals.flush(&counters);
        });
        let wall = start.elapsed().as_secs_f64();
        let counters = totals.snapshot();
        let balanced = self.cost.kernel_time(&counters);
        // One block's work executes at a single SM's share of the device.
        let tail = f64::from_bits(max_block.load(std::sync::atomic::Ordering::Relaxed))
            * self.cfg.num_sms as f64
            + self.cfg.launch_overhead
            + self.cost.transfer_time(&counters);
        LaunchStats {
            sim_time: balanced.max(tail),
            counters,
            wall_time: wall,
            grid_dim,
        }
    }

    /// Launch a kernel sequentially (block 0..grid in order, one host
    /// thread). Used when a deterministic block order is required, e.g. for
    /// bitwise-reproducible reductions.
    pub fn launch_seq<F>(&self, name: &str, grid_dim: usize, mut kernel: F) -> LaunchStats
    where
        F: FnMut(&mut BlockCtx<'_>),
    {
        let _ = name;
        let totals = AtomicCounters::default();
        let start = Instant::now();
        for b in 0..grid_dim {
            let mut ctx = BlockCtx::new(b, grid_dim, &self.cfg);
            kernel(&mut ctx);
            totals.flush(&ctx.take_counters());
        }
        let wall = start.elapsed().as_secs_f64();
        let counters = totals.snapshot();
        LaunchStats {
            sim_time: self.cost.kernel_time(&counters),
            counters,
            wall_time: wall,
            grid_dim,
        }
    }

    /// Account an explicit host→device transfer into a stats record.
    pub fn charge_h2d(&self, stats: &mut LaunchStats, bytes: u64) {
        stats.counters.h2d_bytes += bytes;
        stats.sim_time += bytes as f64 / self.cfg.pcie_bw;
    }

    /// Account an explicit device→host transfer into a stats record.
    pub fn charge_d2h(&self, stats: &mut LaunchStats, bytes: u64) {
        stats.counters.d2h_bytes += bytes;
        stats.sim_time += bytes as f64 / self.cfg.pcie_bw;
    }

    /// Estimate time for a counter snapshot without launching.
    pub fn estimate(&self, c: &HwCounters) -> f64 {
        self.cost.kernel_time(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_launch_computes_and_counts() {
        let dev = Device::m2050();
        let n = 4096usize;
        let input = dev.upload(&(0..n as u32).collect::<Vec<_>>());
        let output: GlobalBuffer<u32> = dev.alloc(n);
        let block = 256usize;
        let stats = dev.launch("add_one", n / block, |ctx| {
            let base = ctx.block_idx * block;
            for t in 0..block {
                let v = ctx.ld_co(&input, base + t);
                ctx.st_co(&output, base + t, v + 1);
            }
        });
        let out = dev.download(&output);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
        assert_eq!(stats.counters.g_load_coalesced, n as u64);
        assert_eq!(stats.counters.g_store_coalesced, n as u64);
        assert_eq!(stats.grid_dim, 16);
        assert!(stats.sim_time > 0.0);
    }

    #[test]
    fn sequential_launch_is_deterministic() {
        let dev = Device::m2050();
        let acc: GlobalBuffer<u32> = dev.alloc(1);
        dev.launch_seq("sum", 10, |ctx| {
            let v = ctx.ld_co(&acc, 0);
            ctx.st_co(&acc, 0, v + ctx.block_idx as u32);
        });
        assert_eq!(acc.get(0), 45);
    }

    #[test]
    fn grid_dim_zero_is_a_noop() {
        let dev = Device::m2050();
        let stats = dev.launch("empty", 0, |_ctx| panic!("must not run"));
        assert_eq!(stats.counters.instructions, 0);
    }

    #[test]
    #[should_panic(expected = "constant memory overflow")]
    fn constant_memory_capacity_enforced() {
        let dev = Device::m2050();
        // 64 KB limit; 8193 f64 = 65544 bytes.
        let big = vec![0.0f64; 8193];
        let _ = dev.upload_const(&big);
    }

    #[test]
    fn transfers_are_charged() {
        let dev = Device::m2050();
        let mut stats = LaunchStats::default();
        dev.charge_h2d(&mut stats, 6_000_000_000);
        assert!((stats.sim_time - 1.0).abs() < 1e-9);
        assert_eq!(stats.counters.h2d_bytes, 6_000_000_000);
    }

    #[test]
    fn concurrent_blocks_share_buffers_safely() {
        // Many blocks atomically histogram into one cell.
        let dev = Device::m2050();
        let hist: GlobalBuffer<u64> = dev.alloc(1);
        dev.launch("hist", 64, |ctx| {
            for _ in 0..100 {
                ctx.atomic_add(&hist, 0, 1u64);
            }
        });
        assert_eq!(hist.get(0), 6400);
    }
}
