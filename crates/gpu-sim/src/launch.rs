//! Kernel launching.
//!
//! [`Device`] owns a configuration and a cost model and executes kernels:
//! the closure is invoked once per block, blocks are scheduled across a
//! work-stealing thread pool, and each block's locally-tallied counters are
//! flushed into the launch totals when it retires.
//!
//! Every launch and explicit transfer is also recorded in a thread-safe
//! [`DeviceLedger`], so concurrent pipeline stages sharing one device (the
//! streaming executor in `gsnp-core`) can interleave launches without
//! losing cost accounting.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use rayon::prelude::*;

use crate::backend::BackendTallies;
use crate::buffer::{ConstBuffer, DeviceScalar, GlobalBuffer};
use crate::config::DeviceConfig;
use crate::contract::{verify_contract, AccessContract, ContractLedger, ContractReport, Verdict};
use crate::cost::CostModel;
use crate::counters::{AtomicCounters, HwCounters, LaunchStats};
use crate::ctx::BlockCtx;
use crate::hist::{Histogram, SharedHistogram};
use crate::pool::{BufferPool, PoolStats, PooledBuffer};
use crate::sanitizer::{
    permuted_order, splitmix64, LaunchSession, Sanitizer, SanitizerConfig, SanitizerCounts,
    SanitizerReport,
};
use crate::trace::{NameId, SpanArgs, TraceRecorder, TrackId, TrackKind};

/// How [`Device::launch`] schedules blocks. [`Device::launch_seq`] always
/// runs in ascending order regardless — kernels use it precisely when block
/// order is semantically load-bearing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockSchedule {
    /// Blocks run concurrently on the work-stealing pool (the default, and
    /// the semantics every parallel kernel must be correct under).
    Parallel,
    /// Blocks run sequentially in a seeded pseudo-random order; every
    /// launch draws the next permutation from the seed's stream. Used by
    /// the block-order determinism check
    /// ([`crate::sanitizer::check_block_order_invariance`]).
    Permuted {
        /// Stream seed; the same seed replays the same permutation sequence.
        seed: u64,
    },
}

/// Running totals across every launch and transfer on one [`Device`].
///
/// Unlike the per-call [`LaunchStats`] return values (which each stage
/// aggregates privately), the ledger is shared device state: it is updated
/// under a lock so launches issued from concurrent host threads interleave
/// without dropping counts.
#[derive(Debug, Default, Clone, Copy)]
pub struct DeviceLedger {
    /// Kernel launches issued (sequential launches included).
    pub launches: u64,
    /// Explicit host↔device transfer charges recorded.
    pub transfers: u64,
    /// Total modelled device time, seconds.
    pub sim_time: f64,
    /// Total host wall-clock spent executing kernel bodies, seconds.
    pub wall_time: f64,
    /// Aggregated hardware counters.
    pub counters: HwCounters,
    /// Buffer-pool traffic (hits/misses/high-water); snapshotted from the
    /// device's [`BufferPool`] when the ledger is read.
    pub pool: PoolStats,
    /// Sanitizer finding totals; all-zero unless the device was built with
    /// [`Device::with_sanitizer`] (snapshotted when the ledger is read).
    pub sanitizer: SanitizerCounts,
    /// Per-backend launch and auto-dispatch tallies
    /// (`backend.sim + backend.native == launches`).
    pub backend: BackendTallies,
}

/// Per-kernel launch attribution: how many times a kernel name was
/// launched on a device and how much fixed launch overhead it paid. The
/// batching work optimizes exactly this quantity, so it is first-class
/// observable state rather than something re-derived from traces.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct KernelTally {
    /// Kernel name as passed to [`Device::launch`]/[`Device::launch_seq`].
    pub name: String,
    /// Launches issued under this name (zero-grid launches excluded — they
    /// are device-wide no-ops).
    pub launches: u64,
    /// Total fixed launch overhead charged, seconds. Sequential launches
    /// charge none (their cost model has no overhead term), so they
    /// contribute launches but zero overhead.
    pub overhead_seconds: f64,
    /// How many of `launches` ran on the native backend (the rest ran on
    /// the instrumented simulator).
    pub native_launches: u64,
    /// Total host wall-clock spent executing this kernel's launches,
    /// seconds. Unlike the modelled `overhead_seconds`, this is measured
    /// time and is comparable across backends.
    pub wall_seconds: f64,
    /// Log-bucketed distribution of per-launch wall times (the p50/p95/
    /// p99 latency surface of `gsnp profile` and the `gsnp_kernel_wall_
    /// seconds` exposition). Fixed-size; recording never allocates.
    pub wall_hist: Histogram,
}

impl DeviceLedger {
    fn record(&mut self, stats: &LaunchStats, is_launch: bool) {
        if is_launch {
            self.launches += 1;
            // Only the simulator records through this path; native
            // launches go through `Device::record_native_launch`.
            self.backend.sim += 1;
        } else {
            self.transfers += 1;
        }
        self.sim_time += stats.sim_time;
        self.wall_time += stats.wall_time;
        self.counters += stats.counters;
    }
}

/// Per-device trace state: the shared recorder plus this device's tracks,
/// pre-interned event names, and the simulated-clock cursor.
///
/// Device timelines are stamped with the **simulated device clock**: the
/// cursor starts at zero and every launch/transfer advances it by its
/// modelled time, so concurrent host threads sharing one device serialize
/// into a non-overlapping timeline — exactly what a single CUDA stream's
/// profiler row shows. All the ids below are interned at construction, so
/// the recording hot path never allocates.
struct DeviceTrace {
    rec: Arc<TraceRecorder>,
    kernels: TrackId,
    transfers: TrackId,
    pool_events: TrackId,
    pool_bytes: TrackId,
    bandwidth: TrackId,
    sanitizer_track: TrackId,
    n_h2d: NameId,
    n_d2h: NameId,
    n_pool_hit: NameId,
    n_pool_miss: NameId,
    n_pool_bytes: NameId,
    n_bandwidth: NameId,
    n_races: NameId,
    n_uninit: NameId,
    n_oob: NameId,
    n_leaks: NameId,
    n_contract: NameId,
    /// Simulated device clock, seconds since trace start.
    cursor: Mutex<f64>,
    /// Sanitizer totals at the previous launch, for delta detection.
    last_san: Mutex<SanitizerCounts>,
}

impl DeviceTrace {
    fn new(rec: &Arc<TraceRecorder>, index: usize) -> Self {
        let process = format!("device{index}");
        DeviceTrace {
            kernels: rec.register_track(&process, "kernels", TrackKind::Spans),
            transfers: rec.register_track(&process, "transfers", TrackKind::Spans),
            pool_events: rec.register_track(&process, "pool", TrackKind::Spans),
            pool_bytes: rec.register_track(&process, "pool bytes", TrackKind::Counter),
            bandwidth: rec.register_track(&process, "pcie bandwidth", TrackKind::Counter),
            sanitizer_track: rec.register_track(&process, "sanitizer", TrackKind::Spans),
            n_h2d: rec.intern("h2d"),
            n_d2h: rec.intern("d2h"),
            n_pool_hit: rec.intern("pool_hit"),
            n_pool_miss: rec.intern("pool_miss"),
            n_pool_bytes: rec.intern("pool_outstanding_bytes"),
            n_bandwidth: rec.intern("pcie_bytes_per_sec"),
            n_races: rec.intern("race"),
            n_uninit: rec.intern("uninit_read"),
            n_oob: rec.intern("oob_access"),
            n_leaks: rec.intern("shared_leak"),
            n_contract: rec.intern("contract_refuted"),
            rec: Arc::clone(rec),
            cursor: Mutex::new(0.0),
            last_san: Mutex::new(SanitizerCounts::default()),
        }
    }

    /// Claim `dur` seconds of device time; returns the span's start.
    fn advance(&self, dur: f64) -> f64 {
        let mut cur = self.cursor.lock();
        let start = *cur;
        *cur += dur;
        start
    }

    fn record_kernel(&self, name: &str, stats: &LaunchStats, cost: &CostModel) {
        let ts = self.advance(stats.sim_time);
        self.rec.span(
            self.kernels,
            self.rec.intern(name),
            ts,
            stats.sim_time,
            SpanArgs::Kernel {
                grid: stats.grid_dim as u64,
                compute: cost.compute_time(&stats.counters),
                memory: cost.memory_time(&stats.counters),
                transfer: cost.transfer_time(&stats.counters),
                counters: stats.counters,
            },
        );
    }

    fn record_xfer(&self, h2d: bool, bytes: u64, dt: f64) {
        let ts = self.advance(dt);
        let name = if h2d { self.n_h2d } else { self.n_d2h };
        self.rec
            .span(self.transfers, name, ts, dt, SpanArgs::Xfer { bytes });
        // Square-wave PCIe occupancy: bandwidth while the transfer is in
        // flight, zero once it completes.
        if dt > 0.0 {
            let bw = bytes as f64 / dt;
            self.rec.counter(self.bandwidth, self.n_bandwidth, ts, bw);
            self.rec
                .counter(self.bandwidth, self.n_bandwidth, ts + dt, 0.0);
        }
    }

    fn record_pool(&self, hit: bool, outstanding_bytes: u64) {
        let ts = *self.cursor.lock();
        let name = if hit {
            self.n_pool_hit
        } else {
            self.n_pool_miss
        };
        self.rec.instant(self.pool_events, name, ts);
        self.rec.counter(
            self.pool_bytes,
            self.n_pool_bytes,
            ts,
            outstanding_bytes as f64,
        );
    }

    /// Emit one instant per finding category that grew since the previous
    /// launch (counts live in the metrics snapshot; the timeline marks
    /// *when* a checker first fired around a kernel).
    fn record_sanitizer(&self, counts: SanitizerCounts) {
        let mut last = self.last_san.lock();
        let ts = *self.cursor.lock();
        if counts.races > last.races {
            self.rec.instant(self.sanitizer_track, self.n_races, ts);
        }
        if counts.uninit_reads > last.uninit_reads {
            self.rec.instant(self.sanitizer_track, self.n_uninit, ts);
        }
        if counts.oob_accesses > last.oob_accesses {
            self.rec.instant(self.sanitizer_track, self.n_oob, ts);
        }
        if counts.shared_leaks > last.shared_leaks {
            self.rec.instant(self.sanitizer_track, self.n_leaks, ts);
        }
        *last = counts;
    }

    /// Mark a statically-refuted contract on the timeline (the launch
    /// itself never runs, so this is an instant, not a span).
    fn record_contract_refuted(&self) {
        let ts = *self.cursor.lock();
        self.rec.instant(self.sanitizer_track, self.n_contract, ts);
    }
}

/// A simulated device: launch target for kernels and owner of the cost
/// model. Cheap to construct; all state is the configuration plus the
/// launch ledger.
pub struct Device {
    cfg: DeviceConfig,
    cost: CostModel,
    ledger: Mutex<DeviceLedger>,
    pool: Arc<BufferPool>,
    sanitizer: Option<Arc<Sanitizer>>,
    contracts: Option<ContractLedger>,
    trace: Option<DeviceTrace>,
    schedule: Mutex<BlockSchedule>,
    /// Per-launch counter driving the permuted schedule's seed stream.
    schedule_stream: std::sync::atomic::AtomicU64,
    /// Per-kernel-name launch counts and overhead charges. Names are
    /// interned on first launch; steady-state updates are a linear scan
    /// over a handful of entries and never allocate.
    kernel_tallies: Mutex<Vec<KernelTally>>,
    /// Optional live launch-wall sink (all kernels folded into one
    /// histogram) read by the heartbeat `/metrics` endpoint while a run
    /// is in flight. Shared across the devices of a group.
    launch_hist: Option<Arc<SharedHistogram>>,
}

impl Device {
    /// Create a device with the given configuration.
    pub fn new(cfg: DeviceConfig) -> Self {
        let cost = CostModel::new(cfg.clone());
        Device {
            cfg,
            cost,
            ledger: Mutex::new(DeviceLedger::default()),
            pool: Arc::new(BufferPool::default()),
            sanitizer: None,
            contracts: None,
            trace: None,
            schedule: Mutex::new(BlockSchedule::Parallel),
            schedule_stream: std::sync::atomic::AtomicU64::new(0),
            kernel_tallies: Mutex::new(Vec::new()),
            launch_hist: None,
        }
    }

    /// Convenience: the paper's Tesla M2050.
    pub fn m2050() -> Self {
        Self::new(DeviceConfig::tesla_m2050())
    }

    /// Attach the dynamic checkers (see [`crate::sanitizer`]). Buffers
    /// allocated through this device afterwards get shadow state, and every
    /// launch is checked. Counter traces stay byte-identical — the checkers
    /// never touch [`HwCounters`] — but sanitized execution is slower, so
    /// recorded benchmarks must not enable it.
    pub fn with_sanitizer(mut self, cfg: SanitizerConfig) -> Self {
        self.sanitizer = Some(Arc::new(Sanitizer::new(cfg)));
        self
    }

    /// Whether a sanitizer is attached.
    pub fn sanitizer_enabled(&self) -> bool {
        self.sanitizer.is_some()
    }

    /// Whether the attached sanitizer has contract-conformance checking on.
    pub(crate) fn conformance_enabled(&self) -> bool {
        self.sanitizer.as_ref().is_some_and(|s| s.cfg.conformance)
    }

    /// Enable static contract checking: every contracted launch is
    /// symbolically verified before execution (refutations panic with
    /// structured diagnostics instead of faulting mid-kernel), and every
    /// launch — contracted or not — lands in the per-kernel proof tally
    /// read back through [`Device::contract_report`]. Independent of the
    /// dynamic sanitizer; enable both (with conformance) to also prove the
    /// declarations tight.
    pub fn with_contracts(mut self) -> Self {
        self.contracts = Some(ContractLedger::default());
        self
    }

    /// Whether static contract checking is enabled.
    pub fn contracts_enabled(&self) -> bool {
        self.contracts.is_some()
    }

    /// The accumulated per-kernel proof table (empty without
    /// [`Device::with_contracts`]).
    pub fn contract_report(&self) -> ContractReport {
        self.contracts
            .as_ref()
            .map(ContractLedger::report)
            .unwrap_or_default()
    }

    /// Attach a trace recorder. Every subsequent kernel launch, transfer
    /// charge, pooled allocation, and sanitizer finding is recorded under
    /// the `device{index}` process, stamped with this device's simulated
    /// clock. Track registration and name interning happen here, so the
    /// per-event recording path stays allocation-free.
    pub fn with_trace(mut self, rec: &Arc<TraceRecorder>, index: usize) -> Self {
        self.trace = Some(DeviceTrace::new(rec, index));
        self
    }

    /// Whether a trace recorder is attached.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Attach a shared live launch-wall histogram: every subsequent
    /// launch (simulated or native) also records its wall time there, so
    /// a heartbeat endpoint can expose kernel latency quantiles while
    /// the run executes. Per-kernel tallies are unaffected.
    pub fn with_launch_hist(mut self, hist: Arc<SharedHistogram>) -> Self {
        self.launch_hist = Some(hist);
        self
    }

    /// The accumulated sanitizer findings (`None` without a sanitizer).
    pub fn sanitizer_report(&self) -> Option<SanitizerReport> {
        self.sanitizer.as_ref().map(|s| s.report())
    }

    /// Set how [`Device::launch`] schedules blocks.
    pub fn set_block_schedule(&self, schedule: BlockSchedule) {
        *self.schedule.lock() = schedule;
    }

    /// The current block schedule.
    pub fn block_schedule(&self) -> BlockSchedule {
        *self.schedule.lock()
    }

    /// Attach fresh shadow state to a device-allocated buffer when a
    /// sanitizer is present. `poisoned` marks every word
    /// never-written (the `alloc_pooled_dirty` contract).
    fn attach_shadow<T: DeviceScalar>(&self, buf: &mut GlobalBuffer<T>, poisoned: bool) {
        if let Some(san) = &self.sanitizer {
            buf.set_shadow(san.new_shadow(std::any::type_name::<T>(), buf.len(), poisoned));
        }
    }

    /// Device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// The analytic cost model bound to this device.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Snapshot of the running launch/transfer totals, including buffer
    /// pool hit/miss/high-water counters.
    pub fn ledger(&self) -> DeviceLedger {
        let mut led = *self.ledger.lock();
        led.pool = self.pool.stats();
        led.sanitizer = self
            .sanitizer
            .as_ref()
            .map(|s| s.counts())
            .unwrap_or_default();
        led
    }

    /// Reset the launch ledger (e.g. between benchmark repetitions). Pool
    /// traffic counters reset too; parked buffers stay warm. Per-kernel
    /// tallies reset with the ledger they attribute.
    pub fn reset_ledger(&self) {
        *self.ledger.lock() = DeviceLedger::default();
        self.pool.reset_stats();
        self.kernel_tallies.lock().clear();
    }

    /// Snapshot of the per-kernel launch attribution, sorted by name so
    /// output is stable regardless of which pipeline thread launched first.
    pub fn kernel_launches(&self) -> Vec<KernelTally> {
        let mut t = self.kernel_tallies.lock().clone();
        t.sort_by(|a, b| a.name.cmp(&b.name));
        t
    }

    /// Record one launch of `name` that paid `overhead` seconds of fixed
    /// launch cost. `native` marks launches executed by the native
    /// backend rather than the simulator.
    fn tally_launch(&self, name: &str, overhead: f64, wall: f64, native: bool) {
        let mut tallies = self.kernel_tallies.lock();
        if let Some(t) = tallies.iter_mut().find(|t| t.name == name) {
            t.launches += 1;
            t.overhead_seconds += overhead;
            t.native_launches += u64::from(native);
            t.wall_seconds += wall;
            t.wall_hist.record(wall);
        } else {
            let mut wall_hist = Histogram::new();
            wall_hist.record(wall);
            tallies.push(KernelTally {
                name: name.to_string(),
                launches: 1,
                overhead_seconds: overhead,
                native_launches: u64::from(native),
                wall_seconds: wall,
                wall_hist,
            });
        }
        drop(tallies);
        if let Some(h) = &self.launch_hist {
            h.record(wall);
        }
    }

    /// Record one native-backend launch: it counts on the ledger and the
    /// per-kernel tallies (wall-clock only — no modelled time, no
    /// counters, no trace span; those are simulator observables).
    pub(crate) fn record_native_launch(&self, name: &str, stats: &LaunchStats) {
        {
            let mut led = self.ledger.lock();
            led.launches += 1;
            led.backend.native += 1;
            led.wall_time += stats.wall_time;
        }
        self.tally_launch(name, 0.0, stats.wall_time, true);
    }

    /// Record one auto-dispatch decision (`to_sim` ⇒ the simulator ran
    /// the launch). Tallied on the ledger; when a trace is attached the
    /// decision also lands as an instant on the kernel track at the
    /// device clock's current position.
    pub(crate) fn record_auto_decision(&self, to_sim: bool) {
        {
            let mut led = self.ledger.lock();
            if to_sim {
                led.backend.auto_sim += 1;
            } else {
                led.backend.auto_native += 1;
            }
        }
        if let Some(trace) = &self.trace {
            let ts = *trace.cursor.lock();
            let name = trace.rec.intern(if to_sim {
                "dispatch_sim"
            } else {
                "dispatch_native"
            });
            trace.rec.instant(trace.kernels, name, ts);
        }
    }

    /// The device's buffer pool (enable/disable recycling, read stats).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Emit a pool hit/miss instant plus an occupancy counter sample when
    /// a trace is attached (free otherwise: two atomic loads at most).
    fn trace_pool_event(&self, hit: bool) {
        if let Some(trace) = &self.trace {
            trace.record_pool(hit, self.pool.stats().outstanding_bytes);
        }
    }

    /// Model the device as *occupying* real time: when pacing is enabled,
    /// sleep for the modelled duration, releasing the CPU exactly like a
    /// host thread blocked on a stream synchronization.
    fn pace(&self, sim_time: f64) {
        if self.cfg.pacing > 0.0 && sim_time > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(
                sim_time * self.cfg.pacing,
            ));
        }
    }

    /// Allocate a zeroed global buffer.
    pub fn alloc<T: DeviceScalar>(&self, len: usize) -> GlobalBuffer<T> {
        let mut buf = GlobalBuffer::zeroed(len);
        self.attach_shadow(&mut buf, false);
        buf
    }

    /// Allocate a zeroed buffer through the recycling pool. Semantically
    /// identical to [`Device::alloc`]; steady state reuses parked cells
    /// instead of touching the host allocator.
    pub fn alloc_pooled<T: DeviceScalar>(&self, len: usize) -> PooledBuffer<T> {
        let (mut buf, hit) = self.pool.acquire_observed(len, true);
        self.trace_pool_event(hit);
        self.attach_shadow(buf.global_mut(), false);
        buf
    }

    /// Allocate through the pool *without* zeroing recycled contents, for
    /// buffers every element of which is written before it is read (the
    /// caller's invariant to uphold; fresh cells are zero regardless).
    /// Under initcheck the buffer starts fully poisoned — fresh *or*
    /// recycled — so any read-before-write is reported, not just the ones a
    /// dirty previous tenant happens to expose.
    pub fn alloc_pooled_dirty<T: DeviceScalar>(&self, len: usize) -> PooledBuffer<T> {
        let (mut buf, hit) = self.pool.acquire_observed(len, false);
        self.trace_pool_event(hit);
        self.attach_shadow(buf.global_mut(), true);
        buf
    }

    /// Upload host data into a new global buffer (H2D bytes are charged to
    /// the *next* launch via [`Device::launch_with_transfers`], or can be
    /// accounted manually; plain `upload` is uncounted for setup data).
    pub fn upload<T: DeviceScalar>(&self, data: &[T]) -> GlobalBuffer<T> {
        let mut buf = GlobalBuffer::from_slice(data);
        self.attach_shadow(&mut buf, false);
        buf
    }

    /// Upload host data into a pooled buffer (the recycling counterpart of
    /// [`Device::upload`]); every element is overwritten so no zeroing
    /// sweep is needed.
    pub fn upload_pooled<T: DeviceScalar>(&self, data: &[T]) -> PooledBuffer<T> {
        let (mut buf, hit) = self.pool.acquire_observed::<T>(data.len(), false);
        self.trace_pool_event(hit);
        // Attach poisoned, then let the upload define every word — the
        // same path a kernel write takes, keeping the shadow truthful.
        self.attach_shadow(buf.global_mut(), true);
        buf.write_from(data);
        buf
    }

    /// Download a buffer to the host (uncounted convenience).
    pub fn download<T: DeviceScalar>(&self, buf: &GlobalBuffer<T>) -> Vec<T> {
        buf.to_vec()
    }

    /// Upload into constant memory, enforcing the device's capacity.
    ///
    /// # Panics
    /// Panics if the data exceeds the configured constant-memory size.
    pub fn upload_const<T: Copy + Send + Sync + 'static>(&self, data: &[T]) -> ConstBuffer<T> {
        let bytes = std::mem::size_of_val(data);
        assert!(
            bytes <= self.cfg.constant_mem,
            "constant memory overflow: {} bytes > {} available on {}",
            bytes,
            self.cfg.constant_mem,
            self.cfg.name
        );
        ConstBuffer::from_slice(data)
    }

    /// Open a sanitizer session for one launch (a fresh racecheck epoch
    /// plus the kernel name for diagnostics, and — under conformance — the
    /// launch's declared contract). `None` without a sanitizer.
    fn launch_session<'k>(
        &'k self,
        name: &'k str,
        contract: Option<&'k AccessContract>,
    ) -> Option<LaunchSession<'k>> {
        self.sanitizer
            .as_deref()
            .map(|san| LaunchSession::new(san, name, contract))
    }

    /// Whether a contracted launch should build its declaration at all:
    /// static checking wants it for the proof, conformance wants it for
    /// the observed-⊆-declared comparison. With neither, the builder
    /// closure is dropped unexecuted and a contracted launch costs exactly
    /// what an uncontracted one does.
    fn wants_contract(&self) -> bool {
        self.contracts_enabled() || self.conformance_enabled()
    }

    /// Statically verify a built contract before any lane executes:
    /// verified launches are tallied, refuted launches record their
    /// violations (plus a trace instant) and panic with the structured
    /// diagnostics.
    ///
    /// # Panics
    /// Panics when the contract is refuted.
    pub(crate) fn enforce_contract(&self, name: &str, grid_dim: usize, contract: &AccessContract) {
        match verify_contract(name, contract, grid_dim, self.cfg.shared_mem_per_block) {
            Verdict::Verified => {
                if let Some(ledger) = &self.contracts {
                    ledger.tally_verified(name);
                }
            }
            Verdict::Refuted(violations) => {
                if let Some(ledger) = &self.contracts {
                    ledger.tally_refuted(name, &violations);
                }
                if let Some(trace) = &self.trace {
                    trace.record_contract_refuted();
                }
                let detail: Vec<String> = violations.iter().map(ToString::to_string).collect();
                panic!(
                    "contract refuted for kernel `{name}` (grid {grid_dim}): {}",
                    detail.join("; ")
                );
            }
        }
    }

    /// Tally an uncontracted launch: with static checking enabled it runs
    /// on dynamic trust alone, which the proof table reports as `assumed`.
    pub(crate) fn tally_assumed(&self, name: &str) {
        if let Some(ledger) = &self.contracts {
            ledger.tally_assumed(name);
        }
    }

    /// Launch `grid_dim` blocks of the kernel. The closure runs once per
    /// block with a [`BlockCtx`]; blocks execute in parallel.
    ///
    /// `name` labels the launch for diagnostics only.
    pub fn launch<F>(&self, name: &str, grid_dim: usize, kernel: F) -> LaunchStats
    where
        F: Fn(&mut BlockCtx<'_>) + Sync,
    {
        // An empty grid is a device-wide no-op: no launch overhead, no
        // ledger entry, no trace span. Callers need no empty-input guards.
        if grid_dim == 0 {
            return LaunchStats::default();
        }
        self.tally_assumed(name);
        self.run_launch(name, grid_dim, None, kernel)
    }

    /// Launch with a declared [`AccessContract`]: the builder runs only
    /// when static checking or conformance wants the declaration, the
    /// static analyzer proves (or refutes) it before any lane executes,
    /// and under conformance the dynamic checker verifies observed ⊆
    /// declared.
    ///
    /// # Panics
    /// Panics before executing any block when the contract is refuted.
    pub fn launch_contracted<C, F>(
        &self,
        name: &str,
        grid_dim: usize,
        contract: C,
        kernel: F,
    ) -> LaunchStats
    where
        C: FnOnce() -> AccessContract,
        F: Fn(&mut BlockCtx<'_>) + Sync,
    {
        if grid_dim == 0 {
            return LaunchStats::default();
        }
        let built = self.wants_contract().then(contract);
        if self.contracts_enabled() {
            if let Some(c) = &built {
                self.enforce_contract(name, grid_dim, c);
            }
        }
        self.run_launch(name, grid_dim, built.as_ref(), kernel)
    }

    fn run_launch<F>(
        &self,
        name: &str,
        grid_dim: usize,
        contract: Option<&AccessContract>,
        kernel: F,
    ) -> LaunchStats
    where
        F: Fn(&mut BlockCtx<'_>) + Sync,
    {
        let session = self.launch_session(name, contract);
        let totals = AtomicCounters::default();
        // Critical path: a block runs on one SM, so the launch can never
        // finish before its heaviest block does. Tracked as f64 bits.
        let max_block = std::sync::atomic::AtomicU64::new(0f64.to_bits());
        let start = Instant::now();
        let run_block = |b: usize| {
            let mut ctx = BlockCtx::new(b, grid_dim, &self.cfg, session.as_ref());
            kernel(&mut ctx);
            if let Some(sess) = &session {
                sess.block_retire(b, ctx.shared_used, ctx.shared_high);
            }
            let counters = ctx.take_counters();
            let block_time = self
                .cost
                .compute_time(&counters)
                .max(self.cost.memory_time(&counters));
            let _ = max_block.fetch_update(
                std::sync::atomic::Ordering::Relaxed,
                std::sync::atomic::Ordering::Relaxed,
                |cur| (f64::from_bits(cur) < block_time).then(|| block_time.to_bits()),
            );
            totals.flush(&counters);
        };
        match self.block_schedule() {
            BlockSchedule::Parallel => (0..grid_dim).into_par_iter().for_each(run_block),
            BlockSchedule::Permuted { seed } => {
                let k = self
                    .schedule_stream
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                for b in permuted_order(grid_dim, seed ^ splitmix64(k)) {
                    run_block(b);
                }
            }
        }
        if let Some(sess) = &session {
            sess.finish_conformance(grid_dim);
        }
        let wall = start.elapsed().as_secs_f64();
        let counters = totals.snapshot();
        let balanced = self.cost.kernel_time(&counters);
        // One block's work executes at a single SM's share of the device.
        let tail = f64::from_bits(max_block.load(std::sync::atomic::Ordering::Relaxed))
            * self.cfg.num_sms as f64
            + self.cfg.launch_overhead
            + self.cost.transfer_time(&counters);
        let stats = LaunchStats {
            sim_time: balanced.max(tail),
            counters,
            wall_time: wall,
            grid_dim,
        };
        self.ledger.lock().record(&stats, true);
        self.tally_launch(name, self.cfg.launch_overhead, wall, false);
        self.trace_launch(name, &stats);
        self.pace(stats.sim_time);
        stats
    }

    /// Launch a kernel sequentially (block 0..grid in order, one host
    /// thread). Used when a deterministic block order is required, e.g. for
    /// bitwise-reproducible reductions.
    pub fn launch_seq<F>(&self, name: &str, grid_dim: usize, kernel: F) -> LaunchStats
    where
        F: FnMut(&mut BlockCtx<'_>),
    {
        if grid_dim == 0 {
            return LaunchStats::default();
        }
        self.tally_assumed(name);
        self.run_launch_seq(name, grid_dim, None, kernel)
    }

    /// Sequential counterpart of [`Device::launch_contracted`]. Sequential
    /// launches are single-threaded, so inter-block overlap findings mean
    /// "order-dependent result", not a data race — still a refutation,
    /// because such kernels must declare honestly and stay off the
    /// parallel path.
    ///
    /// # Panics
    /// Panics before executing any block when the contract is refuted.
    pub fn launch_contracted_seq<C, F>(
        &self,
        name: &str,
        grid_dim: usize,
        contract: C,
        kernel: F,
    ) -> LaunchStats
    where
        C: FnOnce() -> AccessContract,
        F: FnMut(&mut BlockCtx<'_>),
    {
        if grid_dim == 0 {
            return LaunchStats::default();
        }
        let built = self.wants_contract().then(contract);
        if self.contracts_enabled() {
            if let Some(c) = &built {
                self.enforce_contract(name, grid_dim, c);
            }
        }
        self.run_launch_seq(name, grid_dim, built.as_ref(), kernel)
    }

    fn run_launch_seq<F>(
        &self,
        name: &str,
        grid_dim: usize,
        contract: Option<&AccessContract>,
        mut kernel: F,
    ) -> LaunchStats
    where
        F: FnMut(&mut BlockCtx<'_>),
    {
        let session = self.launch_session(name, contract);
        let totals = AtomicCounters::default();
        let start = Instant::now();
        for b in 0..grid_dim {
            let mut ctx = BlockCtx::new(b, grid_dim, &self.cfg, session.as_ref());
            kernel(&mut ctx);
            if let Some(sess) = &session {
                sess.block_retire(b, ctx.shared_used, ctx.shared_high);
            }
            totals.flush(&ctx.take_counters());
        }
        if let Some(sess) = &session {
            sess.finish_conformance(grid_dim);
        }
        let wall = start.elapsed().as_secs_f64();
        let counters = totals.snapshot();
        let stats = LaunchStats {
            sim_time: self.cost.kernel_time(&counters),
            counters,
            wall_time: wall,
            grid_dim,
        };
        self.ledger.lock().record(&stats, true);
        self.tally_launch(name, 0.0, wall, false);
        self.trace_launch(name, &stats);
        self.pace(stats.sim_time);
        stats
    }

    /// Record a completed launch into the trace (kernel span on the device
    /// clock, plus sanitizer instants for any checker that fired).
    fn trace_launch(&self, name: &str, stats: &LaunchStats) {
        if let Some(trace) = &self.trace {
            trace.record_kernel(name, stats, &self.cost);
            if let Some(san) = &self.sanitizer {
                trace.record_sanitizer(san.counts());
            }
        }
    }

    /// Account an explicit host→device transfer into a stats record.
    pub fn charge_h2d(&self, stats: &mut LaunchStats, bytes: u64) {
        let dt = bytes as f64 / self.cfg.pcie_bw;
        stats.counters.h2d_bytes += bytes;
        stats.sim_time += dt;
        let charge = LaunchStats {
            sim_time: dt,
            counters: HwCounters {
                h2d_bytes: bytes,
                ..Default::default()
            },
            ..Default::default()
        };
        self.ledger.lock().record(&charge, false);
        if let Some(trace) = &self.trace {
            trace.record_xfer(true, bytes, dt);
        }
        self.pace(dt);
    }

    /// Account an explicit device→host transfer into a stats record.
    pub fn charge_d2h(&self, stats: &mut LaunchStats, bytes: u64) {
        let dt = bytes as f64 / self.cfg.pcie_bw;
        stats.counters.d2h_bytes += bytes;
        stats.sim_time += dt;
        let charge = LaunchStats {
            sim_time: dt,
            counters: HwCounters {
                d2h_bytes: bytes,
                ..Default::default()
            },
            ..Default::default()
        };
        self.ledger.lock().record(&charge, false);
        if let Some(trace) = &self.trace {
            trace.record_xfer(false, bytes, dt);
        }
        self.pace(dt);
    }

    /// Estimate time for a counter snapshot without launching.
    pub fn estimate(&self, c: &HwCounters) -> f64 {
        self.cost.kernel_time(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_launch_computes_and_counts() {
        let dev = Device::m2050();
        let n = 4096usize;
        let input = dev.upload(&(0..n as u32).collect::<Vec<_>>());
        let output: GlobalBuffer<u32> = dev.alloc(n);
        let block = 256usize;
        let stats = dev.launch("add_one", n / block, |ctx| {
            let base = ctx.block_idx * block;
            for t in 0..block {
                let v = ctx.ld_co(&input, base + t);
                ctx.st_co(&output, base + t, v + 1);
            }
        });
        let out = dev.download(&output);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
        assert_eq!(stats.counters.g_load_coalesced, n as u64);
        assert_eq!(stats.counters.g_store_coalesced, n as u64);
        assert_eq!(stats.grid_dim, 16);
        assert!(stats.sim_time > 0.0);
    }

    #[test]
    fn sequential_launch_is_deterministic() {
        let dev = Device::m2050();
        let acc: GlobalBuffer<u32> = dev.alloc(1);
        dev.launch_seq("sum", 10, |ctx| {
            let v = ctx.ld_co(&acc, 0);
            ctx.st_co(&acc, 0, v + ctx.block_idx as u32);
        });
        assert_eq!(acc.get(0), 45);
    }

    #[test]
    fn grid_dim_zero_is_a_noop() {
        let dev = Device::m2050();
        let stats = dev.launch("empty", 0, |_ctx| panic!("must not run"));
        assert_eq!(stats.counters.instructions, 0);
        // Device-wide no-op: no overhead charged, no ledger entry, no
        // per-kernel tally, no trace span.
        assert_eq!(stats.sim_time, 0.0);
        let seq = dev.launch_seq("empty_seq", 0, |_ctx| panic!("must not run"));
        assert_eq!(seq.sim_time, 0.0);
        assert_eq!(dev.ledger().launches, 0);
        assert!(dev.kernel_launches().is_empty());
    }

    #[test]
    fn kernel_tallies_attribute_launches_and_overhead() {
        let dev = Device::m2050();
        let buf: GlobalBuffer<u32> = dev.alloc(64);
        dev.launch("a", 1, |ctx| ctx.st_co(&buf, 0, 1));
        dev.launch("a", 1, |ctx| ctx.st_co(&buf, 1, 1));
        dev.launch_seq("b", 2, |ctx| ctx.st_co(&buf, 2 + ctx.block_idx, 1));
        let tallies = dev.kernel_launches();
        assert_eq!(tallies.len(), 2);
        assert_eq!(tallies[0].name, "a");
        assert_eq!(tallies[0].launches, 2);
        let overhead = dev.config().launch_overhead;
        assert!((tallies[0].overhead_seconds - 2.0 * overhead).abs() < 1e-12);
        // Sequential launches pay no fixed overhead in the cost model.
        assert_eq!(tallies[1].name, "b");
        assert_eq!(tallies[1].launches, 1);
        assert_eq!(tallies[1].overhead_seconds, 0.0);
        dev.reset_ledger();
        assert!(dev.kernel_launches().is_empty());
    }

    #[test]
    #[should_panic(expected = "constant memory overflow")]
    fn constant_memory_capacity_enforced() {
        let dev = Device::m2050();
        // 64 KB limit; 8193 f64 = 65544 bytes.
        let big = vec![0.0f64; 8193];
        let _ = dev.upload_const(&big);
    }

    #[test]
    fn transfers_are_charged() {
        let dev = Device::m2050();
        let mut stats = LaunchStats::default();
        dev.charge_h2d(&mut stats, 6_000_000_000);
        assert!((stats.sim_time - 1.0).abs() < 1e-9);
        assert_eq!(stats.counters.h2d_bytes, 6_000_000_000);
    }

    #[test]
    fn ledger_records_launches_and_transfers() {
        let dev = Device::m2050();
        let buf: GlobalBuffer<u32> = dev.alloc(64);
        dev.launch("a", 2, |ctx| {
            ctx.st_co(&buf, ctx.block_idx, 1);
        });
        let mut stats = LaunchStats::default();
        dev.charge_h2d(&mut stats, 1000);
        let led = dev.ledger();
        assert_eq!(led.launches, 1);
        assert_eq!(led.transfers, 1);
        assert_eq!(led.counters.h2d_bytes, 1000);
        assert!(led.sim_time > 0.0);
        dev.reset_ledger();
        assert_eq!(dev.ledger().launches, 0);
    }

    #[test]
    fn ledger_survives_concurrent_stage_launches() {
        // Launches interleaved from several host threads (as the streaming
        // pipeline's stages do) must all land in the ledger exactly once.
        let dev = Device::m2050();
        let threads = 4;
        let per_thread = 8;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    let buf: GlobalBuffer<u64> = dev.alloc(16);
                    for _ in 0..per_thread {
                        dev.launch("inc", 4, |ctx| {
                            ctx.atomic_add(&buf, 0, 1u64);
                        });
                        let mut st = LaunchStats::default();
                        dev.charge_d2h(&mut st, 128);
                    }
                });
            }
        });
        let led = dev.ledger();
        assert_eq!(led.launches, (threads * per_thread) as u64);
        assert_eq!(led.transfers, (threads * per_thread) as u64);
        assert_eq!(led.counters.d2h_bytes, (threads * per_thread * 128) as u64);
    }

    #[test]
    fn pooled_alloc_recycles_and_ledger_reports_it() {
        let dev = Device::m2050();
        {
            let a: crate::PooledBuffer<u32> = dev.alloc_pooled(1000);
            a.set(5, 99);
        }
        let b: crate::PooledBuffer<u32> = dev.alloc_pooled(1000);
        assert_eq!(b.get(5), 0, "recycled alloc must be zeroed");
        let led = dev.ledger();
        assert_eq!(led.pool.hits, 1);
        assert_eq!(led.pool.misses, 1);
        assert!(led.pool.high_water_bytes >= 1024 * 8);
    }

    #[test]
    fn upload_pooled_matches_upload() {
        let dev = Device::m2050();
        let host: Vec<u32> = (0..500).map(|i| i * 3).collect();
        drop(dev.upload_pooled(&host)); // park cells with live data
        let fresh = dev.upload(&host);
        let pooled = dev.upload_pooled(&host); // recycled, dirty acquire
        assert_eq!(pooled.to_vec(), fresh.to_vec());
        assert_eq!(pooled.len(), host.len());
    }

    #[test]
    fn pooled_buffers_work_as_launch_operands() {
        let dev = Device::m2050();
        let input = dev.upload_pooled(&(0..256u32).collect::<Vec<_>>());
        let output: crate::PooledBuffer<u32> = dev.alloc_pooled(256);
        dev.launch("double", 1, |ctx| {
            for i in 0..256 {
                let v = ctx.ld_co(&input, i);
                ctx.st_co(&output, i, v * 2);
            }
        });
        assert_eq!(output.get(100), 200);
    }

    #[test]
    fn pacing_occupies_real_time() {
        let mut cfg = DeviceConfig::tesla_m2050();
        cfg.pcie_bw = 1e6; // 1 MB/s so a small transfer is visible
        let paced = Device::new(cfg.clone().paced(1.0));
        let mut st = LaunchStats::default();
        let t0 = Instant::now();
        paced.charge_h2d(&mut st, 10_000); // 10 ms modelled
        let elapsed = t0.elapsed().as_secs_f64();
        assert!(elapsed >= 0.009, "paced transfer returned in {elapsed}s");

        let unpaced = Device::new(cfg);
        let mut st = LaunchStats::default();
        let t0 = Instant::now();
        unpaced.charge_h2d(&mut st, 10_000);
        assert!(t0.elapsed().as_secs_f64() < 0.009);
    }

    #[test]
    fn traced_device_records_kernels_transfers_and_pool() {
        use crate::trace::{EventKind, TraceRecorder, TrackId};
        let rec = Arc::new(TraceRecorder::new(256));
        let dev = Device::m2050().with_trace(&rec, 0);
        assert!(dev.trace_enabled());
        let buf: crate::PooledBuffer<u32> = dev.alloc_pooled(64);
        let stats = dev.launch("mark", 2, |ctx| {
            ctx.st_co(&buf, ctx.block_idx, 1);
        });
        let mut st = LaunchStats::default();
        dev.charge_h2d(&mut st, 4096);
        dev.charge_d2h(&mut st, 128);

        let snap = rec.snapshot();
        let track = |thread: &str| {
            TrackId(
                snap.tracks
                    .iter()
                    .position(|t| t.thread == thread)
                    .expect("track registered") as u32,
            )
        };
        // Kernel span carries the launch's exact sim_time and counters.
        let kernels = track("kernels");
        assert!((snap.sum_span_durations(kernels, "mark") - stats.sim_time).abs() < 1e-15);
        let kernel_ev = snap
            .events
            .iter()
            .find(|e| e.track == kernels)
            .expect("kernel span recorded");
        match kernel_ev.kind {
            EventKind::Span {
                args: crate::SpanArgs::Kernel { grid, counters, .. },
                ..
            } => {
                assert_eq!(grid, 2);
                assert_eq!(counters, stats.counters);
            }
            ref other => panic!("expected kernel span, got {other:?}"),
        }
        // Both transfers present; they advance the same device clock, so
        // the d2h span starts where the h2d span ends.
        let transfers = track("transfers");
        assert_eq!(snap.count_events(transfers, "h2d"), 1);
        assert_eq!(snap.count_events(transfers, "d2h"), 1);
        // Pool miss instant + occupancy sample from the pooled alloc.
        let pool = track("pool");
        assert_eq!(snap.count_events(pool, "pool_miss"), 1);
        assert_eq!(
            snap.count_events(track("pool bytes"), "pool_outstanding_bytes"),
            1
        );
        // Device-clock spans on one device never overlap.
        let mut cursor = 0.0f64;
        let mut device_spans: Vec<(f64, f64)> = snap
            .events
            .iter()
            .filter(|e| e.track == kernels || e.track == transfers)
            .filter_map(|e| match e.kind {
                EventKind::Span { dur, .. } => Some((e.ts, dur)),
                _ => None,
            })
            .collect();
        device_spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (ts, dur) in device_spans {
            assert!(
                ts >= cursor - 1e-15,
                "span at {ts} overlaps previous end {cursor}"
            );
            cursor = ts + dur;
        }
    }

    #[test]
    fn untraced_device_counters_match_traced() {
        // Attaching a trace must not perturb the modelled execution.
        let run = |dev: &Device| {
            let buf: GlobalBuffer<u32> = dev.alloc(256);
            dev.launch("sum", 4, |ctx| {
                for i in 0..64 {
                    let v = ctx.ld_co(&buf, ctx.block_idx * 64 + i);
                    ctx.st_co(&buf, ctx.block_idx * 64 + i, v + 1);
                }
            })
        };
        let plain = Device::m2050();
        let rec = Arc::new(crate::TraceRecorder::new(64));
        let traced = Device::m2050().with_trace(&rec, 0);
        let a = run(&plain);
        let b = run(&traced);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.sim_time, b.sim_time);
    }

    #[test]
    fn concurrent_blocks_share_buffers_safely() {
        // Many blocks atomically histogram into one cell.
        let dev = Device::m2050();
        let hist: GlobalBuffer<u64> = dev.alloc(1);
        dev.launch("hist", 64, |ctx| {
            for _ in 0..100 {
                ctx.atomic_add(&hist, 0, 1u64);
            }
        });
        assert_eq!(hist.get(0), 6400);
    }
}
