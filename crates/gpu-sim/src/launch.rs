//! Kernel launching.
//!
//! [`Device`] owns a configuration and a cost model and executes kernels:
//! the closure is invoked once per block, blocks are scheduled across a
//! work-stealing thread pool, and each block's locally-tallied counters are
//! flushed into the launch totals when it retires.
//!
//! Every launch and explicit transfer is also recorded in a thread-safe
//! [`DeviceLedger`], so concurrent pipeline stages sharing one device (the
//! streaming executor in `gsnp-core`) can interleave launches without
//! losing cost accounting.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use rayon::prelude::*;

use crate::buffer::{ConstBuffer, DeviceScalar, GlobalBuffer};
use crate::config::DeviceConfig;
use crate::cost::CostModel;
use crate::counters::{AtomicCounters, HwCounters, LaunchStats};
use crate::ctx::BlockCtx;
use crate::pool::{BufferPool, PoolStats, PooledBuffer};
use crate::sanitizer::{
    permuted_order, splitmix64, LaunchSession, Sanitizer, SanitizerConfig, SanitizerCounts,
    SanitizerReport,
};

/// How [`Device::launch`] schedules blocks. [`Device::launch_seq`] always
/// runs in ascending order regardless — kernels use it precisely when block
/// order is semantically load-bearing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockSchedule {
    /// Blocks run concurrently on the work-stealing pool (the default, and
    /// the semantics every parallel kernel must be correct under).
    Parallel,
    /// Blocks run sequentially in a seeded pseudo-random order; every
    /// launch draws the next permutation from the seed's stream. Used by
    /// the block-order determinism check
    /// ([`crate::sanitizer::check_block_order_invariance`]).
    Permuted {
        /// Stream seed; the same seed replays the same permutation sequence.
        seed: u64,
    },
}

/// Running totals across every launch and transfer on one [`Device`].
///
/// Unlike the per-call [`LaunchStats`] return values (which each stage
/// aggregates privately), the ledger is shared device state: it is updated
/// under a lock so launches issued from concurrent host threads interleave
/// without dropping counts.
#[derive(Debug, Default, Clone, Copy)]
pub struct DeviceLedger {
    /// Kernel launches issued (sequential launches included).
    pub launches: u64,
    /// Explicit host↔device transfer charges recorded.
    pub transfers: u64,
    /// Total modelled device time, seconds.
    pub sim_time: f64,
    /// Total host wall-clock spent executing kernel bodies, seconds.
    pub wall_time: f64,
    /// Aggregated hardware counters.
    pub counters: HwCounters,
    /// Buffer-pool traffic (hits/misses/high-water); snapshotted from the
    /// device's [`BufferPool`] when the ledger is read.
    pub pool: PoolStats,
    /// Sanitizer finding totals; all-zero unless the device was built with
    /// [`Device::with_sanitizer`] (snapshotted when the ledger is read).
    pub sanitizer: SanitizerCounts,
}

impl DeviceLedger {
    fn record(&mut self, stats: &LaunchStats, is_launch: bool) {
        if is_launch {
            self.launches += 1;
        } else {
            self.transfers += 1;
        }
        self.sim_time += stats.sim_time;
        self.wall_time += stats.wall_time;
        self.counters += stats.counters;
    }
}

/// A simulated device: launch target for kernels and owner of the cost
/// model. Cheap to construct; all state is the configuration plus the
/// launch ledger.
pub struct Device {
    cfg: DeviceConfig,
    cost: CostModel,
    ledger: Mutex<DeviceLedger>,
    pool: Arc<BufferPool>,
    sanitizer: Option<Arc<Sanitizer>>,
    schedule: Mutex<BlockSchedule>,
    /// Per-launch counter driving the permuted schedule's seed stream.
    schedule_stream: std::sync::atomic::AtomicU64,
}

impl Device {
    /// Create a device with the given configuration.
    pub fn new(cfg: DeviceConfig) -> Self {
        let cost = CostModel::new(cfg.clone());
        Device {
            cfg,
            cost,
            ledger: Mutex::new(DeviceLedger::default()),
            pool: Arc::new(BufferPool::default()),
            sanitizer: None,
            schedule: Mutex::new(BlockSchedule::Parallel),
            schedule_stream: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Convenience: the paper's Tesla M2050.
    pub fn m2050() -> Self {
        Self::new(DeviceConfig::tesla_m2050())
    }

    /// Attach the dynamic checkers (see [`crate::sanitizer`]). Buffers
    /// allocated through this device afterwards get shadow state, and every
    /// launch is checked. Counter traces stay byte-identical — the checkers
    /// never touch [`HwCounters`] — but sanitized execution is slower, so
    /// recorded benchmarks must not enable it.
    pub fn with_sanitizer(mut self, cfg: SanitizerConfig) -> Self {
        self.sanitizer = Some(Arc::new(Sanitizer::new(cfg)));
        self
    }

    /// Whether a sanitizer is attached.
    pub fn sanitizer_enabled(&self) -> bool {
        self.sanitizer.is_some()
    }

    /// The accumulated sanitizer findings (`None` without a sanitizer).
    pub fn sanitizer_report(&self) -> Option<SanitizerReport> {
        self.sanitizer.as_ref().map(|s| s.report())
    }

    /// Set how [`Device::launch`] schedules blocks.
    pub fn set_block_schedule(&self, schedule: BlockSchedule) {
        *self.schedule.lock() = schedule;
    }

    /// The current block schedule.
    pub fn block_schedule(&self) -> BlockSchedule {
        *self.schedule.lock()
    }

    /// Attach fresh shadow state to a device-allocated buffer when a
    /// sanitizer is present. `poisoned` marks every word
    /// never-written (the `alloc_pooled_dirty` contract).
    fn attach_shadow<T: DeviceScalar>(&self, buf: &mut GlobalBuffer<T>, poisoned: bool) {
        if let Some(san) = &self.sanitizer {
            buf.set_shadow(san.new_shadow(std::any::type_name::<T>(), buf.len(), poisoned));
        }
    }

    /// Device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// The analytic cost model bound to this device.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Snapshot of the running launch/transfer totals, including buffer
    /// pool hit/miss/high-water counters.
    pub fn ledger(&self) -> DeviceLedger {
        let mut led = *self.ledger.lock();
        led.pool = self.pool.stats();
        led.sanitizer = self
            .sanitizer
            .as_ref()
            .map(|s| s.counts())
            .unwrap_or_default();
        led
    }

    /// Reset the launch ledger (e.g. between benchmark repetitions). Pool
    /// traffic counters reset too; parked buffers stay warm.
    pub fn reset_ledger(&self) {
        *self.ledger.lock() = DeviceLedger::default();
        self.pool.reset_stats();
    }

    /// The device's buffer pool (enable/disable recycling, read stats).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Model the device as *occupying* real time: when pacing is enabled,
    /// sleep for the modelled duration, releasing the CPU exactly like a
    /// host thread blocked on a stream synchronization.
    fn pace(&self, sim_time: f64) {
        if self.cfg.pacing > 0.0 && sim_time > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(
                sim_time * self.cfg.pacing,
            ));
        }
    }

    /// Allocate a zeroed global buffer.
    pub fn alloc<T: DeviceScalar>(&self, len: usize) -> GlobalBuffer<T> {
        let mut buf = GlobalBuffer::zeroed(len);
        self.attach_shadow(&mut buf, false);
        buf
    }

    /// Allocate a zeroed buffer through the recycling pool. Semantically
    /// identical to [`Device::alloc`]; steady state reuses parked cells
    /// instead of touching the host allocator.
    pub fn alloc_pooled<T: DeviceScalar>(&self, len: usize) -> PooledBuffer<T> {
        let mut buf = self.pool.acquire(len, true);
        self.attach_shadow(buf.global_mut(), false);
        buf
    }

    /// Allocate through the pool *without* zeroing recycled contents, for
    /// buffers every element of which is written before it is read (the
    /// caller's invariant to uphold; fresh cells are zero regardless).
    /// Under initcheck the buffer starts fully poisoned — fresh *or*
    /// recycled — so any read-before-write is reported, not just the ones a
    /// dirty previous tenant happens to expose.
    pub fn alloc_pooled_dirty<T: DeviceScalar>(&self, len: usize) -> PooledBuffer<T> {
        let mut buf = self.pool.acquire(len, false);
        self.attach_shadow(buf.global_mut(), true);
        buf
    }

    /// Upload host data into a new global buffer (H2D bytes are charged to
    /// the *next* launch via [`Device::launch_with_transfers`], or can be
    /// accounted manually; plain `upload` is uncounted for setup data).
    pub fn upload<T: DeviceScalar>(&self, data: &[T]) -> GlobalBuffer<T> {
        let mut buf = GlobalBuffer::from_slice(data);
        self.attach_shadow(&mut buf, false);
        buf
    }

    /// Upload host data into a pooled buffer (the recycling counterpart of
    /// [`Device::upload`]); every element is overwritten so no zeroing
    /// sweep is needed.
    pub fn upload_pooled<T: DeviceScalar>(&self, data: &[T]) -> PooledBuffer<T> {
        let mut buf = self.pool.acquire::<T>(data.len(), false);
        // Attach poisoned, then let the upload define every word — the
        // same path a kernel write takes, keeping the shadow truthful.
        self.attach_shadow(buf.global_mut(), true);
        buf.write_from(data);
        buf
    }

    /// Download a buffer to the host (uncounted convenience).
    pub fn download<T: DeviceScalar>(&self, buf: &GlobalBuffer<T>) -> Vec<T> {
        buf.to_vec()
    }

    /// Upload into constant memory, enforcing the device's capacity.
    ///
    /// # Panics
    /// Panics if the data exceeds the configured constant-memory size.
    pub fn upload_const<T: Copy + Send + Sync + 'static>(&self, data: &[T]) -> ConstBuffer<T> {
        let bytes = std::mem::size_of_val(data);
        assert!(
            bytes <= self.cfg.constant_mem,
            "constant memory overflow: {} bytes > {} available on {}",
            bytes,
            self.cfg.constant_mem,
            self.cfg.name
        );
        ConstBuffer::from_slice(data)
    }

    /// Open a sanitizer session for one launch (a fresh racecheck epoch
    /// plus the kernel name for diagnostics). `None` without a sanitizer.
    fn launch_session<'k>(&'k self, name: &'k str) -> Option<LaunchSession<'k>> {
        self.sanitizer.as_deref().map(|san| LaunchSession {
            san,
            epoch: san.next_epoch(),
            kernel: name,
        })
    }

    /// Launch `grid_dim` blocks of the kernel. The closure runs once per
    /// block with a [`BlockCtx`]; blocks execute in parallel.
    ///
    /// `name` labels the launch for diagnostics only.
    pub fn launch<F>(&self, name: &str, grid_dim: usize, kernel: F) -> LaunchStats
    where
        F: Fn(&mut BlockCtx<'_>) + Sync,
    {
        let session = self.launch_session(name);
        let totals = AtomicCounters::default();
        // Critical path: a block runs on one SM, so the launch can never
        // finish before its heaviest block does. Tracked as f64 bits.
        let max_block = std::sync::atomic::AtomicU64::new(0f64.to_bits());
        let start = Instant::now();
        let run_block = |b: usize| {
            let mut ctx = BlockCtx::new(b, grid_dim, &self.cfg, session.as_ref());
            kernel(&mut ctx);
            if let Some(sess) = &session {
                sess.block_retire(b, ctx.shared_used, ctx.shared_high);
            }
            let counters = ctx.take_counters();
            let block_time = self
                .cost
                .compute_time(&counters)
                .max(self.cost.memory_time(&counters));
            let _ = max_block.fetch_update(
                std::sync::atomic::Ordering::Relaxed,
                std::sync::atomic::Ordering::Relaxed,
                |cur| (f64::from_bits(cur) < block_time).then(|| block_time.to_bits()),
            );
            totals.flush(&counters);
        };
        match self.block_schedule() {
            BlockSchedule::Parallel => (0..grid_dim).into_par_iter().for_each(run_block),
            BlockSchedule::Permuted { seed } => {
                let k = self
                    .schedule_stream
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                for b in permuted_order(grid_dim, seed ^ splitmix64(k)) {
                    run_block(b);
                }
            }
        }
        let wall = start.elapsed().as_secs_f64();
        let counters = totals.snapshot();
        let balanced = self.cost.kernel_time(&counters);
        // One block's work executes at a single SM's share of the device.
        let tail = f64::from_bits(max_block.load(std::sync::atomic::Ordering::Relaxed))
            * self.cfg.num_sms as f64
            + self.cfg.launch_overhead
            + self.cost.transfer_time(&counters);
        let stats = LaunchStats {
            sim_time: balanced.max(tail),
            counters,
            wall_time: wall,
            grid_dim,
        };
        self.ledger.lock().record(&stats, true);
        self.pace(stats.sim_time);
        stats
    }

    /// Launch a kernel sequentially (block 0..grid in order, one host
    /// thread). Used when a deterministic block order is required, e.g. for
    /// bitwise-reproducible reductions.
    pub fn launch_seq<F>(&self, name: &str, grid_dim: usize, mut kernel: F) -> LaunchStats
    where
        F: FnMut(&mut BlockCtx<'_>),
    {
        let session = self.launch_session(name);
        let totals = AtomicCounters::default();
        let start = Instant::now();
        for b in 0..grid_dim {
            let mut ctx = BlockCtx::new(b, grid_dim, &self.cfg, session.as_ref());
            kernel(&mut ctx);
            if let Some(sess) = &session {
                sess.block_retire(b, ctx.shared_used, ctx.shared_high);
            }
            totals.flush(&ctx.take_counters());
        }
        let wall = start.elapsed().as_secs_f64();
        let counters = totals.snapshot();
        let stats = LaunchStats {
            sim_time: self.cost.kernel_time(&counters),
            counters,
            wall_time: wall,
            grid_dim,
        };
        self.ledger.lock().record(&stats, true);
        self.pace(stats.sim_time);
        stats
    }

    /// Account an explicit host→device transfer into a stats record.
    pub fn charge_h2d(&self, stats: &mut LaunchStats, bytes: u64) {
        let dt = bytes as f64 / self.cfg.pcie_bw;
        stats.counters.h2d_bytes += bytes;
        stats.sim_time += dt;
        let charge = LaunchStats {
            sim_time: dt,
            counters: HwCounters {
                h2d_bytes: bytes,
                ..Default::default()
            },
            ..Default::default()
        };
        self.ledger.lock().record(&charge, false);
        self.pace(dt);
    }

    /// Account an explicit device→host transfer into a stats record.
    pub fn charge_d2h(&self, stats: &mut LaunchStats, bytes: u64) {
        let dt = bytes as f64 / self.cfg.pcie_bw;
        stats.counters.d2h_bytes += bytes;
        stats.sim_time += dt;
        let charge = LaunchStats {
            sim_time: dt,
            counters: HwCounters {
                d2h_bytes: bytes,
                ..Default::default()
            },
            ..Default::default()
        };
        self.ledger.lock().record(&charge, false);
        self.pace(dt);
    }

    /// Estimate time for a counter snapshot without launching.
    pub fn estimate(&self, c: &HwCounters) -> f64 {
        self.cost.kernel_time(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_launch_computes_and_counts() {
        let dev = Device::m2050();
        let n = 4096usize;
        let input = dev.upload(&(0..n as u32).collect::<Vec<_>>());
        let output: GlobalBuffer<u32> = dev.alloc(n);
        let block = 256usize;
        let stats = dev.launch("add_one", n / block, |ctx| {
            let base = ctx.block_idx * block;
            for t in 0..block {
                let v = ctx.ld_co(&input, base + t);
                ctx.st_co(&output, base + t, v + 1);
            }
        });
        let out = dev.download(&output);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
        assert_eq!(stats.counters.g_load_coalesced, n as u64);
        assert_eq!(stats.counters.g_store_coalesced, n as u64);
        assert_eq!(stats.grid_dim, 16);
        assert!(stats.sim_time > 0.0);
    }

    #[test]
    fn sequential_launch_is_deterministic() {
        let dev = Device::m2050();
        let acc: GlobalBuffer<u32> = dev.alloc(1);
        dev.launch_seq("sum", 10, |ctx| {
            let v = ctx.ld_co(&acc, 0);
            ctx.st_co(&acc, 0, v + ctx.block_idx as u32);
        });
        assert_eq!(acc.get(0), 45);
    }

    #[test]
    fn grid_dim_zero_is_a_noop() {
        let dev = Device::m2050();
        let stats = dev.launch("empty", 0, |_ctx| panic!("must not run"));
        assert_eq!(stats.counters.instructions, 0);
    }

    #[test]
    #[should_panic(expected = "constant memory overflow")]
    fn constant_memory_capacity_enforced() {
        let dev = Device::m2050();
        // 64 KB limit; 8193 f64 = 65544 bytes.
        let big = vec![0.0f64; 8193];
        let _ = dev.upload_const(&big);
    }

    #[test]
    fn transfers_are_charged() {
        let dev = Device::m2050();
        let mut stats = LaunchStats::default();
        dev.charge_h2d(&mut stats, 6_000_000_000);
        assert!((stats.sim_time - 1.0).abs() < 1e-9);
        assert_eq!(stats.counters.h2d_bytes, 6_000_000_000);
    }

    #[test]
    fn ledger_records_launches_and_transfers() {
        let dev = Device::m2050();
        let buf: GlobalBuffer<u32> = dev.alloc(64);
        dev.launch("a", 2, |ctx| {
            ctx.st_co(&buf, ctx.block_idx, 1);
        });
        let mut stats = LaunchStats::default();
        dev.charge_h2d(&mut stats, 1000);
        let led = dev.ledger();
        assert_eq!(led.launches, 1);
        assert_eq!(led.transfers, 1);
        assert_eq!(led.counters.h2d_bytes, 1000);
        assert!(led.sim_time > 0.0);
        dev.reset_ledger();
        assert_eq!(dev.ledger().launches, 0);
    }

    #[test]
    fn ledger_survives_concurrent_stage_launches() {
        // Launches interleaved from several host threads (as the streaming
        // pipeline's stages do) must all land in the ledger exactly once.
        let dev = Device::m2050();
        let threads = 4;
        let per_thread = 8;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    let buf: GlobalBuffer<u64> = dev.alloc(16);
                    for _ in 0..per_thread {
                        dev.launch("inc", 4, |ctx| {
                            ctx.atomic_add(&buf, 0, 1u64);
                        });
                        let mut st = LaunchStats::default();
                        dev.charge_d2h(&mut st, 128);
                    }
                });
            }
        });
        let led = dev.ledger();
        assert_eq!(led.launches, (threads * per_thread) as u64);
        assert_eq!(led.transfers, (threads * per_thread) as u64);
        assert_eq!(led.counters.d2h_bytes, (threads * per_thread * 128) as u64);
    }

    #[test]
    fn pooled_alloc_recycles_and_ledger_reports_it() {
        let dev = Device::m2050();
        {
            let a: crate::PooledBuffer<u32> = dev.alloc_pooled(1000);
            a.set(5, 99);
        }
        let b: crate::PooledBuffer<u32> = dev.alloc_pooled(1000);
        assert_eq!(b.get(5), 0, "recycled alloc must be zeroed");
        let led = dev.ledger();
        assert_eq!(led.pool.hits, 1);
        assert_eq!(led.pool.misses, 1);
        assert!(led.pool.high_water_bytes >= 1024 * 8);
    }

    #[test]
    fn upload_pooled_matches_upload() {
        let dev = Device::m2050();
        let host: Vec<u32> = (0..500).map(|i| i * 3).collect();
        drop(dev.upload_pooled(&host)); // park cells with live data
        let fresh = dev.upload(&host);
        let pooled = dev.upload_pooled(&host); // recycled, dirty acquire
        assert_eq!(pooled.to_vec(), fresh.to_vec());
        assert_eq!(pooled.len(), host.len());
    }

    #[test]
    fn pooled_buffers_work_as_launch_operands() {
        let dev = Device::m2050();
        let input = dev.upload_pooled(&(0..256u32).collect::<Vec<_>>());
        let output: crate::PooledBuffer<u32> = dev.alloc_pooled(256);
        dev.launch("double", 1, |ctx| {
            for i in 0..256 {
                let v = ctx.ld_co(&input, i);
                ctx.st_co(&output, i, v * 2);
            }
        });
        assert_eq!(output.get(100), 200);
    }

    #[test]
    fn pacing_occupies_real_time() {
        let mut cfg = DeviceConfig::tesla_m2050();
        cfg.pcie_bw = 1e6; // 1 MB/s so a small transfer is visible
        let paced = Device::new(cfg.clone().paced(1.0));
        let mut st = LaunchStats::default();
        let t0 = Instant::now();
        paced.charge_h2d(&mut st, 10_000); // 10 ms modelled
        let elapsed = t0.elapsed().as_secs_f64();
        assert!(elapsed >= 0.009, "paced transfer returned in {elapsed}s");

        let unpaced = Device::new(cfg);
        let mut st = LaunchStats::default();
        let t0 = Instant::now();
        unpaced.charge_h2d(&mut st, 10_000);
        assert!(t0.elapsed().as_secs_f64() < 0.009);
    }

    #[test]
    fn concurrent_blocks_share_buffers_safely() {
        // Many blocks atomically histogram into one cell.
        let dev = Device::m2050();
        let hist: GlobalBuffer<u64> = dev.alloc(1);
        dev.launch("hist", 64, |ctx| {
            for _ in 0..100 {
                ctx.atomic_add(&hist, 0, 1u64);
            }
        });
        assert_eq!(hist.get(0), 6400);
    }
}
