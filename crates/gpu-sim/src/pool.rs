//! Device buffer recycling (the GSNP `recycle` component, §IV-B).
//!
//! The paper's sparse `base_word` layout makes per-window device state
//! reusable: every window needs the same handful of buffers (packed words,
//! genotype likelihoods, depth counters), so instead of a `cudaMalloc`/
//! `cudaFree` pair per window the production system keeps the allocations
//! alive and re-binds them. [`BufferPool`] models that: freed
//! [`GlobalBuffer`]s park on size-classed free lists (capacities rounded up
//! to powers of two) and are handed back out on the next request of any
//! scalar type — the backing cells are type-erased, so a `u32` word buffer
//! from window *k* can serve as the `f64` likelihood buffer of window
//! *k*+1.
//!
//! The pool can be disabled, in which case every acquire allocates fresh
//! and every release drops — the "fresh path" that the recycling path must
//! stay byte-identical to (and the baseline the pool's hit/miss counters
//! are measured against).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::{raw_zeroed, DeviceScalar, GlobalBuffer, RawCells};

/// Max parked buffers per size class; beyond this, released buffers drop.
const MAX_PARKED_PER_CLASS: usize = 32;

/// Snapshot of pool traffic, surfaced on [`crate::DeviceLedger`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquires satisfied from a free list.
    pub hits: u64,
    /// Acquires that had to allocate fresh cells.
    pub misses: u64,
    /// Raw backing bytes currently checked out of the pool.
    pub outstanding_bytes: u64,
    /// High-water mark of `outstanding_bytes` over the pool's lifetime.
    pub high_water_bytes: u64,
}

impl PoolStats {
    /// Fraction of acquires served without allocating, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// Size-classed free lists of recycled device buffers.
pub struct BufferPool {
    /// Parked buffers with arbitrary previous-tenant contents.
    classes: Mutex<HashMap<usize, Vec<RawCells>>>,
    /// Parked buffers whose *entire capacity* is known to be zero (parked
    /// via [`PooledBuffer::park_zeroed_on_drop`] by self-cleaning kernels,
    /// e.g. `likelihood_comp`'s dep_count reset, §IV-B). Serving a zeroed
    /// acquire from this list skips the zeroing sweep entirely.
    zero_classes: Mutex<HashMap<usize, Vec<RawCells>>>,
    enabled: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
    outstanding: AtomicU64,
    high_water: AtomicU64,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new(true)
    }
}

impl BufferPool {
    /// Create a pool; `enabled = false` gives the fresh-allocation baseline.
    pub fn new(enabled: bool) -> Self {
        BufferPool {
            classes: Mutex::new(HashMap::new()),
            zero_classes: Mutex::new(HashMap::new()),
            enabled: AtomicBool::new(enabled),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            outstanding: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
        }
    }

    /// Turn recycling on or off. Disabling also drains parked buffers so a
    /// subsequent "fresh" measurement is not served stale capacity.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
        if !enabled {
            self.classes.lock().clear();
            self.zero_classes.lock().clear();
        }
    }

    /// Whether recycling is active.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Size class (in cells) for a requested logical length.
    fn class_of(len: usize) -> usize {
        len.max(1).next_power_of_two()
    }

    /// Check a buffer out of the pool.
    ///
    /// `zero` controls whether a recycled buffer's logical prefix is reset
    /// to the default value (matching [`crate::Device::alloc`] semantics).
    /// Callers that overwrite every element before reading — uploads, or
    /// kernels that store before loading — pass `false` and skip the sweep.
    /// Freshly allocated cells are always zeroed either way, so the two
    /// paths are indistinguishable to a correct kernel.
    pub fn acquire<T: DeviceScalar>(self: &Arc<Self>, len: usize, zero: bool) -> PooledBuffer<T> {
        self.acquire_observed(len, zero).0
    }

    /// [`BufferPool::acquire`], additionally reporting whether the request
    /// was a recycling hit (`true`) or allocated fresh cells (`false`).
    /// [`crate::Device`] uses this to emit pool hit/miss trace events.
    pub fn acquire_observed<T: DeviceScalar>(
        self: &Arc<Self>,
        len: usize,
        zero: bool,
    ) -> (PooledBuffer<T>, bool) {
        let class = Self::class_of(len);
        // A zeroed request prefers the known-zero list (no sweep); a dirty
        // request prefers the dirty list, falling back to zeroed cells
        // (which are also fine to overwrite).
        let recycled = if self.enabled() {
            let (first, second) = if zero {
                (&self.zero_classes, &self.classes)
            } else {
                (&self.classes, &self.zero_classes)
            };
            let first_hit = first.lock().get_mut(&class).and_then(Vec::pop);
            match first_hit {
                Some(cells) => Some((cells, zero)),
                None => second
                    .lock()
                    .get_mut(&class)
                    .and_then(Vec::pop)
                    .map(|cells| (cells, !zero)),
            }
        } else {
            None
        };
        let recycled_hit = recycled.is_some();
        // Whether every cell of the backing capacity is zero right now —
        // the precondition for this buffer to re-enter the zeroed list if
        // its user self-cleans (see `park_zeroed_on_drop`).
        let mut fully_zero = true;
        let cells = match recycled {
            Some((cells, from_zero_list)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if !from_zero_list {
                    if zero {
                        // Sweep the whole capacity (not just `len`) so the
                        // fully-zero invariant holds for later parking.
                        for c in &cells {
                            c.store(0, Ordering::Relaxed);
                        }
                    } else {
                        fully_zero = false;
                    }
                }
                cells
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                raw_zeroed(class)
            }
        };
        let bytes = (class * 8) as u64;
        let now = self.outstanding.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.high_water.fetch_max(now, Ordering::Relaxed);
        (
            PooledBuffer {
                buf: Some(GlobalBuffer::from_raw_cells(cells, len)),
                pool: Arc::clone(self),
                park_zeroed: false,
                acquired_fully_zero: fully_zero,
            },
            recycled_hit,
        )
    }

    fn release(&self, cells: RawCells, zeroed: bool) {
        let bytes = (cells.len() * 8) as u64;
        self.outstanding.fetch_sub(bytes, Ordering::Relaxed);
        if !self.enabled() {
            return;
        }
        let class = cells.len();
        let mut classes = if zeroed {
            self.zero_classes.lock()
        } else {
            self.classes.lock()
        };
        let list = classes.entry(class).or_default();
        if list.len() < MAX_PARKED_PER_CLASS {
            list.push(cells);
        }
    }

    /// Snapshot of traffic counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            outstanding_bytes: self.outstanding.load(Ordering::Relaxed),
            high_water_bytes: self.high_water.load(Ordering::Relaxed),
        }
    }

    /// Reset traffic counters (parked buffers are kept).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.high_water
            .store(self.outstanding.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// RAII guard over a pooled [`GlobalBuffer`]: dereferences to the buffer
/// and returns the backing cells to the pool when dropped.
pub struct PooledBuffer<T: DeviceScalar> {
    buf: Option<GlobalBuffer<T>>,
    pool: Arc<BufferPool>,
    park_zeroed: bool,
    acquired_fully_zero: bool,
}

impl<T: DeviceScalar> PooledBuffer<T> {
    /// Declare that this buffer will be all-zero again when dropped, so it
    /// can park on the pool's zeroed free list and serve a future zeroed
    /// acquire without a sweep. The caller promises every slot it wrote
    /// has been reset (the self-cleaning discipline of the paper's sparse
    /// `recycle`, §IV-B); the promise only takes effect if the buffer was
    /// also fully zero when acquired, and is checked in debug builds.
    pub fn park_zeroed_on_drop(&mut self) {
        self.park_zeroed = true;
    }

    /// Mutable access to the wrapped buffer, for [`crate::Device`] to
    /// attach sanitizer shadow state after an acquire.
    pub(crate) fn global_mut(&mut self) -> &mut GlobalBuffer<T> {
        self.buf.as_mut().expect("pooled buffer present until drop")
    }
}

impl<T: DeviceScalar> std::ops::Deref for PooledBuffer<T> {
    type Target = GlobalBuffer<T>;
    fn deref(&self) -> &GlobalBuffer<T> {
        self.buf.as_ref().expect("pooled buffer present until drop")
    }
}

impl<T: DeviceScalar> Drop for PooledBuffer<T> {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            let zeroed = self.park_zeroed && self.acquired_fully_zero;
            let cells = buf.into_raw_cells();
            #[cfg(debug_assertions)]
            if zeroed {
                for (i, c) in cells.iter().enumerate() {
                    debug_assert_eq!(
                        c.load(std::sync::atomic::Ordering::Relaxed),
                        0,
                        "buffer parked as zeroed but cell {i} is dirty"
                    );
                }
            }
            self.pool.release(cells, zeroed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(enabled: bool) -> Arc<BufferPool> {
        Arc::new(BufferPool::new(enabled))
    }

    #[test]
    fn acquire_is_zeroed_like_alloc() {
        let p = pool(true);
        {
            let b = p.acquire::<u32>(10, true);
            for i in 0..10 {
                b.set(i, 7);
            }
        }
        let b = p.acquire::<u32>(10, true);
        assert_eq!(b.to_vec(), vec![0; 10], "recycled buffer must be clean");
    }

    #[test]
    fn recycle_hits_after_release() {
        let p = pool(true);
        drop(p.acquire::<u32>(100, true));
        drop(p.acquire::<f64>(100, true)); // same class, different scalar
        let s = p.stats();
        assert_eq!(s.hits, 1, "second acquire must reuse the first's cells");
        assert_eq!(s.misses, 1);
        assert_eq!(s.outstanding_bytes, 0);
    }

    #[test]
    fn disabled_pool_always_misses() {
        let p = pool(false);
        drop(p.acquire::<u32>(64, true));
        drop(p.acquire::<u32>(64, true));
        let s = p.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn size_classes_round_up_to_pow2() {
        let p = pool(true);
        drop(p.acquire::<u32>(100, true)); // class 128
        let b = p.acquire::<u32>(120, true); // also class 128 -> hit
        assert_eq!(b.capacity(), 128);
        assert_eq!(b.len(), 120);
        assert_eq!(p.stats().hits, 1);
    }

    #[test]
    fn high_water_tracks_peak_outstanding() {
        let p = pool(true);
        let a = p.acquire::<u64>(128, true); // 1 KiB raw
        let b = p.acquire::<u64>(128, true);
        drop(a);
        drop(b);
        let s = p.stats();
        assert_eq!(s.high_water_bytes, 2 * 128 * 8);
        assert_eq!(s.outstanding_bytes, 0);
    }

    #[test]
    fn dirty_acquire_skips_zeroing_but_fresh_is_zero() {
        let p = pool(true);
        let b = p.acquire::<u32>(8, false);
        assert_eq!(b.to_vec(), vec![0; 8], "fresh cells are zero regardless");
    }

    #[test]
    fn hit_rate_reports_fraction() {
        let p = pool(true);
        drop(p.acquire::<u32>(16, true));
        drop(p.acquire::<u32>(16, true));
        assert!((p.stats().hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(PoolStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn disabling_drains_parked_buffers() {
        let p = pool(true);
        drop(p.acquire::<u32>(32, true));
        p.set_enabled(false);
        drop(p.acquire::<u32>(32, true));
        assert_eq!(p.stats().hits, 0);
    }
}
