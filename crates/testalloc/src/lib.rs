//! A counting global allocator for allocation-free-ness tests.
//!
//! [`GlobalAlloc`] is an unsafe trait, so a counting wrapper around
//! [`System`] is necessarily `unsafe` code. The rest of the workspace
//! carries `forbid(unsafe_code)` (see the root `Cargo.toml`); this crate is
//! the quarantine zone — it contains exactly the four delegating methods
//! below and nothing else touches raw pointers.
//!
//! Usage, in an integration test:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOCATOR: testalloc::CountingAlloc = testalloc::CountingAlloc;
//! let before = testalloc::allocs();
//! hot_path();
//! assert_eq!(testalloc::allocs() - before, 0);
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every `alloc`/`alloc_zeroed`/`realloc` (not frees — growth is
/// what the steady-state tests must prove has stopped).
pub struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Total allocation calls since process start.
pub fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}
