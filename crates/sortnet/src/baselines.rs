//! Comparison sorters for Fig. 7(a).
//!
//! * [`parallel_cpu_qsort`] — the paper's OpenMP baseline: a pool of CPU
//!   threads, each quicksorting one small array at a time.
//! * [`sequential_radix`] — stands in for "GPU radix sort applied to many
//!   arrays one after another" (Thrust-style): a correct LSD radix sort
//!   whose per-array fixed costs dominate on tiny inputs, which is exactly
//!   the underutilization the paper measures.

use rayon::prelude::*;

use crate::Span;

/// Sort every span with the work-stealing CPU pool, one array per task.
pub fn parallel_cpu_qsort(data: &mut [u32], spans: &[Span]) {
    // Split the backing buffer into disjoint mutable sub-slices first so
    // each task owns its span.
    let mut slices: Vec<&mut [u32]> = Vec::with_capacity(spans.len());
    let mut rest = data;
    let mut consumed = 0usize;
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| spans[i].0);
    for &i in &order {
        let (off, len) = spans[i];
        assert!(off >= consumed, "spans must be disjoint");
        let (_gap, tail) = rest.split_at_mut(off - consumed);
        let (span, tail) = tail.split_at_mut(len);
        slices.push(span);
        rest = tail;
        consumed = off + len;
    }
    slices.par_iter_mut().for_each(|s| s.sort_unstable());
}

/// LSD radix sort (4 passes of 8 bits) applied to each span sequentially.
pub fn sequential_radix(data: &mut [u32], spans: &[Span]) {
    let max_len = spans.iter().map(|&(_, l)| l).max().unwrap_or(0);
    let mut scratch = vec![0u32; max_len];
    for &(off, len) in spans {
        radix_sort_u32(&mut data[off..off + len], &mut scratch[..len]);
    }
}

/// In-place (via scratch) LSD radix sort of one array.
fn radix_sort_u32(data: &mut [u32], scratch: &mut [u32]) {
    debug_assert_eq!(data.len(), scratch.len());
    if data.len() <= 1 {
        return;
    }
    for shift in [0u32, 8, 16, 24] {
        let mut counts = [0usize; 256];
        for &v in data.iter() {
            counts[((v >> shift) & 0xFF) as usize] += 1;
        }
        let mut pos = [0usize; 256];
        let mut acc = 0;
        for (p, &c) in pos.iter_mut().zip(&counts) {
            *p = acc;
            acc += c;
        }
        for &v in data.iter() {
            let b = ((v >> shift) & 0xFF) as usize;
            scratch[pos[b]] = v;
            pos[b] += 1;
        }
        data.copy_from_slice(scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn workload(seed: u64) -> (Vec<u32>, Vec<Span>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        let mut spans = Vec::new();
        for _ in 0..100 {
            let len = rng.gen_range(0..64usize);
            spans.push((data.len(), len));
            data.extend((0..len).map(|_| rng.gen::<u32>()));
        }
        (data, spans)
    }

    fn check(data: &[u32], spans: &[Span], original: &[u32]) {
        for &(off, len) in spans {
            let mut expect = original[off..off + len].to_vec();
            expect.sort_unstable();
            assert_eq!(&data[off..off + len], &expect[..]);
        }
    }

    #[test]
    fn parallel_qsort_sorts_all_spans() {
        let (mut data, spans) = workload(1);
        let original = data.clone();
        parallel_cpu_qsort(&mut data, &spans);
        check(&data, &spans, &original);
    }

    #[test]
    fn sequential_radix_sorts_all_spans() {
        let (mut data, spans) = workload(2);
        let original = data.clone();
        sequential_radix(&mut data, &spans);
        check(&data, &spans, &original);
    }

    #[test]
    fn radix_handles_extremes() {
        let mut v = vec![u32::MAX, 0, 1, u32::MAX - 1, 0];
        let mut scratch = vec![0; 5];
        radix_sort_u32(&mut v, &mut scratch);
        assert_eq!(v, vec![0, 0, 1, u32::MAX - 1, u32::MAX]);
    }

    proptest! {
        #[test]
        fn radix_matches_std(mut v in proptest::collection::vec(any::<u32>(), 0..128)) {
            let mut expect = v.clone();
            expect.sort_unstable();
            let mut scratch = vec![0; v.len()];
            radix_sort_u32(&mut v, &mut scratch);
            prop_assert_eq!(v, expect);
        }
    }
}
