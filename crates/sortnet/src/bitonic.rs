//! The bitonic compare-exchange network.
//!
//! A bitonic sort over `m` elements (`m` a power of two) is a fixed
//! sequence of `log²m` compare-exchange stages with no data-dependent
//! control flow — which is exactly why it maps onto SIMD lanes so well
//! and why the paper picks it for the batch primitive. Arrays whose
//! length is not a power of two are padded with `u32::MAX`, which an
//! ascending sort parks at the tail.

/// Smallest power of two ≥ `n` (and ≥ 1).
#[inline]
pub fn pad_to_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Enumerate the network's compare-exchange pairs for `m` elements
/// (`m` must be a power of two): yields `(i, j)` meaning "ascending
/// compare-exchange positions i < j".
///
/// Exposed for the kernels, which replay exactly these pairs against
/// shared memory.
pub fn for_each_pair(m: usize, mut cx: impl FnMut(usize, usize)) {
    debug_assert!(m.is_power_of_two());
    let mut k = 2;
    while k <= m {
        let mut j = k / 2;
        while j > 0 {
            for i in 0..m {
                let l = i ^ j;
                if l > i {
                    // Direction: ascending when bit k of i is clear.
                    if i & k == 0 {
                        cx(i, l);
                    } else {
                        cx(l, i);
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
}

/// Number of compare-exchange operations the network performs for `m`
/// (power-of-two) elements: `m/2 · log m · (log m + 1) / 2`.
pub fn network_ops(m: usize) -> u64 {
    if m <= 1 {
        return 0;
    }
    let lg = m.trailing_zeros() as u64;
    (m as u64 / 2) * lg * (lg + 1) / 2
}

/// Sort a small slice in place via the bitonic network (host-side; the
/// device kernels in [`crate::batch`] replay the same pair sequence).
pub fn sort_u32(data: &mut [u32]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let m = pad_to_pow2(n);
    let mut padded = vec![u32::MAX; m];
    padded[..n].copy_from_slice(data);
    for_each_pair(m, |lo, hi| {
        if padded[lo] > padded[hi] {
            padded.swap(lo, hi);
        }
    });
    data.copy_from_slice(&padded[..n]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pad_rounds_up() {
        assert_eq!(pad_to_pow2(0), 1);
        assert_eq!(pad_to_pow2(1), 1);
        assert_eq!(pad_to_pow2(2), 2);
        assert_eq!(pad_to_pow2(3), 4);
        assert_eq!(pad_to_pow2(64), 64);
        assert_eq!(pad_to_pow2(65), 128);
    }

    #[test]
    fn network_op_counts() {
        assert_eq!(network_ops(1), 0);
        assert_eq!(network_ops(2), 1);
        assert_eq!(network_ops(4), 6);
        assert_eq!(network_ops(8), 24);
        // Cross-check against the enumerated pairs.
        for m in [2usize, 4, 8, 16, 64, 256] {
            let mut count = 0u64;
            for_each_pair(m, |_, _| count += 1);
            assert_eq!(count, network_ops(m), "m = {m}");
        }
    }

    #[test]
    fn sorts_fixed_cases() {
        let mut v = vec![5u32, 1, 4, 2, 3];
        sort_u32(&mut v);
        assert_eq!(v, vec![1, 2, 3, 4, 5]);

        let mut v = vec![u32::MAX, 0, u32::MAX, 7];
        sort_u32(&mut v);
        assert_eq!(v, vec![0, 7, u32::MAX, u32::MAX]);

        let mut v: Vec<u32> = vec![];
        sort_u32(&mut v);
        let mut v = vec![9u32];
        sort_u32(&mut v);
        assert_eq!(v, vec![9]);
    }

    proptest! {
        #[test]
        fn sorts_like_std(mut v in proptest::collection::vec(any::<u32>(), 0..200)) {
            let mut expect = v.clone();
            expect.sort_unstable();
            sort_u32(&mut v);
            prop_assert_eq!(v, expect);
        }
    }
}
