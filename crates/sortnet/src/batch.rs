//! The batch-sort primitive (§IV-C).
//!
//! Sorts many equal-capacity small arrays in one kernel: each thread block
//! handles one or more arrays, staging each through a shared-memory tile
//! padded to a power of two with `u32::MAX`, replaying the bitonic network
//! there, and writing the sorted prefix back. When the requested capacity
//! does not fit in shared memory the kernel falls back to sorting in
//! global memory (the multipass heuristic of He et al. keeps this path
//! cold for GSNP's workloads).

use gpu_sim::{
    AccessContract, BlockInterval, ComputeBackend, Footprint, GlobalBuffer, LaunchStats,
};

use crate::bitonic::{for_each_pair, pad_to_pow2};
use crate::Span;

/// The per-block footprint of a batch sort: block `b` reads and writes
/// exactly the spans in its group, nothing else. Overlapping spans handed
/// to different blocks therefore surface as an inter-block overlap
/// refutation before the kernel runs.
fn group_footprint(spans: &[Span], apb: usize) -> Footprint {
    let grid = spans.len().div_ceil(apb);
    let mut intervals = Vec::with_capacity(spans.len());
    for b in 0..grid {
        let first = b * apb;
        let last = (first + apb).min(spans.len());
        for &(off, len) in &spans[first..last] {
            intervals.push(BlockInterval {
                block: b,
                lo: off,
                hi: off + len,
            });
        }
    }
    Footprint::per_block(intervals)
}

/// Sort every span of `data` in place on the device.
///
/// * `capacity` — per-array staging capacity; every span's length must be
///   ≤ `capacity`. Rounded up to a power of two internally.
/// * `arrays_per_block` — how many arrays one block processes (the paper
///   packs several small arrays per block to keep SMs busy).
///
/// # Panics
/// Panics if a span exceeds `capacity` or runs past the end of `data`.
pub fn batch_sort<B: ComputeBackend>(
    dev: &B,
    data: &GlobalBuffer<u32>,
    spans: &[Span],
    capacity: usize,
    arrays_per_block: usize,
) -> LaunchStats {
    // No empty-spans guard needed: a zero-span list yields a zero grid,
    // which the device treats as a launch-free no-op.
    let apb = arrays_per_block.max(1);
    let m = pad_to_pow2(capacity);
    for &(off, len) in spans {
        assert!(len <= m, "span of length {len} exceeds batch capacity {m}");
        assert!(off + len <= data.len(), "span out of bounds");
    }
    let grid = spans.len().div_ceil(apb);
    let shared_elems = dev.config().shared_mem_per_block / std::mem::size_of::<u32>();

    if m <= shared_elems {
        dev.launch_contracted(
            "batch_sort_shared",
            grid,
            || {
                AccessContract::default()
                    .read_write(data, group_footprint(spans, apb))
                    .shared::<u32>(m)
            },
            |ctx| {
                let first = ctx.block_idx() * apb;
                let last = (first + apb).min(spans.len());
                let mut tile = ctx.shared_alloc::<u32>(m);
                for &(off, len) in &spans[first..last] {
                    // Metadata fetch for the span descriptor.
                    ctx.add_inst(2);
                    // Stage: coalesced load of the array, MAX padding beyond.
                    tile.stage_co(ctx, data, off, 0, len);
                    tile.fill_span(ctx, len, m, u32::MAX);
                    // The network runs entirely in shared memory; the fused
                    // compare-exchange tallies the same counters as scalar
                    // read/read(/write/write) sequences. Handing the whole
                    // network to the tile lets the native backend sort the
                    // lanes directly instead of replaying every pair.
                    tile.sort_network(ctx, m, |cx| for_each_pair(m, cx));
                    // Write back the real prefix.
                    tile.flush_co(ctx, data, 0, off, len);
                }
                ctx.shared_free(tile);
            },
        )
    } else {
        // Oversized arrays: compare-exchange directly in global memory.
        dev.launch_contracted(
            "batch_sort_global",
            grid,
            || AccessContract::default().read_write(data, group_footprint(spans, apb)),
            |ctx| {
                let first = ctx.block_idx() * apb;
                let last = (first + apb).min(spans.len());
                for &(off, len) in &spans[first..last] {
                    ctx.add_inst(2);
                    let mp = pad_to_pow2(len);
                    for_each_pair(mp, |lo, hi| {
                        ctx.add_inst(1);
                        if lo >= len || hi >= len {
                            return; // virtual MAX padding: no exchange needed
                        }
                        let a = ctx.ld_rand(data, off + lo);
                        let b = ctx.ld_rand(data, off + hi);
                        if a > b {
                            ctx.st_rand(data, off + lo, b);
                            ctx.st_rand(data, off + hi, a);
                        }
                    });
                }
            },
        )
    }
}

/// One launch in which every block sorts its group of arrays padded only
/// to the *group's* largest size — the "non-equal" dispatch of Fig. 7(b).
/// SIMD lockstep means every array in a block pays the network of the
/// largest array grouped with it, which is exactly the workload imbalance
/// the multipass scheduler removes.
pub fn batch_sort_blockmax<B: ComputeBackend>(
    dev: &B,
    data: &GlobalBuffer<u32>,
    spans: &[Span],
    arrays_per_block: usize,
) -> LaunchStats {
    let apb = arrays_per_block.max(1);
    for &(off, len) in spans {
        assert!(off + len <= data.len(), "span out of bounds");
    }
    let grid = spans.len().div_ceil(apb);
    let shared_elems = dev.config().shared_mem_per_block / std::mem::size_of::<u32>();
    dev.launch_contracted(
        "batch_sort_blockmax",
        grid,
        || {
            // Worst-case tile over all block groups: blocks whose padded
            // group maximum exceeds shared capacity take the global path
            // and allocate nothing, so they don't raise the declaration.
            let tile_worst = (0..grid)
                .map(|b| {
                    let first = b * apb;
                    let last = (first + apb).min(spans.len());
                    let cap = spans[first..last]
                        .iter()
                        .map(|&(_, l)| l)
                        .max()
                        .unwrap_or(1);
                    pad_to_pow2(cap)
                })
                .filter(|&m| m <= shared_elems)
                .max()
                .unwrap_or(0);
            AccessContract::default()
                .read_write(data, group_footprint(spans, apb))
                .shared::<u32>(tile_worst)
        },
        |ctx| {
            let first = ctx.block_idx() * apb;
            let last = (first + apb).min(spans.len());
            let group = &spans[first..last];
            let cap = group.iter().map(|&(_, l)| l).max().unwrap_or(1);
            let m = pad_to_pow2(cap);
            if m <= shared_elems {
                let mut tile = ctx.shared_alloc::<u32>(m);
                for &(off, len) in group {
                    ctx.add_inst(2);
                    tile.stage_co(ctx, data, off, 0, len);
                    tile.fill_span(ctx, len, m, u32::MAX);
                    tile.sort_network(ctx, m, |cx| for_each_pair(m, cx));
                    tile.flush_co(ctx, data, 0, off, len);
                }
                ctx.shared_free(tile);
            } else {
                for &(off, len) in group {
                    ctx.add_inst(2);
                    let mp = pad_to_pow2(len);
                    for_each_pair(mp, |lo, hi| {
                        ctx.add_inst(1);
                        if lo >= len || hi >= len {
                            return;
                        }
                        let a = ctx.ld_rand(data, off + lo);
                        let b = ctx.ld_rand(data, off + hi);
                        if a > b {
                            ctx.st_rand(data, off + lo, b);
                            ctx.st_rand(data, off + hi, a);
                        }
                    });
                }
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Device;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_sorted(dev: &Device, data: &GlobalBuffer<u32>, spans: &[Span], original: &[u32]) {
        let out = dev.download(data);
        for &(off, len) in spans {
            let mut expect = original[off..off + len].to_vec();
            expect.sort_unstable();
            assert_eq!(&out[off..off + len], &expect[..], "span at {off}");
        }
    }

    #[test]
    fn sorts_equal_sized_arrays() {
        let dev = Device::m2050();
        let mut rng = StdRng::seed_from_u64(1);
        let host: Vec<u32> = (0..1024).map(|_| rng.gen()).collect();
        let data = dev.upload(&host);
        let spans: Vec<Span> = (0..64).map(|i| (i * 16, 16)).collect();
        let stats = batch_sort(&dev, &data, &spans, 16, 4);
        check_sorted(&dev, &data, &spans, &host);
        assert!(
            stats.counters.s_load > 0,
            "must stage through shared memory"
        );
        assert_eq!(stats.grid_dim, 16);
    }

    #[test]
    fn sorts_varying_lengths_under_capacity() {
        let dev = Device::m2050();
        let host: Vec<u32> = (0..100u32).rev().collect();
        let data = dev.upload(&host);
        let spans = vec![(0usize, 1usize), (1, 7), (8, 13), (21, 32), (53, 47)];
        batch_sort(&dev, &data, &spans, 47, 2);
        check_sorted(&dev, &data, &spans, &host);
    }

    #[test]
    fn empty_span_list_is_noop() {
        let dev = Device::m2050();
        let data = dev.upload(&[3u32, 1]);
        let stats = batch_sort(&dev, &data, &[], 8, 4);
        assert_eq!(stats.counters.instructions, 0);
        assert_eq!(dev.download(&data), vec![3, 1]);
        // Zero-grid launches are suppressed device-wide: no overhead, no
        // ledger entry.
        assert_eq!(dev.ledger().launches, 0);
    }

    #[test]
    fn oversized_capacity_falls_back_to_global() {
        let dev = Device::m2050();
        // 16384 u32 = 64 KB > 48 KB shared.
        let n = 16384usize;
        let host: Vec<u32> = (0..n as u32).rev().collect();
        let data = dev.upload(&host);
        let spans = vec![(0usize, n)];
        let stats = batch_sort(&dev, &data, &spans, n, 1);
        check_sorted(&dev, &data, &spans, &host);
        assert_eq!(stats.counters.s_load, 0, "global path must not use shared");
        assert!(stats.counters.g_load_random > 0);
    }

    #[test]
    #[should_panic(expected = "exceeds batch capacity")]
    fn span_longer_than_capacity_panics() {
        let dev = Device::m2050();
        let data = dev.upload(&[1u32; 32]);
        batch_sort(&dev, &data, &[(0, 32)], 8, 1);
    }

    #[test]
    #[should_panic(expected = "span out of bounds")]
    fn span_out_of_bounds_panics() {
        let dev = Device::m2050();
        let data = dev.upload(&[1u32; 8]);
        batch_sort(&dev, &data, &[(4, 8)], 8, 1);
    }

    #[test]
    fn batch_sort_contracts_verify_under_conformance() {
        use gpu_sim::{DeviceConfig, SanitizerConfig};
        let dev = gpu_sim::Device::new(DeviceConfig::tesla_m2050())
            .with_sanitizer(SanitizerConfig::all().with_conformance())
            .with_contracts();
        let mut rng = StdRng::seed_from_u64(9);
        let host: Vec<u32> = (0..1024).map(|_| rng.gen()).collect();
        let data = dev.upload(&host);
        let spans: Vec<Span> = (0..64).map(|i| (i * 16, 16)).collect();
        batch_sort(&dev, &data, &spans, 16, 4);
        check_sorted(&dev, &data, &spans, &host);
        let varied = vec![(0usize, 1usize), (1, 7), (8, 13), (21, 32), (53, 47)];
        batch_sort_blockmax(&dev, &data, &varied, 2);

        let report = dev.contract_report();
        let totals = report.totals();
        assert!(totals.verified > 0);
        assert_eq!(totals.refuted, 0, "{:?}", report.diagnostics);
        assert_eq!(totals.assumed, 0);
        let counts = dev.sanitizer_report().unwrap().counts;
        assert_eq!(counts.conformance_escapes, 0);
        assert_eq!(counts.overwide_declarations, 0);
    }

    #[test]
    fn overlapping_spans_across_blocks_are_refuted() {
        use gpu_sim::SanitizerConfig;
        let dev = Device::m2050().with_sanitizer(SanitizerConfig::all());
        let dev = dev.with_contracts();
        let data = dev.upload(&(0..64u32).rev().collect::<Vec<_>>());
        // Two blocks (one span each) whose spans overlap at [8, 16): a
        // write/write hazard the static sweep must catch pre-launch.
        let spans = vec![(0usize, 16usize), (8, 16)];
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            batch_sort(&dev, &data, &spans, 16, 1);
        }))
        .expect_err("overlapping spans must refute");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("contract refuted"), "{msg}");
        let report = dev.contract_report();
        assert_eq!(report.totals().refuted, 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn batch_sort_matches_std(
            lens in proptest::collection::vec(0usize..40, 1..20),
            seed in any::<u64>(),
        ) {
            let dev = Device::m2050();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut host = Vec::new();
            let mut spans = Vec::new();
            for &len in &lens {
                spans.push((host.len(), len));
                host.extend((0..len).map(|_| rng.gen::<u32>()));
            }
            let cap = lens.iter().copied().max().unwrap_or(1);
            let data = dev.upload(&host);
            batch_sort(&dev, &data, &spans, cap.max(1), 3);
            check_sorted(&dev, &data, &spans, &host);
        }
    }
}
