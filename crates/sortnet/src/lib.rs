//! # sortnet — sorting a huge number of tiny arrays
//!
//! GSNP must restore each site's sparse `base_word` array to canonical
//! order: up to billions of arrays, each only tens of elements (§IV-C).
//! Classic GPU sorts are tuned for one large array and underutilize the
//! hardware here, so the paper builds:
//!
//! * [`bitonic`] — the in-place compare-exchange network primitive.
//! * [`batch`] — a batch-sort kernel: each block loads one or more
//!   equal-capacity arrays into shared memory, runs the network, and
//!   writes back (He et al.'s shared-memory heuristic).
//! * [`multipass`] — the paper's scheduler: arrays are bucketed into size
//!   classes `[0,1], (1,8], (8,16], (16,32], (32,64], (64,…]` and each
//!   class is sorted in its own pass so that SIMD lanes don't waste work
//!   padding small arrays to the global maximum. Also provides the
//!   `single-pass` and `non-equal` strawmen of Fig. 7(b).
//! * [`baselines`] — the comparison points of Fig. 7(a): a parallel CPU
//!   quicksort (one array per thread) and a sequential per-array radix
//!   sort standing in for "GPU radix sort, arrays sorted one at a time".

pub mod baselines;
pub mod batch;
pub mod bitonic;
pub mod multipass;

pub use batch::batch_sort;
pub use multipass::{
    multipass_sort, multipass_sort_into, multipass_sort_with_bounds,
    multipass_sort_with_bounds_into, noneq_sort, single_pass_sort, ClassTally, MultipassReport,
    MultipassScratch, PASS_BOUNDS,
};

/// A sub-array to sort: `(offset, len)` into a shared backing buffer.
pub type Span = (usize, usize);
