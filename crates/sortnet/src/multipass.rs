//! Multipass size-class scheduling (§IV-C, Fig. 7b).
//!
//! `base_word` arrays vary in size site by site. Feeding them all to the
//! batch primitive padded to the *global* maximum wastes most of the
//! compare-exchange work (the paper measures ~4× more elements sorted);
//! sorting each array at its natural size unbalances the SIMD lanes. The
//! multipass scheduler buckets arrays by size class and runs one
//! uniformly-padded batch per class — the paper's six classes are
//! `[0,1], (1,8], (8,16], (16,32], (32,64], (64,…]`.

use gpu_sim::{ComputeBackend, GlobalBuffer, LaunchStats};

use crate::batch::batch_sort;
use crate::bitonic::pad_to_pow2;
use crate::Span;

/// Upper bounds of the paper's six size classes. Arrays in `[0, 1]` are
/// already sorted and never launched.
pub const PASS_BOUNDS: [usize; 5] = [8, 16, 32, 64, usize::MAX];

/// Default number of arrays packed into one block.
const ARRAYS_PER_BLOCK: usize = 8;

/// Per-size-class tally — one histogram bucket of a multipass run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassTally {
    /// Inclusive upper bound of the class: `1` for the trivial `[0,1]`
    /// class, a pass bound otherwise, `usize::MAX` for the open fallback
    /// class (arrays larger than every fixed bound).
    pub upper: usize,
    /// Arrays that fell in this class.
    pub arrays: u64,
    /// Real elements across those arrays.
    pub elements: u64,
    /// Elements charged to `elements_sorted` for this class: the padded
    /// network size × arrays for launched classes; for `[0,1]` the array
    /// count (credited as sorted without a launch). Class tallies
    /// therefore sum exactly to [`MultipassReport::elements_sorted`].
    pub padded: u64,
    /// Per-array power-of-two network capacity the class ran at (`0` for
    /// classes that never launched). For the open class this exposes how
    /// far past the last fixed bound the `>64` fallback actually reached.
    pub capacity: usize,
}

impl ClassTally {
    /// Stable bucket label for metrics emission, following the Prometheus
    /// histogram `le` convention: the inclusive upper bound as a decimal
    /// (`"1"`, `"8"`, …), `"+Inf"` for the open fallback class. Using the
    /// bound itself keeps the label set identical across runs regardless
    /// of which classes stayed empty.
    pub fn le_label(&self) -> String {
        if self.upper == usize::MAX {
            "+Inf".to_string()
        } else {
            self.upper.to_string()
        }
    }

    /// Merge another tally of the same class (summing traffic, keeping
    /// the larger observed capacity) — used to aggregate per-window
    /// reports into a whole-run histogram.
    pub fn merge(&mut self, other: &ClassTally) {
        debug_assert_eq!(self.upper, other.upper, "merging tallies across classes");
        self.arrays += other.arrays;
        self.elements += other.elements;
        self.padded += other.padded;
        self.capacity = self.capacity.max(other.capacity);
    }
}

/// Outcome of a multipass (or strawman) sort.
#[derive(Debug, Clone, Default)]
pub struct MultipassReport {
    /// Stats per executed pass, in class order.
    pub passes: Vec<LaunchStats>,
    /// Per-size-class element histogram: one entry per class (the trivial
    /// `[0,1]` class first, then every configured bound, *including*
    /// classes that stayed empty), so bucket skew and the `>64` fallback
    /// are observable — nothing is silently capped or dropped.
    pub classes: Vec<ClassTally>,
    /// Total padded elements staged through the network.
    pub elements_sorted: u64,
    /// Total real elements across all input spans.
    pub elements_real: u64,
}

impl MultipassReport {
    /// Aggregate stats across all passes.
    pub fn total(&self) -> LaunchStats {
        let mut acc = LaunchStats::default();
        for p in &self.passes {
            let mut p = *p;
            // grid_dim sums below; avoid double-counting other fields.
            std::mem::swap(&mut p, &mut acc);
            acc += p;
        }
        acc
    }

    /// Padding overhead factor: padded elements / real elements.
    pub fn padding_factor(&self) -> f64 {
        if self.elements_real == 0 {
            return 1.0;
        }
        self.elements_sorted as f64 / self.elements_real as f64
    }
}

fn record_padding(report: &mut MultipassReport, spans: &[Span], capacity: usize) {
    let m = pad_to_pow2(capacity) as u64;
    report.elements_sorted += m * spans.len() as u64;
    report.elements_real += spans.iter().map(|&(_, l)| l as u64).sum::<u64>();
}

/// Reusable working state for [`multipass_sort_into`]: the per-class span
/// staging vector and the report it fills. Holding one of these across a
/// window loop makes the multipass scheduler allocation-free in steady
/// state (the sort itself works in place on device memory).
#[derive(Debug, Default)]
pub struct MultipassScratch {
    class: Vec<Span>,
    report: MultipassReport,
}

impl MultipassScratch {
    /// The report produced by the most recent sort.
    pub fn report(&self) -> &MultipassReport {
        &self.report
    }
}

/// The paper's multipass sort: one batch launch per size class.
pub fn multipass_sort<B: ComputeBackend>(
    dev: &B,
    data: &GlobalBuffer<u32>,
    spans: &[Span],
) -> MultipassReport {
    multipass_sort_with_bounds(dev, data, spans, &PASS_BOUNDS)
}

/// Multipass sort with caller-chosen class upper bounds (ascending; the
/// final bound should be `usize::MAX`). Exposed for the class-boundary
/// ablation study.
pub fn multipass_sort_with_bounds<B: ComputeBackend>(
    dev: &B,
    data: &GlobalBuffer<u32>,
    spans: &[Span],
    bounds: &[usize],
) -> MultipassReport {
    let mut scratch = MultipassScratch::default();
    multipass_sort_with_bounds_into(dev, data, spans, bounds, &mut scratch);
    scratch.report
}

/// [`multipass_sort`] writing into caller-owned scratch; see
/// [`MultipassScratch`]. The result lands in `scratch.report()`.
pub fn multipass_sort_into<B: ComputeBackend>(
    dev: &B,
    data: &GlobalBuffer<u32>,
    spans: &[Span],
    scratch: &mut MultipassScratch,
) {
    multipass_sort_with_bounds_into(dev, data, spans, &PASS_BOUNDS, scratch);
}

/// [`multipass_sort_with_bounds`] writing into caller-owned scratch.
pub fn multipass_sort_with_bounds_into<B: ComputeBackend>(
    dev: &B,
    data: &GlobalBuffer<u32>,
    spans: &[Span],
    bounds: &[usize],
    scratch: &mut MultipassScratch,
) {
    assert!(!bounds.is_empty(), "at least one size class required");
    assert!(
        bounds.windows(2).all(|w| w[0] < w[1]),
        "class bounds must be strictly ascending"
    );
    assert_eq!(
        *bounds.last().unwrap(),
        usize::MAX,
        "final bound must be open"
    );
    let MultipassScratch { class, report } = scratch;
    report.passes.clear();
    report.classes.clear();
    report.elements_sorted = 0;
    report.elements_real = 0;
    report.classes.push(trivial_tally(spans));
    report.elements_real += report.classes[0].elements;
    report.elements_sorted += report.classes[0].padded;

    let mut lower = 1usize;
    for &bound in bounds {
        class.clear();
        class.extend(
            spans
                .iter()
                .copied()
                .filter(|&(_, l)| l > lower && l <= bound),
        );
        if !class.is_empty() {
            let capacity = if bound == usize::MAX {
                class.iter().map(|&(_, l)| l).max().unwrap_or(1)
            } else {
                bound
            };
            record_padding(report, class, capacity);
            report.classes.push(class_tally(bound, class, capacity));
            report
                .passes
                .push(batch_sort(dev, data, class, capacity, ARRAYS_PER_BLOCK));
        } else {
            // Empty classes still get a (zero) histogram entry, so the
            // bucket layout is stable across windows and nothing is capped
            // silently.
            report.classes.push(ClassTally {
                upper: bound,
                ..Default::default()
            });
        }
        lower = bound;
    }
}

/// Tally of the trivial `[0,1]` class (arrays sorted without a launch).
fn trivial_tally(spans: &[Span]) -> ClassTally {
    let arrays = spans.iter().filter(|&&(_, l)| l <= 1).count() as u64;
    let elements = spans
        .iter()
        .filter(|&&(_, l)| l <= 1)
        .map(|&(_, l)| l as u64)
        .sum::<u64>();
    ClassTally {
        upper: 1,
        arrays,
        elements,
        padded: arrays,
        capacity: 0,
    }
}

/// Tally of one launched class at its padded per-array capacity.
fn class_tally(upper: usize, spans: &[Span], capacity: usize) -> ClassTally {
    let m = pad_to_pow2(capacity);
    ClassTally {
        upper,
        arrays: spans.len() as u64,
        elements: spans.iter().map(|&(_, l)| l as u64).sum(),
        padded: m as u64 * spans.len() as u64,
        capacity: m,
    }
}

/// Strawman 1 ("bitonic SP"): a single pass with every array padded to the
/// batch-wide maximum size.
pub fn single_pass_sort<B: ComputeBackend>(
    dev: &B,
    data: &GlobalBuffer<u32>,
    spans: &[Span],
) -> MultipassReport {
    let mut report = MultipassReport::default();
    let work: Vec<Span> = spans.iter().copied().filter(|&(_, l)| l > 1).collect();
    report.classes.push(trivial_tally(spans));
    report.elements_real += report.classes[0].elements;
    report.elements_sorted += report.classes[0].padded;
    if work.is_empty() {
        return report;
    }
    let capacity = work.iter().map(|&(_, l)| l).max().unwrap();
    record_padding(&mut report, &work, capacity);
    report
        .classes
        .push(class_tally(usize::MAX, &work, capacity));
    report
        .passes
        .push(batch_sort(dev, data, &work, capacity, ARRAYS_PER_BLOCK));
    report
}

/// Strawman 2 ("bitonic noneq"): arrays of different sizes dispatched
/// directly; each block's SIMD lanes execute in lockstep, so every array in
/// a block pays the network of the *largest* array grouped with it.
pub fn noneq_sort<B: ComputeBackend>(
    dev: &B,
    data: &GlobalBuffer<u32>,
    spans: &[Span],
) -> MultipassReport {
    let mut report = MultipassReport::default();
    let work: Vec<Span> = spans.iter().copied().filter(|&(_, l)| l > 1).collect();
    report.classes.push(trivial_tally(spans));
    report.elements_real += report.classes[0].elements;
    report.elements_sorted += report.classes[0].padded;
    if work.is_empty() {
        return report;
    }
    // Single launch; one array per SIMD lane, so every array in a warp
    // (32 lanes) executes the network of the warp's largest array — the
    // lockstep divergence the multipass scheduler removes.
    let warp = dev.config().warp_size.max(1);
    for group in work.chunks(warp) {
        let capacity = group.iter().map(|&(_, l)| l).max().unwrap();
        record_padding(&mut report, group, capacity);
    }
    // One histogram bucket for the single mixed-size pass; padding varies
    // per warp, so it is derived from the running total.
    report.classes.push(ClassTally {
        upper: usize::MAX,
        arrays: work.len() as u64,
        elements: work.iter().map(|&(_, l)| l as u64).sum(),
        padded: report.elements_sorted - report.classes[0].padded,
        capacity: pad_to_pow2(work.iter().map(|&(_, l)| l).max().unwrap()),
    });
    report
        .passes
        .push(crate::batch::batch_sort_blockmax(dev, data, &work, warp));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Device;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A base_word-like size distribution: most arrays ~depth (tens),
    /// plus empty and singleton sites.
    fn workload(seed: u64, n_arrays: usize) -> (Vec<u32>, Vec<Span>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        let mut spans = Vec::new();
        for _ in 0..n_arrays {
            let len = match rng.gen_range(0..10) {
                0 => 0,
                1 => 1,
                2..=6 => rng.gen_range(2..=12usize),
                7 | 8 => rng.gen_range(13..=40usize),
                _ => rng.gen_range(41..=100usize),
            };
            spans.push((data.len(), len));
            data.extend((0..len).map(|_| rng.gen::<u32>()));
        }
        (data, spans)
    }

    fn assert_all_sorted(dev: &Device, buf: &GlobalBuffer<u32>, spans: &[Span], host: &[u32]) {
        let out = dev.download(buf);
        for &(off, len) in spans {
            let mut expect = host[off..off + len].to_vec();
            expect.sort_unstable();
            assert_eq!(&out[off..off + len], &expect[..]);
        }
    }

    #[test]
    fn multipass_sorts_everything() {
        let dev = Device::m2050();
        let (host, spans) = workload(11, 500);
        let buf = dev.upload(&host);
        let report = multipass_sort(&dev, &buf, &spans);
        assert_all_sorted(&dev, &buf, &spans, &host);
        assert!(report.passes.len() >= 4, "expected several classes to fire");
        assert_eq!(report.elements_real, host.len() as u64);
    }

    #[test]
    fn single_pass_sorts_everything() {
        let dev = Device::m2050();
        let (host, spans) = workload(12, 300);
        let buf = dev.upload(&host);
        single_pass_sort(&dev, &buf, &spans);
        assert_all_sorted(&dev, &buf, &spans, &host);
    }

    #[test]
    fn noneq_sorts_everything() {
        let dev = Device::m2050();
        let (host, spans) = workload(13, 300);
        let buf = dev.upload(&host);
        noneq_sort(&dev, &buf, &spans);
        assert_all_sorted(&dev, &buf, &spans, &host);
    }

    #[test]
    fn multipass_pads_less_than_single_pass() {
        let dev = Device::m2050();
        // Large enough that network work dominates per-pass launch overhead.
        let (host, spans) = workload(14, 20_000);
        let buf1 = dev.upload(&host);
        let mp = multipass_sort(&dev, &buf1, &spans);
        let buf2 = dev.upload(&host);
        let sp = single_pass_sort(&dev, &buf2, &spans);
        assert!(
            mp.elements_sorted < sp.elements_sorted,
            "multipass {} vs single {}",
            mp.elements_sorted,
            sp.elements_sorted
        );
        // The paper: single pass sorts ~4x more elements.
        assert!(sp.padding_factor() / mp.padding_factor() > 1.5);
        // Fewer padded elements → cheaper simulated time.
        assert!(mp.total().sim_time < sp.total().sim_time);
    }

    #[test]
    fn noneq_between_multipass_and_single_pass_in_work() {
        let dev = Device::m2050();
        let (host, spans) = workload(15, 2000);
        let b1 = dev.upload(&host);
        let mp = multipass_sort(&dev, &b1, &spans);
        let b2 = dev.upload(&host);
        let ne = noneq_sort(&dev, &b2, &spans);
        let b3 = dev.upload(&host);
        let sp = single_pass_sort(&dev, &b3, &spans);
        assert!(mp.elements_sorted <= ne.elements_sorted);
        assert!(ne.elements_sorted <= sp.elements_sorted);
    }

    #[test]
    fn empty_and_singleton_only_needs_no_launch() {
        let dev = Device::m2050();
        let host = vec![5u32, 7];
        let buf = dev.upload(&host);
        let spans = vec![(0usize, 0usize), (0, 1), (1, 1)];
        let report = multipass_sort(&dev, &buf, &spans);
        assert!(report.passes.is_empty());
        assert_eq!(dev.download(&buf), host);
    }

    #[test]
    fn padding_factor_of_empty_workload_is_one() {
        assert_eq!(MultipassReport::default().padding_factor(), 1.0);
    }

    #[test]
    fn scratch_reuse_matches_fresh_run() {
        let dev = Device::m2050();
        let mut scratch = MultipassScratch::default();
        for seed in 20..23 {
            let (host, spans) = workload(seed, 400);
            let fresh_buf = dev.upload(&host);
            let fresh = multipass_sort(&dev, &fresh_buf, &spans);
            let reused_buf = dev.upload(&host);
            multipass_sort_into(&dev, &reused_buf, &spans, &mut scratch);
            assert_all_sorted(&dev, &reused_buf, &spans, &host);
            let r = scratch.report();
            assert_eq!(r.elements_sorted, fresh.elements_sorted);
            assert_eq!(r.elements_real, fresh.elements_real);
            assert_eq!(r.passes.len(), fresh.passes.len());
            assert_eq!(r.classes, fresh.classes);
        }
    }

    #[test]
    fn class_histogram_sums_to_totals() {
        let dev = Device::m2050();
        let (host, spans) = workload(30, 1000);
        let buf = dev.upload(&host);
        let report = multipass_sort(&dev, &buf, &spans);
        // [0,1] plus one bucket per bound, empty classes included.
        assert_eq!(report.classes.len(), PASS_BOUNDS.len() + 1);
        assert_eq!(
            report.classes.iter().map(|c| c.arrays).sum::<u64>(),
            spans.len() as u64
        );
        assert_eq!(
            report.classes.iter().map(|c| c.elements).sum::<u64>(),
            report.elements_real
        );
        assert_eq!(
            report.classes.iter().map(|c| c.padded).sum::<u64>(),
            report.elements_sorted
        );
        // The workload generates arrays up to 100 elements, so the open
        // fallback class must fire and report how far past 64 it reached.
        let open = report.classes.last().unwrap();
        assert_eq!(open.upper, usize::MAX);
        assert!(open.arrays > 0);
        assert!(
            open.capacity > 64,
            "fallback capacity {} must exceed the last fixed bound",
            open.capacity
        );
    }

    #[test]
    fn strawmen_report_class_histograms_too() {
        let dev = Device::m2050();
        let (host, spans) = workload(31, 300);
        for report in [
            single_pass_sort(&dev, &dev.upload(&host), &spans),
            noneq_sort(&dev, &dev.upload(&host), &spans),
        ] {
            assert_eq!(report.classes.len(), 2, "[0,1] plus one open class");
            assert_eq!(
                report.classes.iter().map(|c| c.elements).sum::<u64>(),
                report.elements_real
            );
            assert_eq!(
                report.classes.iter().map(|c| c.padded).sum::<u64>(),
                report.elements_sorted
            );
        }
    }
}
