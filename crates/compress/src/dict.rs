//! Dictionary (least-bits) encoding.
//!
//! The second level of RLE-DICT: a column with `< 100` distinct values is
//! replaced by a sorted dictionary plus `ceil(log2(|dict|))`-bit indices.
//! The same scheme, byte for byte, is produced by the GPU path in
//! [`crate::gpu`], which builds the dictionary with sort/unique primitives
//! and resolves indices with parallel binary search.

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;

/// Bits needed to index a dictionary of `n` entries (0 for n ≤ 1).
pub fn index_bits(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Build the sorted deduplicated dictionary of a column.
pub fn build_dict(data: &[u32]) -> Vec<u32> {
    let mut dict: Vec<u32> = data.to_vec();
    dict.sort_unstable();
    dict.dedup();
    dict
}

/// Encode `data` against `dict` (sorted, covering every value) into `w`.
///
/// Layout: `[count u32][dict_len u32][dict u32…][indices bit-packed]`.
///
/// # Panics
/// Panics (debug) if a value is absent from the dictionary.
pub fn encode_with_dict(data: &[u32], dict: &[u32], w: &mut BitWriter) {
    w.write_u32(data.len() as u32);
    w.write_u32(dict.len() as u32);
    for &d in dict {
        w.write_u32(d);
    }
    let bits = index_bits(dict.len());
    if bits == 0 {
        return;
    }
    for &v in data {
        let idx = dict
            .binary_search(&v)
            .expect("value missing from dictionary");
        w.write_bits(idx as u64, bits);
    }
}

/// Encode a column, building its dictionary first.
pub fn encode(data: &[u32], w: &mut BitWriter) {
    let dict = build_dict(data);
    encode_with_dict(data, &dict, w);
}

/// Encode from precomputed dictionary indices (the GPU path computes the
/// indices with a binary-search kernel and hands them here for packing).
pub fn encode_indices(indices: &[u32], dict: &[u32], w: &mut BitWriter) {
    w.write_u32(indices.len() as u32);
    w.write_u32(dict.len() as u32);
    for &d in dict {
        w.write_u32(d);
    }
    let bits = index_bits(dict.len());
    if bits == 0 {
        return;
    }
    for &i in indices {
        debug_assert!((i as usize) < dict.len());
        w.write_bits(i as u64, bits);
    }
}

/// Decode a dictionary-encoded column.
pub fn decode(r: &mut BitReader<'_>) -> Result<Vec<u32>, CodecError> {
    let count = r.read_u32()? as usize;
    let dict_len = r.read_u32()? as usize;
    if dict_len == 0 && count > 0 {
        return Err(CodecError::corrupt("empty dictionary with nonzero count"));
    }
    // Reject corrupted length fields before allocating for them: the
    // dictionary and the packed indices must fit in the remaining bytes.
    if count > crate::error::MAX_ELEMENTS || dict_len > crate::error::MAX_ELEMENTS {
        return Err(CodecError::corrupt("implausible element count"));
    }
    if dict_len * 4 > r.remaining_bytes() {
        return Err(CodecError::corrupt(
            "dictionary larger than remaining stream",
        ));
    }
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        dict.push(r.read_u32()?);
    }
    let bits = index_bits(dict_len);
    if count as u64 * u64::from(bits) > r.remaining_bytes() as u64 * 8 + 7 {
        return Err(CodecError::corrupt(
            "index payload larger than remaining stream",
        ));
    }
    let mut out = Vec::with_capacity(count);
    if bits == 0 {
        out.resize(count, dict.first().copied().unwrap_or(0));
        return Ok(out);
    }
    for _ in 0..count {
        let idx = r.read_bits(bits)? as usize;
        let v = *dict
            .get(idx)
            .ok_or_else(|| CodecError::corrupt(format!("dictionary index {idx} out of range")))?;
        out.push(v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(data: &[u32]) -> Vec<u32> {
        let mut w = BitWriter::new();
        encode(data, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        decode(&mut r).unwrap()
    }

    #[test]
    fn index_bit_widths() {
        assert_eq!(index_bits(0), 0);
        assert_eq!(index_bits(1), 0);
        assert_eq!(index_bits(2), 1);
        assert_eq!(index_bits(3), 2);
        assert_eq!(index_bits(4), 2);
        assert_eq!(index_bits(5), 3);
        assert_eq!(index_bits(256), 8);
        assert_eq!(index_bits(257), 9);
    }

    #[test]
    fn single_value_column_costs_no_index_bits() {
        let data = vec![9u32; 100];
        let mut w = BitWriter::new();
        encode(&data, &mut w);
        let bytes = w.finish();
        // count + dict_len + one dict entry = 12 bytes, no index payload.
        assert_eq!(bytes.len(), 12);
        let mut r = BitReader::new(&bytes);
        assert_eq!(decode(&mut r).unwrap(), data);
    }

    #[test]
    fn empty_column() {
        assert!(roundtrip(&[]).is_empty());
    }

    #[test]
    fn compresses_small_alphabets() {
        // 1000 values from an alphabet of 4 → 2 bits each = 250 bytes + header.
        let data: Vec<u32> = (0..1000).map(|i| (i % 4) * 1000).collect();
        let mut w = BitWriter::new();
        encode(&data, &mut w);
        let bytes = w.finish();
        assert!(bytes.len() < 300, "{} bytes", bytes.len());
        let mut r = BitReader::new(&bytes);
        assert_eq!(decode(&mut r).unwrap(), data);
    }

    #[test]
    fn corrupt_index_detected() {
        let mut w = BitWriter::new();
        encode(&[1, 2, 3], &mut w);
        let mut bytes = w.finish();
        // Indices live in the final byte; force an out-of-range pattern.
        *bytes.last_mut().unwrap() = 0xFF;
        let mut r = BitReader::new(&bytes);
        assert!(decode(&mut r).is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(data in proptest::collection::vec(any::<u32>(), 0..300)) {
            prop_assert_eq!(roundtrip(&data), data);
        }
    }
}
