//! Sparse (non-zero list) encoding for the second-allele columns.
//!
//! §V-B: "A certain number of columns related to the second allele are
//! sparse. Then we only store non-zero elements for these columns."
//! Indices are delta-encoded since they are strictly increasing.

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;

/// Encode a mostly-zero `u32` column as `(delta-index, value)` pairs.
///
/// Layout: `[count u32][nnz u32][(delta u32, value u32)…]`.
pub fn encode(data: &[u32], w: &mut BitWriter) {
    let nnz = data.iter().filter(|&&v| v != 0).count();
    w.write_u32(data.len() as u32);
    w.write_u32(nnz as u32);
    let mut last = 0usize;
    for (i, &v) in data.iter().enumerate() {
        if v != 0 {
            w.write_u32((i - last) as u32);
            w.write_u32(v);
            last = i;
        }
    }
}

/// Decode a sparse column back to dense form.
pub fn decode(r: &mut BitReader<'_>) -> Result<Vec<u32>, CodecError> {
    let count = r.read_u32()? as usize;
    let nnz = r.read_u32()? as usize;
    if nnz > count {
        return Err(CodecError::corrupt("more non-zeros than rows"));
    }
    if count > crate::error::MAX_ELEMENTS || nnz * 8 > r.remaining_bytes() {
        return Err(CodecError::corrupt("implausible sparse column header"));
    }
    let mut out = vec![0u32; count];
    let mut pos = 0usize;
    for k in 0..nnz {
        let delta = r.read_u32()? as usize;
        let v = r.read_u32()?;
        pos = if k == 0 { delta } else { pos + delta };
        if pos >= count {
            return Err(CodecError::corrupt("sparse index out of range"));
        }
        if v == 0 {
            return Err(CodecError::corrupt("explicit zero in sparse stream"));
        }
        out[pos] = v;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(data: &[u32]) -> Vec<u32> {
        let mut w = BitWriter::new();
        encode(data, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        decode(&mut r).unwrap()
    }

    #[test]
    fn all_zero_column_is_8_bytes() {
        let data = vec![0u32; 100_000];
        let mut w = BitWriter::new();
        encode(&data, &mut w);
        assert_eq!(w.finish().len(), 8);
    }

    #[test]
    fn sparse_roundtrip() {
        let mut data = vec![0u32; 1000];
        data[3] = 7;
        data[999] = 1;
        data[0] = 2;
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn dense_column_still_roundtrips() {
        let data: Vec<u32> = (1..=50).collect();
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn empty() {
        assert!(roundtrip(&[]).is_empty());
    }

    #[test]
    fn corrupt_out_of_range_detected() {
        let mut w = BitWriter::new();
        w.write_u32(2);
        w.write_u32(1);
        w.write_u32(5); // index 5 ≥ count 2
        w.write_u32(1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(decode(&mut r).is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(data in proptest::collection::vec(
            prop_oneof![9 => Just(0u32), 1 => any::<u32>()], 0..500)
        ) {
            prop_assert_eq!(roundtrip(&data), data);
        }
    }
}
