//! Compressed temporary input (§V-A).
//!
//! `cal_p_matrix` must read the entire alignment file once to calibrate the
//! score matrix; `read_site` then reads the same data again window by
//! window. GSNP has the first pass write a *compressed temporary file* so
//! the second read moves ~3× fewer bytes. The schemes mirror the output
//! codec: 2-bit packed read bases, RLE-DICT quality streams, delta-encoded
//! positions, packed strand bits, and sparse hit counts.
//!
//! Read identifiers are deliberately not preserved — the SNP caller never
//! consumes them — so decoding synthesizes placeholder ids (`t0`, `t1`, …).

use seqio::base::Strand;
use seqio::soap::AlignedRead;

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;
use crate::rledict;
use crate::sparse;

const MAGIC: &[u8; 4] = b"GSPI";

/// Compress a position-sorted batch of alignments.
///
/// # Panics
/// Panics if the batch is not sorted by position (the workflow invariant).
pub fn compress_reads(chr: &str, reads: &[AlignedRead]) -> Vec<u8> {
    assert!(
        reads.windows(2).all(|p| p[0].pos <= p[1].pos),
        "reads must be sorted by position"
    );
    let mut w = BitWriter::new();
    w.write_bytes(MAGIC);
    w.write_u32(chr.len() as u32);
    w.write_bytes(chr.as_bytes());
    w.write_u32(reads.len() as u32);

    // Lengths (usually all equal → one RLE run).
    let lens: Vec<u32> = reads.iter().map(|r| r.len() as u32).collect();
    rledict::encode(&lens, &mut w);

    // Position deltas (small, repetitive at high depth).
    let mut last = 0u64;
    let deltas: Vec<u32> = reads
        .iter()
        .map(|r| {
            let d = (r.pos - last) as u32;
            last = r.pos;
            d
        })
        .collect();
    rledict::encode(&deltas, &mut w);

    // Strand bits, packed.
    w.write_u32(reads.len() as u32);
    for r in reads {
        w.write_bits(u64::from(r.strand.code()), 1);
    }

    // Hit counts: store nhits − 1, sparse (unique reads dominate).
    sparse::encode(
        &reads.iter().map(|r| r.nhits - 1).collect::<Vec<_>>(),
        &mut w,
    );

    // Sequences: 2-bit codes, concatenated.
    w.align();
    for r in reads {
        for &b in &r.seq {
            debug_assert!(b < 4);
            w.write_bits(u64::from(b), 2);
        }
    }

    // Qualities: concatenated stream through RLE-DICT (long runs within a
    // read by construction of the quality model).
    let quals: Vec<u32> = reads
        .iter()
        .flat_map(|r| r.qual.iter().map(|&q| u32::from(q)))
        .collect();
    rledict::encode(&quals, &mut w);

    w.finish()
}

/// Decompress a batch produced by [`compress_reads`].
pub fn decompress_reads(bytes: &[u8]) -> Result<Vec<AlignedRead>, CodecError> {
    let mut r = BitReader::new(bytes);
    if r.read_bytes(4)? != MAGIC {
        return Err(CodecError::corrupt("bad input-codec magic"));
    }
    let name_len = r.read_u32()? as usize;
    if name_len > 4096 {
        return Err(CodecError::corrupt("unreasonable chromosome-name length"));
    }
    let chr = String::from_utf8(r.read_bytes(name_len)?.to_vec())
        .map_err(|_| CodecError::corrupt("chromosome name not UTF-8"))?;
    let n = r.read_u32()? as usize;

    let lens = rledict::decode(&mut r)?;
    let deltas = rledict::decode(&mut r)?;
    if lens.len() != n || deltas.len() != n {
        return Err(CodecError::corrupt("length/position arrays disagree"));
    }

    let strand_count = r.read_u32()? as usize;
    if strand_count != n {
        return Err(CodecError::corrupt("strand array disagrees"));
    }
    let mut strands = Vec::with_capacity(n);
    for _ in 0..n {
        strands.push(Strand::from_code(r.read_bits(1)? as u8));
    }

    let nhits_minus_1 = sparse::decode(&mut r)?;
    if nhits_minus_1.len() != n {
        return Err(CodecError::corrupt("nhits array disagrees"));
    }

    let total_bases: usize = lens.iter().map(|&l| l as usize).sum();
    if total_bases as u64 * 2 > r.remaining_bytes() as u64 * 8 + 7 {
        return Err(CodecError::corrupt(
            "sequence payload larger than remaining stream",
        ));
    }
    let mut seq_codes = Vec::with_capacity(total_bases);
    r.align();
    for _ in 0..total_bases {
        seq_codes.push(r.read_bits(2)? as u8);
    }

    let quals = rledict::decode(&mut r)?;
    if quals.len() != total_bases {
        return Err(CodecError::corrupt("quality stream length disagrees"));
    }
    if quals.iter().any(|&q| q > 63) {
        return Err(CodecError::corrupt("quality out of range"));
    }

    let mut reads = Vec::with_capacity(n);
    let mut pos = 0u64;
    let mut base_off = 0usize;
    for i in 0..n {
        pos += u64::from(deltas[i]);
        let len = lens[i] as usize;
        let seq = seq_codes[base_off..base_off + len].to_vec();
        let qual: Vec<u8> = quals[base_off..base_off + len]
            .iter()
            .map(|&q| q as u8)
            .collect();
        base_off += len;
        reads.push(AlignedRead {
            id: format!("t{i}"),
            seq,
            qual,
            nhits: nhits_minus_1[i] + 1,
            strand: strands[i],
            chr: chr.clone(),
            pos,
        });
    }
    Ok(reads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqio::synth::{Dataset, SynthConfig};

    fn strip_ids(mut reads: Vec<AlignedRead>) -> Vec<AlignedRead> {
        for (i, r) in reads.iter_mut().enumerate() {
            r.id = format!("t{i}");
        }
        reads
    }

    #[test]
    fn roundtrip_synthetic_dataset() {
        let d = Dataset::generate(SynthConfig::tiny(21));
        let bytes = compress_reads(&d.config.chr_name, &d.reads);
        let back = decompress_reads(&bytes).unwrap();
        assert_eq!(back, strip_ids(d.reads));
    }

    #[test]
    fn compresses_well_below_text() {
        let d = Dataset::generate(SynthConfig::tiny(22));
        let text = d.input_text_size();
        let bytes = compress_reads(&d.config.chr_name, &d.reads);
        let ratio = text as f64 / bytes.len() as f64;
        // The paper reports ~3x vs the original text input.
        assert!(ratio > 2.5, "ratio only {ratio:.2}");
    }

    #[test]
    fn empty_batch_roundtrips() {
        let bytes = compress_reads("chrE", &[]);
        assert!(decompress_reads(&bytes).unwrap().is_empty());
    }

    #[test]
    fn truncation_detected() {
        let d = Dataset::generate(SynthConfig::tiny(23));
        let bytes = compress_reads(&d.config.chr_name, &d.reads);
        assert!(decompress_reads(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    #[should_panic(expected = "sorted by position")]
    fn unsorted_batch_panics() {
        let d = Dataset::generate(SynthConfig::tiny(24));
        let mut reads = d.reads;
        reads.reverse();
        let _ = compress_reads("x", &reads);
    }
}
