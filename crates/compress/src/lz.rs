//! LZSS + canonical Huffman: the general-purpose comparator.
//!
//! The paper benchmarks its customized codecs against gzip (zlib). This
//! module is the from-scratch stand-in: an LZ77 stage with a 32 KiB
//! sliding window and hash-chain match finding, followed by canonical
//! Huffman coding of deflate-style literal/length and distance alphabets.
//! It plays gzip's role in every comparison: a real dictionary+entropy
//! coder with a competitive ratio on text and a markedly higher CPU cost
//! than the table-aware column schemes.

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;

const MAGIC: &[u8; 4] = b"GZL1";
const WINDOW: usize = 32 * 1024;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const MAX_CHAIN: usize = 48;
const MAX_CODE_LEN: u32 = 15;

/// End-of-block symbol in the literal/length alphabet.
const EOB: usize = 256;
/// Literal/length alphabet size (256 literals + EOB + 29 length codes).
const NUM_LITLEN: usize = 286;
/// Distance alphabet size.
const NUM_DIST: usize = 30;

/// (base, extra_bits) for length codes 257..=285.
const LEN_TABLE: [(u16, u8); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// (base, extra_bits) for distance codes 0..=29.
const DIST_TABLE: [(u16, u8); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

fn len_code(len: usize) -> (usize, u16, u8) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    let mut code = 0;
    for (i, &(base, _)) in LEN_TABLE.iter().enumerate() {
        if len >= base as usize {
            code = i;
        } else {
            break;
        }
    }
    let (base, extra) = LEN_TABLE[code];
    (257 + code, len as u16 - base, extra)
}

fn dist_code(dist: usize) -> (usize, u16, u8) {
    debug_assert!((1..=WINDOW).contains(&dist));
    let mut code = 0;
    for (i, &(base, _)) in DIST_TABLE.iter().enumerate() {
        if dist >= base as usize {
            code = i;
        } else {
            break;
        }
    }
    let (base, extra) = DIST_TABLE[code];
    (code, dist as u16 - base, extra)
}

// ---------------------------------------------------------------------
// Huffman coding
// ---------------------------------------------------------------------

/// Compute code lengths (≤ 15) for the given symbol frequencies via a
/// heap-built Huffman tree; over-deep trees are handled by halving the
/// frequencies and rebuilding (zlib's practical strategy).
fn huffman_code_lengths(freqs: &[u64]) -> Vec<u8> {
    let n = freqs.len();
    let mut f: Vec<u64> = freqs.to_vec();
    loop {
        let lengths = build_lengths(&f, n);
        if lengths.iter().all(|&l| u32::from(l) <= MAX_CODE_LEN) {
            return lengths;
        }
        for v in &mut f {
            *v = (*v / 2).max(u64::from(*v > 0));
        }
    }
}

fn build_lengths(freqs: &[u64], n: usize) -> Vec<u8> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(Clone)]
    struct Node {
        kids: Option<(usize, usize)>,
        sym: usize,
    }

    let mut nodes: Vec<Node> = Vec::new();
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for (s, &fq) in freqs.iter().enumerate() {
        if fq > 0 {
            nodes.push(Node { kids: None, sym: s });
            heap.push(Reverse((fq, nodes.len() - 1)));
        }
    }
    let mut lengths = vec![0u8; n];
    match heap.len() {
        0 => return lengths,
        1 => {
            // A single distinct symbol still needs a 1-bit code.
            let Reverse((_, idx)) = heap.pop().expect("one node");
            lengths[nodes[idx].sym] = 1;
            return lengths;
        }
        _ => {}
    }
    while heap.len() > 1 {
        let Reverse((fa, a)) = heap.pop().expect("heap");
        let Reverse((fb, b)) = heap.pop().expect("heap");
        nodes.push(Node {
            kids: Some((a, b)),
            sym: usize::MAX,
        });
        heap.push(Reverse((fa + fb, nodes.len() - 1)));
    }
    // Depth-first assignment of depths.
    let root = heap.pop().expect("root").0 .1;
    let mut stack = vec![(root, 0u8)];
    while let Some((i, depth)) = stack.pop() {
        match nodes[i].kids {
            Some((a, b)) => {
                stack.push((a, depth + 1));
                stack.push((b, depth + 1));
            }
            None => lengths[nodes[i].sym] = depth,
        }
    }
    lengths
}

/// Canonical codes from code lengths: `codes[s]` valid when `lengths[s]>0`.
fn canonical_codes(lengths: &[u8]) -> Vec<u16> {
    let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
    let mut bl_count = vec![0u16; max_len + 1];
    for &l in lengths {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u16; max_len + 2];
    let mut code = 0u16;
    for bits in 1..=max_len {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next_code[l as usize];
                next_code[l as usize] += 1;
                c
            }
        })
        .collect()
}

/// Write a canonical code MSB-first (the canonical ordering property
/// requires MSB-first comparison).
fn write_code(w: &mut BitWriter, code: u16, len: u8) {
    for i in (0..len).rev() {
        w.write_bits(u64::from((code >> i) & 1), 1);
    }
}

/// Canonical decoder: per-length first-code/first-symbol tables.
struct Decoder {
    /// symbols sorted by (length, symbol)
    symbols: Vec<u16>,
    first_code: [u32; MAX_CODE_LEN as usize + 2],
    first_index: [u32; MAX_CODE_LEN as usize + 2],
    counts: [u16; MAX_CODE_LEN as usize + 2],
}

impl Decoder {
    fn new(lengths: &[u8]) -> Result<Decoder, CodecError> {
        let mut counts = [0u16; MAX_CODE_LEN as usize + 2];
        for &l in lengths {
            if u32::from(l) > MAX_CODE_LEN {
                return Err(CodecError::corrupt("code length exceeds 15"));
            }
            if l > 0 {
                counts[l as usize] += 1;
            }
        }
        let mut symbols = Vec::new();
        for bits in 1..=MAX_CODE_LEN as usize {
            for (s, &l) in lengths.iter().enumerate() {
                if l as usize == bits {
                    symbols.push(s as u16);
                }
            }
        }
        let mut first_code = [0u32; MAX_CODE_LEN as usize + 2];
        let mut first_index = [0u32; MAX_CODE_LEN as usize + 2];
        let mut code = 0u32;
        let mut index = 0u32;
        for bits in 1..=MAX_CODE_LEN as usize {
            code = (code + u32::from(counts[bits - 1])) << 1;
            first_code[bits] = code;
            first_index[bits] = index;
            index += u32::from(counts[bits]);
        }
        Ok(Decoder {
            symbols,
            first_code,
            first_index,
            counts,
        })
    }

    fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, CodecError> {
        let mut code = 0u32;
        for bits in 1..=MAX_CODE_LEN as usize {
            code = (code << 1) | r.read_bits(1)? as u32;
            let count = u32::from(self.counts[bits]);
            if count > 0 && code < self.first_code[bits] + count {
                if code < self.first_code[bits] {
                    return Err(CodecError::corrupt("invalid Huffman code"));
                }
                let idx = self.first_index[bits] + (code - self.first_code[bits]);
                return Ok(self.symbols[idx as usize]);
            }
        }
        Err(CodecError::corrupt("Huffman code longer than 15 bits"))
    }
}

// ---------------------------------------------------------------------
// LZ77 tokenization
// ---------------------------------------------------------------------

enum Token {
    Literal(u8),
    Match { len: usize, dist: usize },
}

fn hash3(data: &[u8], i: usize) -> usize {
    let h = (data[i] as u32)
        .wrapping_mul(0x9E37)
        .wrapping_add((data[i + 1] as u32).wrapping_mul(0x79B9))
        .wrapping_add(data[i + 2] as u32);
    (h.wrapping_mul(2654435761) >> 16) as usize & 0xFFFF
}

fn tokenize(data: &[u8]) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::new();
    let mut head = vec![usize::MAX; 65536];
    let mut prev = vec![usize::MAX; n];
    let mut i = 0usize;
    while i < n {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= n {
            let h = hash3(data, i);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && i - cand <= WINDOW && chain < MAX_CHAIN {
                let limit = (n - i).min(MAX_MATCH);
                let mut l = 0usize;
                while l < limit && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l == limit {
                        break;
                    }
                }
                cand = prev[cand];
                chain += 1;
            }
            prev[i] = head[h];
            head[h] = i;
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                len: best_len,
                dist: best_dist,
            });
            // Insert the skipped positions into the hash chains.
            #[allow(clippy::needless_range_loop)] // k threads through two chained tables
            for k in (i + 1)..(i + best_len).min(n.saturating_sub(MIN_MATCH - 1)) {
                let h = hash3(data, k);
                prev[k] = head[h];
                head[h] = k;
            }
            i += best_len;
        } else {
            tokens.push(Token::Literal(data[i]));
            i += 1;
        }
    }
    tokens
}

// ---------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------

/// Compress a byte slice.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let tokens = tokenize(data);

    let mut lit_freq = vec![0u64; NUM_LITLEN];
    let mut dist_freq = vec![0u64; NUM_DIST];
    lit_freq[EOB] = 1;
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                lit_freq[len_code(len).0] += 1;
                dist_freq[dist_code(dist).0] += 1;
            }
        }
    }
    let lit_lens = huffman_code_lengths(&lit_freq);
    let dist_lens = huffman_code_lengths(&dist_freq);
    let lit_codes = canonical_codes(&lit_lens);
    let dist_codes = canonical_codes(&dist_lens);

    let mut w = BitWriter::new();
    w.write_bytes(MAGIC);
    w.write_u64(data.len() as u64);
    w.write_bytes(&lit_lens);
    w.write_bytes(&dist_lens);
    for t in &tokens {
        match *t {
            Token::Literal(b) => {
                write_code(&mut w, lit_codes[b as usize], lit_lens[b as usize]);
            }
            Token::Match { len, dist } => {
                let (lc, lextra, lebits) = len_code(len);
                write_code(&mut w, lit_codes[lc], lit_lens[lc]);
                w.write_bits(u64::from(lextra), u32::from(lebits));
                let (dc, dextra, debits) = dist_code(dist);
                write_code(&mut w, dist_codes[dc], dist_lens[dc]);
                w.write_bits(u64::from(dextra), u32::from(debits));
            }
        }
    }
    write_code(&mut w, lit_codes[EOB], lit_lens[EOB]);
    w.finish()
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(bytes: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut r = BitReader::new(bytes);
    if r.read_bytes(4)? != MAGIC {
        return Err(CodecError::corrupt("bad magic"));
    }
    let orig_len = r.read_u64()? as usize;
    let lit_lens = r.read_bytes(NUM_LITLEN)?.to_vec();
    let dist_lens = r.read_bytes(NUM_DIST)?.to_vec();
    let lit_dec = Decoder::new(&lit_lens)?;
    let dist_dec = Decoder::new(&dist_lens)?;

    let mut out = Vec::with_capacity(orig_len);
    loop {
        let sym = lit_dec.decode(&mut r)? as usize;
        if sym == EOB {
            break;
        }
        if sym < 256 {
            out.push(sym as u8);
            continue;
        }
        let lidx = sym - 257;
        if lidx >= LEN_TABLE.len() {
            return Err(CodecError::corrupt("invalid length symbol"));
        }
        let (lbase, lebits) = LEN_TABLE[lidx];
        let len = lbase as usize + r.read_bits(u32::from(lebits))? as usize;
        let dsym = dist_dec.decode(&mut r)? as usize;
        if dsym >= DIST_TABLE.len() {
            return Err(CodecError::corrupt("invalid distance symbol"));
        }
        let (dbase, debits) = DIST_TABLE[dsym];
        let dist = dbase as usize + r.read_bits(u32::from(debits))? as usize;
        if dist == 0 || dist > out.len() {
            return Err(CodecError::corrupt("distance reaches before stream start"));
        }
        let start = out.len() - dist;
        for k in 0..len {
            let b = out[start + k];
            out.push(b);
        }
        if out.len() > orig_len {
            return Err(CodecError::corrupt("output exceeds declared length"));
        }
    }
    if out.len() != orig_len {
        return Err(CodecError::corrupt(format!(
            "declared {} bytes, decoded {}",
            orig_len,
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_text() {
        let data = b"the quick brown fox jumps over the lazy dog. \
                     the quick brown fox jumps over the lazy dog again!"
            .repeat(50);
        let c = compress(&data);
        assert!(c.len() < data.len() / 4, "{} vs {}", c.len(), data.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        for data in [&b""[..], b"a", b"ab", b"aaa", b"abcabcabc"] {
            let c = compress(data);
            assert_eq!(decompress(&c).unwrap(), data);
        }
    }

    #[test]
    fn roundtrip_incompressible() {
        let mut rng = StdRng::seed_from_u64(9);
        let data: Vec<u8> = (0..20_000).map(|_| rng.gen()).collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        // Random bytes shouldn't blow up by more than ~15%.
        assert!(c.len() < data.len() * 115 / 100);
    }

    #[test]
    fn long_runs_use_long_matches() {
        let data = vec![b'Q'; 100_000];
        let c = compress(&data);
        assert!(c.len() < 2_000, "{} bytes", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn far_matches_within_window() {
        let mut data = vec![0u8; 0];
        let phrase: Vec<u8> = (0..=255u8).collect();
        data.extend(&phrase);
        data.extend(vec![7u8; 30_000]); // push the phrase near the window edge
        data.extend(&phrase);
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut c = compress(b"hello world hello world");
        c[0] = b'X';
        assert!(decompress(&c).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let c = compress(&b"hello world, hello world, hello".repeat(20));
        for cut in [5usize, c.len() / 2, c.len() - 1] {
            assert!(decompress(&c[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn declared_length_mismatch_detected() {
        let mut c = compress(b"abcdefgh");
        // Corrupt the declared original length.
        c[4] ^= 0x01;
        assert!(decompress(&c).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..4000)) {
            let c = compress(&data);
            prop_assert_eq!(decompress(&c).unwrap(), data);
        }

        #[test]
        fn roundtrip_low_entropy(data in proptest::collection::vec(0u8..4, 0..4000)) {
            let c = compress(&data);
            prop_assert_eq!(decompress(&c).unwrap(), data);
        }
    }
}
