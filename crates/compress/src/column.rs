//! The whole-table column codec for the 17-column SNP result (§V-B).
//!
//! Per window, each column is compressed with the scheme matched to its
//! statistics:
//!
//! | columns | scheme |
//! |---|---|
//! | chromosome name, position | stored once as `(name, start, count)` — rows are consecutive sites |
//! | reference base, best base | 2-bit packing ([`crate::basepack`]) |
//! | consensus genotype | exception list vs. the homozygous-reference prediction ([`crate::except`]) |
//! | quality, avg-quality(best), counts(best), depth, p-value, copy number | RLE-DICT ([`crate::rledict`]) |
//! | second base, avg-quality(second), counts(second) | sparse non-zero lists ([`crate::sparse`]) |
//! | known-SNP flag | sparse |
//!
//! A compressed *file* is a sequence of length-prefixed windows; the
//! [`WindowStream`] decompressor iterates them pass by pass, which is the
//! sequential-read API §V-B promises downstream applications.

use seqio::base::{Base, N_CODE};
use seqio::result::{SnpRow, SnpTable};

use crate::basepack;
use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;
use crate::except;
use crate::rledict;
use crate::sparse;

const MAGIC: &[u8; 4] = b"GSPW";

fn genotype_prediction(ref_base: u8, depth: u16) -> u8 {
    if depth == 0 || ref_base >= 4 {
        // Uncovered or unknown-reference sites are uncalled.
        b'N'
    } else {
        Base::from_code(ref_base).to_ascii()
    }
}

/// Predicted best-supported base: the reference where there is coverage,
/// `N` where there is none. Only error-dominated and variant sites differ.
fn best_base_prediction(ref_base: u8, depth: u16) -> u8 {
    if depth == 0 {
        N_CODE
    } else {
        ref_base
    }
}

/// Encode `second_base` (which is [`N_CODE`] at most sites) as a sparse
/// value: 0 = N, otherwise `code + 1`.
fn second_base_to_sparse(code: u8) -> u32 {
    if code == N_CODE {
        0
    } else {
        u32::from(code) + 1
    }
}

fn second_base_from_sparse(v: u32) -> Result<u8, CodecError> {
    match v {
        0 => Ok(N_CODE),
        1..=4 => Ok((v - 1) as u8),
        _ => Err(CodecError::corrupt("invalid sparse second-base value")),
    }
}

/// Fill `scratch` with one projected column and hand back a borrowed
/// slice — one buffer per group, reused across its columns, instead of a
/// fresh `Vec` per column per call.
fn fill_u8<'a>(rows: &[SnpRow], f: fn(&SnpRow) -> u8, scratch: &'a mut Vec<u8>) -> &'a [u8] {
    scratch.clear();
    scratch.extend(rows.iter().map(f));
    scratch
}

/// `u32` counterpart of [`fill_u8`].
fn fill_u32<'a>(rows: &[SnpRow], f: fn(&SnpRow) -> u32, scratch: &'a mut Vec<u32>) -> &'a [u32] {
    scratch.clear();
    scratch.extend(rows.iter().map(f));
    scratch
}

/// The seven quality-related columns, in stream order — shared between
/// the CPU and GPU RLE-DICT group encoders so their bytes agree.
const RLEDICT_COLS: [fn(&SnpRow) -> u32; 7] = [
    |r| u32::from(r.quality),
    |r| u32::from(r.avg_qual_best),
    |r| u32::from(r.count_uniq_best),
    |r| u32::from(r.count_all_best),
    |r| u32::from(r.depth),
    |r| u32::from(r.rank_sum_milli),
    |r| u32::from(r.copy_milli),
];

/// Window header: magic, chromosome name, start position, row count,
/// appended to `out`. Ends byte-aligned, so the column groups below can
/// be concatenated after it.
fn write_header(table: &SnpTable, out: &mut Vec<u8>) {
    let mut w = BitWriter::with_buf(std::mem::take(out));
    w.write_bytes(MAGIC);
    w.write_u32(table.chr.len() as u32);
    w.write_bytes(table.chr.as_bytes());
    w.write_u64(table.start_pos);
    w.write_u32(table.rows.len() as u32);
    *out = w.finish();
}

/// Group 1 — reference bases, 2-bit packed.
fn encode_base_group(rows: &[SnpRow]) -> Vec<u8> {
    let mut w = BitWriter::new();
    let mut scratch = Vec::new();
    basepack::encode(fill_u8(rows, |r| r.ref_base, &mut scratch), &mut w);
    w.finish()
}

/// Group 2 — the seven quality-related columns, two-level RLE-DICT.
fn encode_rledict_group(rows: &[SnpRow]) -> Vec<u8> {
    let mut w = BitWriter::new();
    let mut scratch = Vec::new();
    for f in RLEDICT_COLS {
        rledict::encode(fill_u32(rows, f, &mut scratch), &mut w);
    }
    w.finish()
}

/// Group 3 — genotype and best base as exceptions against their
/// coverage-aware predictions (an uncovered site is predicted uncalled, so
/// only true variants and edge cases land in the exception list — §V-B's
/// "low probability of SNPs" argument).
fn encode_except_group(rows: &[SnpRow]) -> Vec<u8> {
    let mut w = BitWriter::new();
    let mut values = Vec::new();
    let mut predicted = Vec::new();
    predicted.extend(
        rows.iter()
            .map(|r| genotype_prediction(r.ref_base, r.depth)),
    );
    except::encode(
        fill_u8(rows, |r| r.genotype, &mut values),
        &predicted,
        &mut w,
    );

    predicted.clear();
    predicted.extend(
        rows.iter()
            .map(|r| best_base_prediction(r.ref_base, r.depth)),
    );
    except::encode(
        fill_u8(rows, |r| r.best_base, &mut values),
        &predicted,
        &mut w,
    );
    w.finish()
}

/// Group 4 — second-allele columns and the known-SNP flag, sparse.
fn encode_sparse_group(rows: &[SnpRow]) -> Vec<u8> {
    let mut w = BitWriter::new();
    let mut scratch = Vec::new();
    sparse::encode(
        fill_u32(rows, |r| second_base_to_sparse(r.second_base), &mut scratch),
        &mut w,
    );
    for f in [
        (|r: &SnpRow| u32::from(r.avg_qual_second)) as fn(&SnpRow) -> u32,
        |r| u32::from(r.count_uniq_second),
        |r| u32::from(r.count_all_second),
        |r| u32::from(r.is_known_snp),
    ] {
        sparse::encode(fill_u32(rows, f, &mut scratch), &mut w);
    }
    w.finish()
}

/// Compress one result window.
///
/// The four column groups have no data dependencies and every codec both
/// starts and ends byte-aligned (each `encode` begins with a `u32` field,
/// and `BitWriter::finish` pads to a byte), so the groups are encoded into
/// independent buffers concurrently (rayon) and concatenated — the bytes
/// are identical to the one-writer reference, [`compress_table_serial`]
/// (tested).
pub fn compress_table(table: &SnpTable) -> Vec<u8> {
    let mut out = Vec::new();
    compress_table_into(table, &mut out);
    out
}

/// [`compress_table`], appending to an existing buffer (the window
/// loop's output file) instead of returning a fresh allocation.
pub fn compress_table_into(table: &SnpTable, out: &mut Vec<u8>) {
    let rows = &table.rows;
    write_header(table, out);
    let (base, (rle, (exc, sparse))) = rayon::join(
        || encode_base_group(rows),
        || {
            rayon::join(
                || encode_rledict_group(rows),
                || rayon::join(|| encode_except_group(rows), || encode_sparse_group(rows)),
            )
        },
    );
    out.extend_from_slice(&base);
    out.extend_from_slice(&rle);
    out.extend_from_slice(&exc);
    out.extend_from_slice(&sparse);
}

/// Single-writer reference implementation of [`compress_table`]; the
/// parallel version must produce these exact bytes.
pub fn compress_table_serial(table: &SnpTable) -> Vec<u8> {
    let rows = &table.rows;
    let mut out = Vec::new();
    write_header(table, &mut out);
    out.extend_from_slice(&encode_base_group(rows));
    out.extend_from_slice(&encode_rledict_group(rows));
    out.extend_from_slice(&encode_except_group(rows));
    out.extend_from_slice(&encode_sparse_group(rows));
    out
}

/// Decompress one result window.
pub fn decompress_table(bytes: &[u8]) -> Result<SnpTable, CodecError> {
    let mut r = BitReader::new(bytes);
    if r.read_bytes(4)? != MAGIC {
        return Err(CodecError::corrupt("bad window magic"));
    }
    let name_len = r.read_u32()? as usize;
    if name_len > 4096 {
        return Err(CodecError::corrupt("unreasonable chromosome-name length"));
    }
    let chr = String::from_utf8(r.read_bytes(name_len)?.to_vec())
        .map_err(|_| CodecError::corrupt("chromosome name not UTF-8"))?;
    let start_pos = r.read_u64()?;
    let n = r.read_u32()? as usize;

    let ref_col = basepack::decode(&mut r)?;

    let quality = rledict::decode(&mut r)?;
    let avg_qual_best = rledict::decode(&mut r)?;
    let count_uniq_best = rledict::decode(&mut r)?;
    let count_all_best = rledict::decode(&mut r)?;
    let depth = rledict::decode(&mut r)?;
    let rank_sum = rledict::decode(&mut r)?;
    let copy_num = rledict::decode(&mut r)?;

    if depth.len() != ref_col.len() {
        return Err(CodecError::corrupt("depth column length mismatch"));
    }
    let predicted: Vec<u8> = ref_col
        .iter()
        .zip(&depth)
        .map(|(&c, &d)| genotype_prediction(c, d as u16))
        .collect();
    let genotype = except::decode(&predicted, &mut r)?;

    let predicted_best: Vec<u8> = ref_col
        .iter()
        .zip(&depth)
        .map(|(&c, &d)| best_base_prediction(c, d as u16))
        .collect();
    let best_col = except::decode(&predicted_best, &mut r)?;
    if best_col.iter().any(|&b| b > N_CODE) {
        return Err(CodecError::corrupt("invalid best-base code"));
    }

    let second_base = sparse::decode(&mut r)?;
    let avg_qual_second = sparse::decode(&mut r)?;
    let count_uniq_second = sparse::decode(&mut r)?;
    let count_all_second = sparse::decode(&mut r)?;
    let is_known = sparse::decode(&mut r)?;

    let cols = [
        ref_col.len(),
        best_col.len(),
        genotype.len(),
        quality.len(),
        avg_qual_best.len(),
        count_uniq_best.len(),
        count_all_best.len(),
        depth.len(),
        rank_sum.len(),
        copy_num.len(),
        second_base.len(),
        avg_qual_second.len(),
        count_uniq_second.len(),
        count_all_second.len(),
        is_known.len(),
    ];
    if cols.iter().any(|&c| c != n) {
        return Err(CodecError::corrupt(
            "column lengths disagree with row count",
        ));
    }

    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        rows.push(SnpRow {
            ref_base: ref_col[i],
            genotype: genotype[i],
            quality: quality[i] as u8,
            best_base: best_col[i],
            avg_qual_best: avg_qual_best[i] as u8,
            count_uniq_best: count_uniq_best[i] as u16,
            count_all_best: count_all_best[i] as u16,
            second_base: second_base_from_sparse(second_base[i])?,
            avg_qual_second: avg_qual_second[i] as u8,
            count_uniq_second: count_uniq_second[i] as u16,
            count_all_second: count_all_second[i] as u16,
            depth: depth[i] as u16,
            rank_sum_milli: rank_sum[i] as u16,
            copy_milli: copy_num[i] as u16,
            is_known_snp: is_known[i] as u8,
        });
    }
    Ok(SnpTable {
        chr,
        start_pos,
        rows,
    })
}

/// Compress one result window with the RLE-DICT columns executed on the
/// simulated device (§V-B: "We only implement RLE-DICT compression on the
/// GPU for six quality related columns, which is more expensive than our
/// other compression algorithms"). Byte-identical to [`compress_table`].
pub fn compress_table_gpu<B: gpu_sim::ComputeBackend>(
    dev: &B,
    table: &SnpTable,
) -> (Vec<u8>, gpu_sim::LaunchStats) {
    let mut out = Vec::new();
    let stats = compress_table_gpu_into(dev, table, &mut out);
    (out, stats)
}

/// [`compress_table_gpu`], appending to an existing buffer.
pub fn compress_table_gpu_into<B: gpu_sim::ComputeBackend>(
    dev: &B,
    table: &SnpTable,
    out: &mut Vec<u8>,
) -> gpu_sim::LaunchStats {
    let rows = &table.rows;
    write_header(table, out);

    // RLE-DICT columns on the device; the three host-side groups run
    // concurrently with it. A standalone RLE-DICT stream starts
    // byte-aligned (its first field is a u32), so splicing the device-
    // produced bytes preserves the CPU codec's exact layout.
    let ((base, exc, sparse), (rle, stats)) = rayon::join(
        || {
            let (base, (exc, sparse)) = rayon::join(
                || encode_base_group(rows),
                || rayon::join(|| encode_except_group(rows), || encode_sparse_group(rows)),
            );
            (base, exc, sparse)
        },
        || {
            let mut stats = gpu_sim::LaunchStats::default();
            let mut bytes = Vec::new();
            let mut scratch = Vec::new();
            for f in RLEDICT_COLS {
                let (b, s) = crate::gpu::rledict_gpu(dev, fill_u32(rows, f, &mut scratch));
                stats += s;
                bytes.extend_from_slice(&b);
            }
            (bytes, stats)
        },
    );
    out.extend_from_slice(&base);
    out.extend_from_slice(&rle);
    out.extend_from_slice(&exc);
    out.extend_from_slice(&sparse);
    stats
}

/// Append one compressed window to an output file (length-prefixed). The
/// payload is encoded in place after a reserved length slot that is
/// backfilled once its size is known — no intermediate payload buffer.
pub fn write_window(out: &mut Vec<u8>, table: &SnpTable) {
    let slot = reserve_len_slot(out);
    compress_table_into(table, out);
    backfill_len_slot(out, slot);
}

/// Append one compressed window, running RLE-DICT columns on the device.
pub fn write_window_gpu<B: gpu_sim::ComputeBackend>(
    dev: &B,
    out: &mut Vec<u8>,
    table: &SnpTable,
) -> gpu_sim::LaunchStats {
    let slot = reserve_len_slot(out);
    let stats = compress_table_gpu_into(dev, table, out);
    backfill_len_slot(out, slot);
    stats
}

/// Append many compressed windows in ONE batched device-launch chain: the
/// quality columns of every table are projected into one segment list and
/// run through [`crate::gpu::rledict_gpu_batch`], so the whole batch costs
/// 18 device launches instead of ~18 per column per window. The emitted
/// bytes are identical, frame for frame, to calling [`write_window_gpu`]
/// on each table in order.
pub fn write_windows_gpu_batch<B: gpu_sim::ComputeBackend>(
    dev: &B,
    out: &mut Vec<u8>,
    tables: &[SnpTable],
) -> gpu_sim::LaunchStats {
    // Project every (window, column) pair into a segment.
    let mut columns: Vec<Vec<u32>> = Vec::with_capacity(tables.len() * RLEDICT_COLS.len());
    for t in tables {
        for f in RLEDICT_COLS {
            columns.push(t.rows.iter().map(f).collect());
        }
    }
    let seg_refs: Vec<&[u32]> = columns.iter().map(Vec::as_slice).collect();
    let (seg_bytes, stats) = crate::gpu::rledict_gpu_batch(dev, &seg_refs);

    // Host-side groups and frame assembly, window by window, preserving the
    // exact layout of the per-window writer.
    for (w, t) in tables.iter().enumerate() {
        let slot = reserve_len_slot(out);
        write_header(t, out);
        out.extend_from_slice(&encode_base_group(&t.rows));
        for b in &seg_bytes[w * RLEDICT_COLS.len()..(w + 1) * RLEDICT_COLS.len()] {
            out.extend_from_slice(b);
        }
        out.extend_from_slice(&encode_except_group(&t.rows));
        out.extend_from_slice(&encode_sparse_group(&t.rows));
        backfill_len_slot(out, slot);
    }
    stats
}

fn reserve_len_slot(out: &mut Vec<u8>) -> usize {
    let slot = out.len();
    out.extend_from_slice(&[0u8; 4]);
    slot
}

fn backfill_len_slot(out: &mut [u8], slot: usize) {
    let payload_len = (out.len() - slot - 4) as u32;
    out[slot..slot + 4].copy_from_slice(&payload_len.to_le_bytes());
}

/// Streaming decompressor over a multi-window compressed file.
pub struct WindowStream<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WindowStream<'a> {
    /// Iterate windows of a compressed result file.
    pub fn new(bytes: &'a [u8]) -> Self {
        WindowStream { bytes, pos: 0 }
    }
}

impl Iterator for WindowStream<'_> {
    type Item = Result<SnpTable, CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        let hdr = self.bytes.get(self.pos..self.pos + 4)?;
        let len = u32::from_le_bytes(hdr.try_into().expect("4 bytes")) as usize;
        let start = self.pos + 4;
        let end = start.checked_add(len)?;
        let Some(payload) = self.bytes.get(start..end) else {
            self.pos = self.bytes.len();
            return Some(Err(CodecError::Truncated("window payload")));
        };
        self.pos = end;
        Some(decompress_table(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn realistic_row(i: usize) -> SnpRow {
        // Mostly homozygous-reference, quality runs, few second alleles.
        let ref_base = (i % 4) as u8;
        let is_snp = i.is_multiple_of(211);
        SnpRow {
            ref_base,
            genotype: if is_snp {
                b'R'
            } else {
                genotype_prediction(ref_base, 10)
            },
            quality: 40 + (i / 50 % 10) as u8,
            best_base: ref_base,
            avg_qual_best: 35 + (i / 80 % 5) as u8,
            count_uniq_best: 9 + (i / 100 % 4) as u16,
            count_all_best: 10 + (i / 100 % 4) as u16,
            second_base: if is_snp { ((i + 1) % 4) as u8 } else { N_CODE },
            avg_qual_second: if is_snp { 33 } else { 0 },
            count_uniq_second: if is_snp { 4 } else { 0 },
            count_all_second: if is_snp { 4 } else { 0 },
            depth: 10 + (i / 100 % 4) as u16,
            rank_sum_milli: if is_snp { 431 } else { 1000 },
            copy_milli: 1000,
            is_known_snp: u8::from(is_snp && i.is_multiple_of(2)),
        }
    }

    fn realistic_table(n: usize) -> SnpTable {
        SnpTable::new("chr21", 5_000, (0..n).map(realistic_row).collect())
    }

    #[test]
    fn roundtrip_realistic() {
        let t = realistic_table(5_000);
        let bytes = compress_table(&t);
        assert_eq!(decompress_table(&bytes).unwrap(), t);
    }

    #[test]
    fn beats_text_by_an_order_of_magnitude() {
        let t = realistic_table(20_000);
        let mut text = Vec::new();
        t.write_text(&mut text).unwrap();
        let compressed = compress_table(&t);
        let ratio = text.len() as f64 / compressed.len() as f64;
        assert!(ratio > 10.0, "ratio only {ratio:.1}");
    }

    #[test]
    fn empty_table_roundtrips() {
        let t = SnpTable::new("c", 0, vec![]);
        let bytes = compress_table(&t);
        assert_eq!(decompress_table(&bytes).unwrap(), t);
    }

    #[test]
    fn n_reference_sites_roundtrip() {
        let mut rows: Vec<SnpRow> = (0..10).map(realistic_row).collect();
        rows[3] = SnpRow::default(); // ref N, genotype N, zero depth
        let t = SnpTable::new("c", 7, rows);
        let bytes = compress_table(&t);
        assert_eq!(decompress_table(&bytes).unwrap(), t);
    }

    #[test]
    fn window_stream_iterates_all() {
        let mut file = Vec::new();
        let t1 = realistic_table(100);
        let mut t2 = realistic_table(50);
        t2.start_pos = 5_100;
        write_window(&mut file, &t1);
        write_window(&mut file, &t2);
        let windows: Vec<SnpTable> = WindowStream::new(&file).collect::<Result<_, _>>().unwrap();
        assert_eq!(windows, vec![t1, t2]);
    }

    #[test]
    fn truncated_file_reports_error() {
        let mut file = Vec::new();
        write_window(&mut file, &realistic_table(100));
        let cut = file.len() - 10;
        let results: Vec<_> = WindowStream::new(&file[..cut]).collect();
        assert_eq!(results.len(), 1);
        assert!(results[0].is_err());
    }

    #[test]
    fn parallel_groups_match_serial_reference() {
        for n in [0usize, 1, 17, 3_000] {
            let t = realistic_table(n);
            assert_eq!(compress_table(&t), compress_table_serial(&t), "{n} rows");
        }
    }

    #[test]
    fn gpu_compression_is_byte_identical() {
        let dev = gpu_sim::Device::m2050();
        let t = realistic_table(3_000);
        let cpu = compress_table(&t);
        let (gpu, stats) = compress_table_gpu(&dev, &t);
        assert_eq!(gpu, cpu);
        assert!(stats.counters.g_load() > 0, "device must have done work");
        assert_eq!(decompress_table(&gpu).unwrap(), t);
    }

    #[test]
    fn batched_windows_bytes_identical_to_sequential() {
        let dev = gpu_sim::Device::m2050();
        let t1 = realistic_table(3_000);
        let mut t2 = realistic_table(777);
        t2.start_pos = 8_000;
        let t3 = SnpTable::new("chrE", 9_000, vec![]);
        let tables = vec![t1, t2, t3];

        let mut seq = Vec::new();
        for t in &tables {
            write_window_gpu(&dev, &mut seq, t);
        }
        let seq_launches = dev.ledger().launches;

        dev.reset_ledger();
        let mut batched = Vec::new();
        write_windows_gpu_batch(&dev, &mut batched, &tables);
        assert_eq!(batched, seq, "batched frames must be byte-identical");
        assert!(
            dev.ledger().launches * 5 <= seq_launches,
            "batching must cut compress launches ≥5× ({} vs {})",
            dev.ledger().launches,
            seq_launches
        );

        let windows: Vec<SnpTable> = WindowStream::new(&batched)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(windows, tables);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = compress_table(&realistic_table(10));
        bytes[0] = b'!';
        assert!(decompress_table(&bytes).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn roundtrip_arbitrary_rows(
            seed_rows in proptest::collection::vec(
                (0u8..=4, 0u8..=99, 0u16..200, 0u16..=1000), 0..200),
            start in 0u64..1_000_000,
        ) {
            let rows: Vec<SnpRow> = seed_rows
                .iter()
                .map(|&(rb, q, cnt, milli)| SnpRow {
                    ref_base: rb,
                    genotype: if rb < 4 { b'Y' } else { b'N' },
                    quality: q,
                    best_base: rb.min(3),
                    avg_qual_best: q.min(63),
                    count_uniq_best: cnt,
                    count_all_best: cnt,
                    second_base: if cnt % 7 == 0 { N_CODE } else { (cnt % 4) as u8 },
                    avg_qual_second: (q / 2).min(63),
                    count_uniq_second: cnt / 3,
                    count_all_second: cnt / 3,
                    depth: cnt,
                    rank_sum_milli: milli,
                    copy_milli: milli,
                    is_known_snp: (cnt % 2) as u8,
                })
                .collect();
            let t = SnpTable::new("chrP", start, rows);
            let bytes = compress_table(&t);
            prop_assert_eq!(decompress_table(&bytes).unwrap(), t);
        }
    }
}
