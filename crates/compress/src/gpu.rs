//! GPU-accelerated RLE-DICT (§V-B).
//!
//! "RLE is implemented using the primitive reduction on the GPU. For DICT,
//! we first use primitives sort and unique to build the dictionary. Then a
//! binary search is performed for multiple elements in parallel to find
//! their index in the dictionary." This module runs those stages on the
//! simulated device and produces **byte-identical** output to the CPU
//! [`crate::rledict`] codec, so either path can decode the other's stream.

use gpu_sim::primitives::{binary_search_indices, exclusive_scan, unique_sorted, BLOCK};
use gpu_sim::{Device, GlobalBuffer, LaunchStats};

use crate::bitio::BitWriter;
use crate::dict;

/// Run-length encode on the device: returns `(values, lengths)` plus the
/// accumulated launch statistics.
pub fn rle_gpu(dev: &Device, input: &GlobalBuffer<u32>) -> (Vec<u32>, Vec<u32>, LaunchStats) {
    let n = input.len();
    if n == 0 {
        return (Vec::new(), Vec::new(), LaunchStats::default());
    }
    let grid = n.div_ceil(BLOCK).max(1);

    // Flag run heads. All three scratch buffers below are fully written
    // before they are read, so dirty pooled acquisitions are safe.
    let flags = dev.alloc_pooled_dirty::<u32>(n);
    let mut stats = dev.launch("rle_flags", grid, |ctx| {
        let base = ctx.block_idx * BLOCK;
        let end = (base + BLOCK).min(n);
        for i in base..end {
            let v = ctx.ld_co(input, i);
            let head = if i == 0 {
                1
            } else {
                let prev = ctx.ld_co(input, i - 1);
                ctx.add_inst(1);
                u32::from(prev != v)
            };
            ctx.st_co(&flags, i, head);
        }
    });

    // Positions of runs via scan; scatter values and start offsets.
    let (positions, num_runs, scan_stats) = exclusive_scan(dev, &flags);
    stats += scan_stats;
    let num_runs = num_runs as usize;
    let values = dev.alloc_pooled_dirty::<u32>(num_runs);
    let starts = dev.alloc_pooled_dirty::<u32>(num_runs);
    stats += dev.launch("rle_scatter", grid, |ctx| {
        let base = ctx.block_idx * BLOCK;
        let end = (base + BLOCK).min(n);
        for i in base..end {
            if ctx.ld_co(&flags, i) == 1 {
                let p = ctx.ld_co(&positions, i) as usize;
                let v = ctx.ld_co(input, i);
                ctx.st_rand(&values, p, v);
                ctx.st_rand(&starts, p, i as u32);
            }
        }
    });

    // Lengths from consecutive starts.
    let lengths = dev.alloc_pooled_dirty::<u32>(num_runs);
    let run_grid = num_runs.div_ceil(BLOCK).max(1);
    stats += dev.launch("rle_lengths", run_grid, |ctx| {
        let base = ctx.block_idx * BLOCK;
        let end = (base + BLOCK).min(num_runs);
        for i in base..end {
            let s = ctx.ld_co(&starts, i);
            let e = if i + 1 < num_runs {
                ctx.ld_co(&starts, i + 1)
            } else {
                n as u32
            };
            ctx.st_co(&lengths, i, e - s);
        }
    });

    (values.to_vec(), lengths.to_vec(), stats)
}

/// Dictionary-encode a column on the device (sort+unique dictionary,
/// parallel binary-search indices, host-side bit packing), byte-identical
/// to [`crate::dict::encode`].
pub fn dict_gpu(dev: &Device, data: &[u32], w: &mut BitWriter) -> LaunchStats {
    if data.is_empty() {
        dict::encode(data, w);
        return LaunchStats::default();
    }
    // Sort a copy (the classic GPU sort primitive; counted as one
    // coalesced pass each way, dominated by downstream stages here).
    let mut sorted = data.to_vec();
    sorted.sort_unstable();
    let sorted_buf = dev.upload_pooled(&sorted);
    let (dict_values, mut stats) = unique_sorted(dev, &sorted_buf);

    let dict_buf = dev.upload_pooled(&dict_values);
    let queries = dev.upload_pooled(data);
    let (indices, bs_stats) = binary_search_indices(dev, &dict_buf, &queries);
    stats += bs_stats;

    dict::encode_indices(&indices.to_vec(), &dict_values, w);
    stats
}

/// Full RLE-DICT on the device; output is byte-identical to
/// [`crate::rledict::encode_to_vec`].
pub fn rledict_gpu(dev: &Device, data: &[u32]) -> (Vec<u8>, LaunchStats) {
    let input = dev.upload_pooled(data);
    let (values, lengths, mut stats) = rle_gpu(dev, &input);
    let mut w = BitWriter::new();
    stats += dict_gpu(dev, &values, &mut w);
    stats += dict_gpu(dev, &lengths, &mut w);
    (w.finish(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rle, rledict};
    use proptest::prelude::*;

    #[test]
    fn gpu_rle_matches_cpu() {
        let dev = Device::m2050();
        let data: Vec<u32> = (0..5000).map(|i| (i / 37) % 11).collect();
        let input = dev.upload(&data);
        let (v, l, stats) = rle_gpu(&dev, &input);
        let (ev, el) = rle::encode(&data);
        assert_eq!(v, ev);
        assert_eq!(l, el);
        assert!(stats.counters.g_load() > 0);
    }

    #[test]
    fn gpu_rledict_bytes_identical_to_cpu() {
        let dev = Device::m2050();
        let data: Vec<u32> = (0..4000).map(|i| 30 + ((i / 23) % 9)).collect();
        let (gpu_bytes, _) = rledict_gpu(&dev, &data);
        let cpu_bytes = rledict::encode_to_vec(&data);
        assert_eq!(gpu_bytes, cpu_bytes);
        assert_eq!(rledict::decode_from_slice(&gpu_bytes).unwrap(), data);
    }

    #[test]
    fn empty_column() {
        let dev = Device::m2050();
        let (bytes, _) = rledict_gpu(&dev, &[]);
        assert_eq!(bytes, rledict::encode_to_vec(&[]));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn gpu_cpu_parity(data in proptest::collection::vec(0u32..50, 0..1500)) {
            let dev = Device::m2050();
            let (gpu_bytes, _) = rledict_gpu(&dev, &data);
            prop_assert_eq!(gpu_bytes, rledict::encode_to_vec(&data));
        }
    }
}
