//! GPU-accelerated RLE-DICT (§V-B).
//!
//! "RLE is implemented using the primitive reduction on the GPU. For DICT,
//! we first use primitives sort and unique to build the dictionary. Then a
//! binary search is performed for multiple elements in parallel to find
//! their index in the dictionary." This module runs those stages on the
//! simulated device and produces **byte-identical** output to the CPU
//! [`crate::rledict`] codec, so either path can decode the other's stream.

use gpu_sim::primitives::{
    binary_search_indices, exclusive_scan, scatter_footprint, unique_sorted, BLOCK,
};
use gpu_sim::{AccessContract, ComputeBackend, Footprint, GlobalBuffer, LaunchStats};

use crate::bitio::BitWriter;
use crate::dict;

/// Run-length encode on the device: returns `(values, lengths)` plus the
/// accumulated launch statistics.
pub fn rle_gpu<B: ComputeBackend>(
    dev: &B,
    input: &GlobalBuffer<u32>,
) -> (Vec<u32>, Vec<u32>, LaunchStats) {
    let n = input.len();
    // No n == 0 guard: an empty column yields zero-dim grids throughout,
    // which the device treats as launch-free no-ops.
    let grid = n.div_ceil(BLOCK);

    // Flag run heads. All three scratch buffers below are fully written
    // before they are read, so dirty pooled acquisitions are safe.
    let flags = dev.alloc_pooled_dirty::<u32>(n);
    let mut stats = dev.launch_contracted(
        "rle_flags",
        grid,
        || {
            AccessContract::default()
                .read(input, Footprint::tiled_with_prev(BLOCK, n))
                .write(&flags, Footprint::tiled(BLOCK, n))
        },
        |ctx| {
            let base = ctx.block_idx() * BLOCK;
            let end = (base + BLOCK).min(n);
            for i in base..end {
                let v = ctx.ld_co(input, i);
                let head = if i == 0 {
                    1
                } else {
                    let prev = ctx.ld_co(input, i - 1);
                    ctx.add_inst(1);
                    u32::from(prev != v)
                };
                ctx.st_co(&flags, i, head);
            }
        },
    );

    // Positions of runs via scan; scatter values and start offsets.
    let (positions, num_runs, scan_stats) = exclusive_scan(dev, &flags);
    stats += scan_stats;
    let num_runs = num_runs as usize;
    let values = dev.alloc_pooled_dirty::<u32>(num_runs);
    let starts = dev.alloc_pooled_dirty::<u32>(num_runs);
    stats += dev.launch_contracted(
        "rle_scatter",
        grid,
        || {
            AccessContract::default()
                .read(&flags, Footprint::tiled(BLOCK, n))
                .read(&positions, Footprint::tiled(BLOCK, n))
                .read(input, Footprint::tiled(BLOCK, n))
                .write(&values, scatter_footprint(&positions, n, num_runs))
                .write(&starts, scatter_footprint(&positions, n, num_runs))
        },
        |ctx| {
            let base = ctx.block_idx() * BLOCK;
            let end = (base + BLOCK).min(n);
            for i in base..end {
                if ctx.ld_co(&flags, i) == 1 {
                    let p = ctx.ld_co(&positions, i) as usize;
                    let v = ctx.ld_co(input, i);
                    ctx.st_rand(&values, p, v);
                    ctx.st_rand(&starts, p, i as u32);
                }
            }
        },
    );

    // Lengths from consecutive starts.
    let lengths = dev.alloc_pooled_dirty::<u32>(num_runs);
    let run_grid = num_runs.div_ceil(BLOCK);
    stats += dev.launch_contracted(
        "rle_lengths",
        run_grid,
        || {
            AccessContract::default()
                .read(&starts, Footprint::tiled_with_next(BLOCK, num_runs))
                .write(&lengths, Footprint::tiled(BLOCK, num_runs))
        },
        |ctx| {
            let base = ctx.block_idx() * BLOCK;
            let end = (base + BLOCK).min(num_runs);
            for i in base..end {
                let s = ctx.ld_co(&starts, i);
                let e = if i + 1 < num_runs {
                    ctx.ld_co(&starts, i + 1)
                } else {
                    n as u32
                };
                ctx.st_co(&lengths, i, e - s);
            }
        },
    );

    (values.to_vec(), lengths.to_vec(), stats)
}

/// Dictionary-encode a column on the device (sort+unique dictionary,
/// parallel binary-search indices, host-side bit packing), byte-identical
/// to [`crate::dict::encode`].
pub fn dict_gpu<B: ComputeBackend>(dev: &B, data: &[u32], w: &mut BitWriter) -> LaunchStats {
    if data.is_empty() {
        dict::encode(data, w);
        return LaunchStats::default();
    }
    // Sort a copy (the classic GPU sort primitive; counted as one
    // coalesced pass each way, dominated by downstream stages here).
    let mut sorted = data.to_vec();
    sorted.sort_unstable();
    let sorted_buf = dev.upload_pooled(&sorted);
    let (dict_values, mut stats) = unique_sorted(dev, &sorted_buf);

    let dict_buf = dev.upload_pooled(&dict_values);
    let queries = dev.upload_pooled(data);
    let (indices, bs_stats) = binary_search_indices(dev, &dict_buf, &queries);
    stats += bs_stats;

    dict::encode_indices(&indices.to_vec(), &dict_values, w);
    stats
}

/// Full RLE-DICT on the device; output is byte-identical to
/// [`crate::rledict::encode_to_vec`].
pub fn rledict_gpu<B: ComputeBackend>(dev: &B, data: &[u32]) -> (Vec<u8>, LaunchStats) {
    let input = dev.upload_pooled(data);
    let (values, lengths, mut stats) = rle_gpu(dev, &input);
    let mut w = BitWriter::new();
    stats += dict_gpu(dev, &values, &mut w);
    stats += dict_gpu(dev, &lengths, &mut w);
    (w.finish(), stats)
}

/// RLE-DICT many columns ("segments") through ONE launch chain.
///
/// The inputs are concatenated into a single device payload with a forced
/// run head at every segment start, so one flags/scan/scatter/lengths RLE
/// pass and one segmented DICT chain per level serve the whole batch:
/// 18 launches total, independent of how many columns are batched, versus
/// ~18 *per column* for repeated [`rledict_gpu`] calls. Each returned byte
/// vector is identical to [`rledict_gpu`] (and therefore to
/// [`crate::rledict::encode_to_vec`]) on that segment alone.
pub fn rledict_gpu_batch<B: ComputeBackend>(
    dev: &B,
    segments: &[&[u32]],
) -> (Vec<Vec<u8>>, LaunchStats) {
    let num_segs = segments.len();
    let n: usize = segments.iter().map(|s| s.len()).sum();
    let mut concat = Vec::with_capacity(n);
    let mut heads = Vec::with_capacity(n);
    // Element offset of each segment start (+ the total), for mapping the
    // global run space back to segments.
    let mut seg_elem = Vec::with_capacity(num_segs + 1);
    for seg in segments {
        seg_elem.push(concat.len());
        heads.extend((0..seg.len()).map(|k| u32::from(k == 0)));
        concat.extend_from_slice(seg);
    }
    seg_elem.push(n);

    let input = dev.upload_pooled(&concat);
    let head_buf = dev.upload_pooled(&heads);
    let grid = n.div_ceil(BLOCK);

    // Flag run heads; a segment's first element is always a head so runs
    // never merge across a boundary. `heads[0] == 1` whenever n > 0, so
    // the `i - 1` load below is never reached at i == 0.
    let flags = dev.alloc_pooled_dirty::<u32>(n);
    let mut stats = dev.launch_contracted(
        "rle_flags",
        grid,
        || {
            AccessContract::default()
                .read(&input, Footprint::tiled_with_prev(BLOCK, n))
                .read(&head_buf, Footprint::tiled(BLOCK, n))
                .write(&flags, Footprint::tiled(BLOCK, n))
        },
        |ctx| {
            let base = ctx.block_idx() * BLOCK;
            let end = (base + BLOCK).min(n);
            for i in base..end {
                let v = ctx.ld_co(&input, i);
                let head = if ctx.ld_co(&head_buf, i) == 1 {
                    1
                } else {
                    let prev = ctx.ld_co(&input, i - 1);
                    ctx.add_inst(1);
                    u32::from(prev != v)
                };
                ctx.st_co(&flags, i, head);
            }
        },
    );

    let (positions, num_runs, scan_stats) = exclusive_scan(dev, &flags);
    stats += scan_stats;
    let num_runs = num_runs as usize;
    let values = dev.alloc_pooled_dirty::<u32>(num_runs);
    let starts = dev.alloc_pooled_dirty::<u32>(num_runs);
    stats += dev.launch_contracted(
        "rle_scatter",
        grid,
        || {
            AccessContract::default()
                .read(&flags, Footprint::tiled(BLOCK, n))
                .read(&positions, Footprint::tiled(BLOCK, n))
                .read(&input, Footprint::tiled(BLOCK, n))
                .write(&values, scatter_footprint(&positions, n, num_runs))
                .write(&starts, scatter_footprint(&positions, n, num_runs))
        },
        |ctx| {
            let base = ctx.block_idx() * BLOCK;
            let end = (base + BLOCK).min(n);
            for i in base..end {
                if ctx.ld_co(&flags, i) == 1 {
                    let p = ctx.ld_co(&positions, i) as usize;
                    let v = ctx.ld_co(&input, i);
                    ctx.st_rand(&values, p, v);
                    ctx.st_rand(&starts, p, i as u32);
                }
            }
        },
    );

    // Lengths from consecutive starts. Segments are contiguous in the
    // concatenation and every segment head is a forced run head, so the
    // next run's start is the current run's end even across a boundary.
    let lengths = dev.alloc_pooled_dirty::<u32>(num_runs);
    let run_grid = num_runs.div_ceil(BLOCK);
    stats += dev.launch_contracted(
        "rle_lengths",
        run_grid,
        || {
            AccessContract::default()
                .read(&starts, Footprint::tiled_with_next(BLOCK, num_runs))
                .write(&lengths, Footprint::tiled(BLOCK, num_runs))
        },
        |ctx| {
            let base = ctx.block_idx() * BLOCK;
            let end = (base + BLOCK).min(num_runs);
            for i in base..end {
                let s = ctx.ld_co(&starts, i);
                let e = if i + 1 < num_runs {
                    ctx.ld_co(&starts, i + 1)
                } else {
                    n as u32
                };
                ctx.st_co(&lengths, i, e - s);
            }
        },
    );

    let values_host = values.to_vec();
    let lengths_host = lengths.to_vec();
    let starts_host = starts.to_vec();

    // Partition the run space back into per-segment ranges: run starts are
    // strictly ascending, so a single merge pass suffices.
    let mut run_off = Vec::with_capacity(num_segs + 1);
    let mut r = 0usize;
    for &e in &seg_elem {
        while r < num_runs && (starts_host[r] as usize) < e {
            r += 1;
        }
        run_off.push(r);
    }

    let mut writers: Vec<BitWriter> = (0..num_segs).map(|_| BitWriter::new()).collect();
    stats += dict_gpu_segmented(dev, &values_host, &run_off, &mut writers);
    stats += dict_gpu_segmented(dev, &lengths_host, &run_off, &mut writers);
    (writers.into_iter().map(BitWriter::finish).collect(), stats)
}

/// One segmented DICT level of the batched chain: builds every segment's
/// dictionary and index stream with shared launches (one unique-flags /
/// scan / scatter / binary-search sequence for the whole batch), then
/// bit-packs each segment into its writer — byte-identical to running
/// [`dict_gpu`] on each segment individually.
///
/// `data` holds the segments concatenated; segment `j` occupies
/// `run_off[j]..run_off[j + 1]`.
fn dict_gpu_segmented<B: ComputeBackend>(
    dev: &B,
    data: &[u32],
    run_off: &[usize],
    writers: &mut [BitWriter],
) -> LaunchStats {
    let n = data.len();

    // Per-segment host sort of a concatenated copy (mirroring the classic
    // GPU sort primitive in `dict_gpu`); forced heads stop the unique pass
    // from merging equal values across a segment boundary, and a segment
    // id per element steers the binary search to its own dictionary.
    let mut sorted = data.to_vec();
    let mut heads = vec![0u32; n];
    let mut data_seg = vec![0u32; n];
    for (j, w) in run_off.windows(2).enumerate() {
        sorted[w[0]..w[1]].sort_unstable();
        if w[0] < w[1] {
            heads[w[0]] = 1;
        }
        for s in &mut data_seg[w[0]..w[1]] {
            *s = j as u32;
        }
    }

    let sorted_buf = dev.upload_pooled(&sorted);
    let head_buf = dev.upload_pooled(&heads);
    let grid = n.div_ceil(BLOCK);
    let flags = dev.alloc_pooled_dirty::<u32>(n);
    let mut stats = dev.launch_contracted(
        "unique_flags",
        grid,
        || {
            AccessContract::default()
                .read(&sorted_buf, Footprint::tiled_with_prev(BLOCK, n))
                .read(&head_buf, Footprint::tiled(BLOCK, n))
                .write(&flags, Footprint::tiled(BLOCK, n))
        },
        |ctx| {
            let base = ctx.block_idx() * BLOCK;
            let end = (base + BLOCK).min(n);
            for i in base..end {
                let v = ctx.ld_co(&sorted_buf, i);
                let is_new = if ctx.ld_co(&head_buf, i) == 1 {
                    1
                } else {
                    let prev = ctx.ld_co(&sorted_buf, i - 1);
                    ctx.add_inst(1);
                    u32::from(prev != v)
                };
                ctx.st_co(&flags, i, is_new);
            }
        },
    );

    let (positions, dict_total, scan_stats) = exclusive_scan(dev, &flags);
    stats += scan_stats;
    let dict_total = dict_total as usize;
    let dict_buf = dev.alloc_pooled_dirty::<u32>(dict_total);
    stats += dev.launch_contracted(
        "unique_scatter",
        grid,
        || {
            AccessContract::default()
                .read(&flags, Footprint::tiled(BLOCK, n))
                .read(&positions, Footprint::tiled(BLOCK, n))
                .read(&sorted_buf, Footprint::tiled(BLOCK, n))
                .write(&dict_buf, scatter_footprint(&positions, n, dict_total))
        },
        |ctx| {
            let base = ctx.block_idx() * BLOCK;
            let end = (base + BLOCK).min(n);
            for i in base..end {
                if ctx.ld_co(&flags, i) == 1 {
                    let pos = ctx.ld_co(&positions, i);
                    let v = ctx.ld_co(&sorted_buf, i);
                    ctx.st_rand(&dict_buf, pos as usize, v);
                }
            }
        },
    );

    // Segment j's dictionary occupies `dict_off[j]..dict_off[j + 1]` of
    // the compacted buffer: the scanned flag position at the segment's
    // first element is exactly where its unique values begin.
    let positions_host = positions.to_vec();
    let dict_off: Vec<u32> = run_off
        .iter()
        .map(|&r| {
            if r < n {
                positions_host[r]
            } else {
                dict_total as u32
            }
        })
        .collect();

    // Segmented parallel binary search: each element searches only its own
    // segment's dictionary slice and records a segment-local index.
    let seg_buf = dev.upload_pooled(&data_seg);
    let off_buf = dev.upload_pooled(&dict_off);
    let queries = dev.upload_pooled(data);
    let indices = dev.alloc_pooled_dirty::<u32>(n);
    stats += dev.launch_contracted(
        "binary_search",
        grid,
        || {
            AccessContract::default()
                .read(&queries, Footprint::tiled(BLOCK, n))
                .read(&seg_buf, Footprint::tiled(BLOCK, n))
                .read(&off_buf, Footprint::All)
                .read(&dict_buf, Footprint::All)
                .write(&indices, Footprint::tiled(BLOCK, n))
        },
        |ctx| {
            let base = ctx.block_idx() * BLOCK;
            let end = (base + BLOCK).min(n);
            for i in base..end {
                let q = ctx.ld_co(&queries, i);
                let j = ctx.ld_co(&seg_buf, i) as usize;
                let d0 = ctx.ld_rand(&off_buf, j) as usize;
                let d1 = ctx.ld_rand(&off_buf, j + 1) as usize;
                let (mut lo, mut hi) = (d0, d1);
                while lo + 1 < hi {
                    let mid = (lo + hi) / 2;
                    let v = ctx.ld_rand(&dict_buf, mid);
                    if v <= q {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                    ctx.add_inst(2);
                }
                debug_assert_eq!(
                    ctx.ld_rand(&dict_buf, lo),
                    q,
                    "query missing from dictionary"
                );
                ctx.st_co(&indices, i, (lo - d0) as u32);
            }
        },
    );

    let dict_host = dict_buf.to_vec();
    let idx_host = indices.to_vec();
    for (j, w) in run_off.windows(2).enumerate() {
        let (d0, d1) = (dict_off[j] as usize, dict_off[j + 1] as usize);
        dict::encode_indices(&idx_host[w[0]..w[1]], &dict_host[d0..d1], &mut writers[j]);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rle, rledict};
    use gpu_sim::Device;
    use proptest::prelude::*;

    #[test]
    fn gpu_rle_matches_cpu() {
        let dev = Device::m2050();
        let data: Vec<u32> = (0..5000).map(|i| (i / 37) % 11).collect();
        let input = dev.upload(&data);
        let (v, l, stats) = rle_gpu(&dev, &input);
        let (ev, el) = rle::encode(&data);
        assert_eq!(v, ev);
        assert_eq!(l, el);
        assert!(stats.counters.g_load() > 0);
    }

    #[test]
    fn gpu_rledict_bytes_identical_to_cpu() {
        let dev = Device::m2050();
        let data: Vec<u32> = (0..4000).map(|i| 30 + ((i / 23) % 9)).collect();
        let (gpu_bytes, _) = rledict_gpu(&dev, &data);
        let cpu_bytes = rledict::encode_to_vec(&data);
        assert_eq!(gpu_bytes, cpu_bytes);
        assert_eq!(rledict::decode_from_slice(&gpu_bytes).unwrap(), data);
    }

    #[test]
    fn empty_column() {
        let dev = Device::m2050();
        let (bytes, _) = rledict_gpu(&dev, &[]);
        assert_eq!(bytes, rledict::encode_to_vec(&[]));
    }

    #[test]
    fn batched_segments_byte_identical_to_per_column() {
        let dev = Device::m2050();
        let segs: Vec<Vec<u32>> = vec![
            (0..4000).map(|i| 30 + ((i / 23) % 9)).collect(),
            Vec::new(),
            vec![7; 300],
            (0..1500).map(|i| (i / 37) % 11).collect(),
            vec![42],
        ];
        let refs: Vec<&[u32]> = segs.iter().map(Vec::as_slice).collect();
        let (bytes, stats) = rledict_gpu_batch(&dev, &refs);
        assert_eq!(bytes.len(), segs.len());
        for (b, s) in bytes.iter().zip(&segs) {
            assert_eq!(b, &rledict::encode_to_vec(s));
        }
        assert!(stats.counters.g_load() > 0);
    }

    #[test]
    fn batched_chain_launch_count_is_flat() {
        // The whole point of the batch: the launch count is a constant 18
        // (RLE flags/scan×3/scatter/lengths + 2 DICT levels of
        // flags/scan×3/scatter/search) no matter how many columns ride in
        // the batch.
        let dev = Device::m2050();
        let one: Vec<u32> = (0..900).map(|i| (i / 13) % 5).collect();
        rledict_gpu_batch(&dev, &[&one]);
        let solo = dev.ledger().launches;
        assert_eq!(solo, 18);

        dev.reset_ledger();
        let segs: Vec<Vec<u32>> = (0u32..12)
            .map(|s| (0..700 + s * 31).map(|i| (i / 7) % (s + 2)).collect())
            .collect();
        let refs: Vec<&[u32]> = segs.iter().map(Vec::as_slice).collect();
        rledict_gpu_batch(&dev, &refs);
        assert_eq!(dev.ledger().launches, solo);
    }

    #[test]
    fn batched_all_empty_launches_nothing() {
        let dev = Device::m2050();
        let (bytes, stats) = rledict_gpu_batch(&dev, &[&[], &[]]);
        assert_eq!(bytes.len(), 2);
        for b in &bytes {
            assert_eq!(b, &rledict::encode_to_vec(&[]));
        }
        assert_eq!(stats.counters.instructions, 0);
        assert_eq!(dev.ledger().launches, 0);
    }

    #[test]
    fn compression_chain_contracts_verify_under_conformance() {
        use gpu_sim::{DeviceConfig, SanitizerConfig};
        let dev = gpu_sim::Device::new(DeviceConfig::tesla_m2050())
            .with_sanitizer(SanitizerConfig::all().with_conformance())
            .with_contracts();
        let segs: Vec<Vec<u32>> = vec![
            (0..1200).map(|i| 30 + ((i / 23) % 9)).collect(),
            Vec::new(),
            vec![7; 300],
            (0..900).map(|i| (i / 37) % 11).collect(),
        ];
        let refs: Vec<&[u32]> = segs.iter().map(Vec::as_slice).collect();
        let (bytes, _) = rledict_gpu_batch(&dev, &refs);
        for (b, s) in bytes.iter().zip(&segs) {
            assert_eq!(b, &rledict::encode_to_vec(s));
        }
        let (solo_bytes, _) = rledict_gpu(&dev, &segs[0]);
        assert_eq!(solo_bytes, rledict::encode_to_vec(&segs[0]));

        let report = dev.contract_report();
        let totals = report.totals();
        assert!(totals.verified > 0);
        assert_eq!(totals.refuted, 0, "{:?}", report.diagnostics);
        assert_eq!(totals.assumed, 0, "every compression launch is contracted");
        let counts = dev.sanitizer_report().unwrap().counts;
        assert_eq!(counts.conformance_escapes, 0);
        assert_eq!(counts.overwide_declarations, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn gpu_cpu_parity(data in proptest::collection::vec(0u32..50, 0..1500)) {
            let dev = Device::m2050();
            let (gpu_bytes, _) = rledict_gpu(&dev, &data);
            prop_assert_eq!(gpu_bytes, rledict::encode_to_vec(&data));
        }

        #[test]
        fn batched_parity_arbitrary_segments(
            segs in proptest::collection::vec(
                proptest::collection::vec(0u32..50, 0..400), 0..8),
        ) {
            let dev = Device::m2050();
            let refs: Vec<&[u32]> = segs.iter().map(Vec::as_slice).collect();
            let (bytes, _) = rledict_gpu_batch(&dev, &refs);
            prop_assert_eq!(bytes.len(), segs.len());
            for (b, s) in bytes.iter().zip(&segs) {
                prop_assert_eq!(b, &rledict::encode_to_vec(s));
            }
        }
    }
}
