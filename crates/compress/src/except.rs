//! Exception-list (difference) encoding for SNP-related columns.
//!
//! §V-B: "Several columns related to SNPs are similar due to the low
//! probability of SNPs. We only need to store differences for them."
//! A column is encoded against a *predicted* column (e.g. the consensus
//! genotype is predicted to be the homozygous-reference letter); only the
//! positions where the actual value differs are stored.

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;

/// Encode `data` as the positions where it differs from `predicted`.
///
/// Layout: `[count u32][n_diff u32][(idx u32, value u8)…]`.
///
/// # Panics
/// Panics if the two columns differ in length.
pub fn encode(data: &[u8], predicted: &[u8], w: &mut BitWriter) {
    assert_eq!(data.len(), predicted.len(), "prediction length mismatch");
    let diffs: Vec<(u32, u8)> = data
        .iter()
        .zip(predicted)
        .enumerate()
        .filter(|&(_, (a, p))| a != p)
        .map(|(i, (&a, _))| (i as u32, a))
        .collect();
    w.write_u32(data.len() as u32);
    w.write_u32(diffs.len() as u32);
    for &(i, v) in &diffs {
        w.write_u32(i);
        w.write_u8(v);
    }
}

/// Decode against the same `predicted` column used for encoding.
pub fn decode(predicted: &[u8], r: &mut BitReader<'_>) -> Result<Vec<u8>, CodecError> {
    let count = r.read_u32()? as usize;
    if count != predicted.len() {
        return Err(CodecError::corrupt(format!(
            "prediction length {} does not match stored count {}",
            predicted.len(),
            count
        )));
    }
    let n_diff = r.read_u32()? as usize;
    if n_diff > count {
        return Err(CodecError::corrupt("more differences than rows"));
    }
    if n_diff * 5 > r.remaining_bytes() + 4 {
        return Err(CodecError::corrupt("implausible exception-list header"));
    }
    let mut out = predicted.to_vec();
    for _ in 0..n_diff {
        let i = r.read_u32()? as usize;
        let v = r.read_u8()?;
        if i >= count {
            return Err(CodecError::corrupt("difference index out of range"));
        }
        out[i] = v;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(data: &[u8], predicted: &[u8]) -> Vec<u8> {
        let mut w = BitWriter::new();
        encode(data, predicted, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        decode(predicted, &mut r).unwrap()
    }

    #[test]
    fn perfect_prediction_is_8_bytes() {
        let col = vec![b'A'; 10_000];
        let mut w = BitWriter::new();
        encode(&col, &col, &mut w);
        assert_eq!(w.finish().len(), 8);
    }

    #[test]
    fn differences_restored() {
        let predicted = b"AAAAAAAA".to_vec();
        let mut data = predicted.clone();
        data[2] = b'R';
        data[7] = b'M';
        assert_eq!(roundtrip(&data, &predicted), data);
    }

    #[test]
    fn wrong_prediction_length_detected() {
        let mut w = BitWriter::new();
        encode(b"AB", b"AB", &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(decode(b"ABC", &mut r).is_err());
    }

    #[test]
    #[should_panic(expected = "prediction length mismatch")]
    fn encode_length_mismatch_panics() {
        let mut w = BitWriter::new();
        encode(b"AB", b"A", &mut w);
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(
            pairs in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..300)
        ) {
            let data: Vec<u8> = pairs.iter().map(|&(a, _)| a).collect();
            let pred: Vec<u8> = pairs.iter().map(|&(_, p)| p).collect();
            prop_assert_eq!(roundtrip(&data, &pred), data);
        }
    }
}
