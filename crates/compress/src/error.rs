//! Codec error type.

use std::fmt;

/// Upper bound on the element count any single decoded column may claim.
/// Far above any real window (the paper's largest is 450,000 sites) and
/// low enough that a corrupted length field cannot trigger a multi-GiB
/// allocation before the decoder notices the stream is short.
pub const MAX_ELEMENTS: usize = 1 << 27;

/// Errors produced while decoding compressed streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before the declared payload was complete.
    Truncated(&'static str),
    /// A structural field held an impossible value.
    Corrupt(String),
}

impl CodecError {
    /// Convenience constructor for corrupt-stream errors.
    pub fn corrupt(msg: impl Into<String>) -> Self {
        CodecError::Corrupt(msg.into())
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated(what) => write!(f, "truncated stream while reading {what}"),
            CodecError::Corrupt(msg) => write!(f, "corrupt stream: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            CodecError::Truncated("header").to_string(),
            "truncated stream while reading header"
        );
        assert!(CodecError::corrupt("bad magic")
            .to_string()
            .contains("bad magic"));
    }
}
