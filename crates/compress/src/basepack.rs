//! 2-bit packing for base-type columns.
//!
//! §V-B: "For the three columns containing four base types, two bits are
//! used to encode each type." Sites whose value is `N` (code 4 — uncovered
//! sites or reference gaps) are carried in an exception list.

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;

/// Code for an N base in the unpacked column.
pub const N: u8 = 4;

/// Pack a column of base codes (0..=4).
///
/// Layout: `[count u32][n_exceptions u32][exception idx u32…][2-bit codes]`.
///
/// # Panics
/// Panics if a code exceeds 4.
pub fn encode(data: &[u8], w: &mut BitWriter) {
    assert!(data.iter().all(|&c| c <= N), "invalid base code");
    let exceptions: Vec<u32> = data
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c == N)
        .map(|(i, _)| i as u32)
        .collect();
    w.write_u32(data.len() as u32);
    w.write_u32(exceptions.len() as u32);
    for &i in &exceptions {
        w.write_u32(i);
    }
    for &c in data {
        // N positions pack as 0; the exception list restores them.
        w.write_bits(u64::from(c & 0b11), 2);
    }
}

/// Unpack a column of base codes.
pub fn decode(r: &mut BitReader<'_>) -> Result<Vec<u8>, CodecError> {
    let count = r.read_u32()? as usize;
    let n_exc = r.read_u32()? as usize;
    if n_exc > count {
        return Err(CodecError::corrupt("more N exceptions than rows"));
    }
    if count > crate::error::MAX_ELEMENTS || n_exc * 4 + count / 4 > r.remaining_bytes() + 4 {
        return Err(CodecError::corrupt("implausible base-column header"));
    }
    let mut exceptions = Vec::with_capacity(n_exc);
    for _ in 0..n_exc {
        let i = r.read_u32()? as usize;
        if i >= count {
            return Err(CodecError::corrupt("N exception index out of range"));
        }
        exceptions.push(i);
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(r.read_bits(2)? as u8);
    }
    for i in exceptions {
        out[i] = N;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let mut w = BitWriter::new();
        encode(data, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        decode(&mut r).unwrap()
    }

    #[test]
    fn packs_four_per_byte() {
        let data: Vec<u8> = (0..4000).map(|i| (i % 4) as u8).collect();
        let mut w = BitWriter::new();
        encode(&data, &mut w);
        let bytes = w.finish();
        assert_eq!(bytes.len(), 8 + 1000);
        let mut r = BitReader::new(&bytes);
        assert_eq!(decode(&mut r).unwrap(), data);
    }

    #[test]
    fn n_sites_restored() {
        let data = vec![0u8, 4, 2, 4, 3];
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn empty() {
        assert!(roundtrip(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid base code")]
    fn rejects_bad_codes() {
        let mut w = BitWriter::new();
        encode(&[5], &mut w);
    }

    #[test]
    fn corrupt_exception_index_detected() {
        let mut w = BitWriter::new();
        w.write_u32(2); // count
        w.write_u32(1); // one exception
        w.write_u32(9); // out of range
        w.write_bits(0, 4);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(decode(&mut r).is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(data in proptest::collection::vec(0u8..=4, 0..400)) {
            prop_assert_eq!(roundtrip(&data), data);
        }
    }
}
