//! RLE-DICT: the paper's two-level scheme for quality-related columns.
//!
//! §V-B: "We first apply run-length encoding (RLE) to compress repeats,
//! which produces two arrays storing the value and length for each run.
//! Next, we use the dictionary-based encoding (DICT) to compress both run
//! value and length arrays."

use crate::bitio::{BitReader, BitWriter};
use crate::dict;
use crate::error::CodecError;
use crate::rle;

/// Compress one column.
pub fn encode(data: &[u32], w: &mut BitWriter) {
    let (values, lengths) = rle::encode(data);
    dict::encode(&values, w);
    dict::encode(&lengths, w);
}

/// Compress one column into fresh bytes.
pub fn encode_to_vec(data: &[u32]) -> Vec<u8> {
    let mut w = BitWriter::new();
    encode(data, &mut w);
    w.finish()
}

/// Decompress one column.
pub fn decode(r: &mut BitReader<'_>) -> Result<Vec<u32>, CodecError> {
    let values = dict::decode(r)?;
    let lengths = dict::decode(r)?;
    if values.len() != lengths.len() {
        return Err(CodecError::corrupt(
            "RLE value/length arrays differ in size",
        ));
    }
    // A corrupted run length must not expand into a multi-GiB column.
    let total: u64 = lengths.iter().map(|&l| u64::from(l)).sum();
    if total > crate::error::MAX_ELEMENTS as u64 {
        return Err(CodecError::corrupt("implausible run-length expansion"));
    }
    Ok(rle::decode(&values, &lengths))
}

/// Decompress from a byte slice.
pub fn decode_from_slice(bytes: &[u8]) -> Result<Vec<u32>, CodecError> {
    let mut r = BitReader::new(bytes);
    decode(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quality_like_column_compresses_hard() {
        // Runs of tens of repeats over < 100 distinct values — the regime
        // the paper describes for quality columns.
        let mut data = Vec::new();
        for i in 0..500u32 {
            let v = 30 + (i % 12);
            data.extend(std::iter::repeat_n(v, 20));
        }
        let bytes = encode_to_vec(&data);
        let ratio = (data.len() * 4) as f64 / bytes.len() as f64;
        assert!(ratio > 15.0, "ratio only {ratio:.1}");
        assert_eq!(decode_from_slice(&bytes).unwrap(), data);
    }

    #[test]
    fn incompressible_column_still_roundtrips() {
        let data: Vec<u32> = (0..257).collect();
        let bytes = encode_to_vec(&data);
        assert_eq!(decode_from_slice(&bytes).unwrap(), data);
    }

    #[test]
    fn empty_column() {
        let bytes = encode_to_vec(&[]);
        assert!(decode_from_slice(&bytes).unwrap().is_empty());
    }

    #[test]
    fn truncated_stream_errors() {
        let bytes = encode_to_vec(&[1, 1, 2, 3]);
        for cut in 0..bytes.len() {
            // Every strict prefix must fail or produce a shorter column —
            // never panic.
            let _ = decode_from_slice(&bytes[..cut]);
        }
        assert!(decode_from_slice(&bytes[..4]).is_err());
    }

    proptest! {
        #[test]
        fn roundtrip(data in proptest::collection::vec(0u32..64, 0..600)) {
            let bytes = encode_to_vec(&data);
            prop_assert_eq!(decode_from_slice(&bytes).unwrap(), data);
        }
    }
}
