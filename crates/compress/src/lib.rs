//! # compress — GSNP's customized compression schemes
//!
//! §V of the paper replaces general-purpose compression with lightweight,
//! column-aware codecs for the 17-column SNP result table and the
//! temporary input file, because (a) gzip-class algorithms are sequential
//! and heavyweight, and (b) they miss the structure of genomic tables.
//!
//! * [`bitio`] — bit-granular readers/writers underlying every codec.
//! * [`rle`] — run-length encoding.
//! * [`dict`] — dictionary (least-bits) encoding.
//! * [`rledict`] — the paper's two-level RLE-DICT scheme for the six
//!   quality-related columns.
//! * [`basepack`] — 2-bit packing for base-type columns (with an N
//!   exception list).
//! * [`sparse`] — non-zero lists for the second-allele columns.
//! * [`except`] — difference/exception lists for SNP-related columns.
//! * [`column`] — the whole-table codec combining all of the above, plus
//!   the streaming decompression API (§V-B's "decompression tools").
//! * [`input_codec`] — the compressed temporary input file written by
//!   `cal_p_matrix` and re-read by `read_site`.
//! * [`lz`] — a from-scratch LZSS + canonical-Huffman general-purpose
//!   compressor standing in for the paper's zlib/gzip comparator.
//! * [`gpu`] — RLE-DICT executed on the simulated device with the
//!   reduction/scan/sort/unique/binary-search primitives, as in §V-B.

pub mod basepack;
pub mod bitio;
pub mod column;
pub mod dict;
pub mod error;
pub mod except;
pub mod gpu;
pub mod input_codec;
pub mod lz;
pub mod rle;
pub mod rledict;
pub mod sparse;

pub use error::{CodecError, MAX_ELEMENTS};
