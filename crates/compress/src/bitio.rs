//! Bit-granular I/O.
//!
//! All customized codecs and the LZ baseline serialize through these two
//! types. Bits are packed LSB-first within each byte; multi-byte integers
//! written through the byte-level helpers are little-endian.

use crate::error::CodecError;

/// Accumulating bit writer.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// Fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer that appends to `buf`'s existing bytes — lets callers encode
    /// straight into an output file without an intermediate copy.
    pub fn with_buf(buf: Vec<u8>) -> Self {
        BitWriter {
            buf,
            ..Self::default()
        }
    }

    /// Append the low `n` bits of `v` (LSB-first). `n` may be 0..=57.
    #[inline]
    pub fn write_bits(&mut self, v: u64, n: u32) {
        debug_assert!(n <= 57, "write_bits supports up to 57 bits at once");
        debug_assert!(n == 64 || v < (1u64 << n), "value wider than bit count");
        self.acc |= v << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.buf.push((self.acc & 0xFF) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Byte-align and append a whole byte.
    pub fn write_u8(&mut self, v: u8) {
        self.align();
        self.buf.push(v);
    }

    /// Byte-align and append a little-endian `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.align();
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Byte-align and append a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.align();
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Byte-align and append raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.align();
        self.buf.extend_from_slice(bytes);
    }

    /// Pad with zero bits to the next byte boundary.
    pub fn align(&mut self) {
        if self.nbits > 0 {
            self.buf.push((self.acc & 0xFF) as u8);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Finish and take the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.align();
        self.buf
    }

    /// Bytes written so far (including any partial byte).
    pub fn len(&self) -> usize {
        self.buf.len() + usize::from(self.nbits > 0)
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty() && self.nbits == 0
    }
}

/// Bit reader over a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Read from `buf` starting at its first byte.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader {
            buf,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    /// Read `n` bits (LSB-first), `n ≤ 57`.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64, CodecError> {
        debug_assert!(n <= 57);
        while self.nbits < n {
            let byte = *self
                .buf
                .get(self.pos)
                .ok_or(CodecError::Truncated("bit stream"))?;
            self.acc |= (byte as u64) << self.nbits;
            self.nbits += 8;
            self.pos += 1;
        }
        let v = if n == 0 {
            0
        } else {
            self.acc & ((1u64 << n) - 1)
        };
        self.acc >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Discard partial-byte state and read a whole byte.
    pub fn read_u8(&mut self) -> Result<u8, CodecError> {
        self.align();
        let v = *self.buf.get(self.pos).ok_or(CodecError::Truncated("u8"))?;
        self.pos += 1;
        Ok(v)
    }

    /// Byte-aligned little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, CodecError> {
        self.align();
        let end = self.pos + 4;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(CodecError::Truncated("u32"))?;
        self.pos = end;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Byte-aligned little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, CodecError> {
        self.align();
        let end = self.pos + 8;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(CodecError::Truncated("u64"))?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Byte-aligned raw bytes.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.align();
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| CodecError::corrupt("length overflow"))?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(CodecError::Truncated("bytes"))?;
        self.pos = end;
        Ok(bytes)
    }

    /// Drop buffered bits so the next read starts at a byte boundary.
    pub fn align(&mut self) {
        // Any partially-consumed byte has already advanced `pos`; discard
        // the remaining bits of it.
        self.acc = 0;
        self.nbits = 0;
    }

    /// Byte offset of the next aligned read.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left in the underlying buffer (used by decoders to reject
    /// corrupted length fields before allocating for them).
    pub fn remaining_bytes(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Whether all bytes have been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.buf.len() && self.nbits == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFFFF, 16);
        w.write_bits(0, 0);
        w.write_bits(1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xFFFF);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert_eq!(r.read_bits(1).unwrap(), 1);
    }

    #[test]
    fn mixed_bits_and_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        w.write_u32(0xDEADBEEF);
        w.write_bits(0x1F, 5);
        w.write_u64(42);
        w.write_bytes(b"xyz");
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        assert_eq!(r.read_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_bits(5).unwrap(), 0x1F);
        assert_eq!(r.read_u64().unwrap(), 42);
        assert_eq!(r.read_bytes(3).unwrap(), b"xyz");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_reads_error() {
        let mut r = BitReader::new(&[0xAB]);
        assert!(r.read_u32().is_err());
        let mut r = BitReader::new(&[]);
        assert!(r.read_bits(1).is_err());
        assert!(matches!(r.read_u8(), Err(CodecError::Truncated(_))));
    }

    #[test]
    fn empty_writer() {
        let w = BitWriter::new();
        assert!(w.is_empty());
        assert_eq!(w.finish(), Vec::<u8>::new());
    }

    proptest! {
        #[test]
        fn arbitrary_bit_sequences_roundtrip(
            fields in proptest::collection::vec((any::<u64>(), 1u32..=57), 0..64)
        ) {
            let mut w = BitWriter::new();
            for &(v, n) in &fields {
                w.write_bits(v & ((1u64 << n) - 1), n);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &(v, n) in &fields {
                prop_assert_eq!(r.read_bits(n).unwrap(), v & ((1u64 << n) - 1));
            }
        }
    }
}
