//! Run-length encoding.
//!
//! The first level of the RLE-DICT scheme (§V-B): quality-related columns
//! repeat for runs of consecutive sites because overlapping reads carry
//! the same quality, so a column compresses to parallel `(value, length)`
//! arrays.

/// Run-length encode: returns parallel `(values, lengths)` arrays.
pub fn encode(data: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let mut values = Vec::new();
    let mut lengths = Vec::new();
    let mut it = data.iter();
    if let Some(&first) = it.next() {
        let mut cur = first;
        let mut run = 1u32;
        for &v in it {
            if v == cur {
                run += 1;
            } else {
                values.push(cur);
                lengths.push(run);
                cur = v;
                run = 1;
            }
        }
        values.push(cur);
        lengths.push(run);
    }
    (values, lengths)
}

/// Invert [`encode`].
pub fn decode(values: &[u32], lengths: &[u32]) -> Vec<u32> {
    debug_assert_eq!(values.len(), lengths.len());
    let total: usize = lengths.iter().map(|&l| l as usize).sum();
    let mut out = Vec::with_capacity(total);
    for (&v, &l) in values.iter().zip(lengths) {
        out.extend(std::iter::repeat_n(v, l as usize));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encodes_runs() {
        let (v, l) = encode(&[5, 5, 5, 2, 2, 9]);
        assert_eq!(v, vec![5, 2, 9]);
        assert_eq!(l, vec![3, 2, 1]);
    }

    #[test]
    fn empty_input() {
        let (v, l) = encode(&[]);
        assert!(v.is_empty() && l.is_empty());
        assert!(decode(&v, &l).is_empty());
    }

    #[test]
    fn single_long_run() {
        let data = vec![7u32; 1000];
        let (v, l) = encode(&data);
        assert_eq!(v.len(), 1);
        assert_eq!(l, vec![1000]);
        assert_eq!(decode(&v, &l), data);
    }

    proptest! {
        #[test]
        fn roundtrip(data in proptest::collection::vec(0u32..16, 0..500)) {
            let (v, l) = encode(&data);
            prop_assert_eq!(decode(&v, &l), data);
            // No two adjacent runs share a value.
            for w in v.windows(2) {
                prop_assert_ne!(w[0], w[1]);
            }
            prop_assert!(l.iter().all(|&x| x > 0));
        }
    }
}
