//! Minimal embedded HTTP stats endpoint (`gsnp call --stats-addr`).
//!
//! A single `std::net::TcpListener` accept loop on its own thread serves
//! three read-only routes from a shared [`ProgressTracker`]:
//!
//! * `/health` — JSON liveness probe (`{"status":"ok","done":...}`),
//! * `/progress` — the heartbeat snapshot as JSON,
//! * `/metrics` — Prometheus text exposition (progress gauges, per-lane
//!   series, latency histograms, build info).
//!
//! No dependencies beyond `std::net`: requests are parsed to the first
//! line of a `GET`, responses are complete `HTTP/1.1` messages with
//! `Connection: close`. This is deliberately the seed of the future
//! `gsnp serve` daemon (ROADMAP item 1) — the routing and exposition
//! grow there, the transport stays this simple.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::progress::ProgressTracker;

/// A running stats endpoint. Shuts down (and joins its thread) on
/// [`StatsServer::shutdown`] or drop.
pub struct StatsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl StatsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9090`; port 0 picks a free port) and
    /// start serving `tracker` on a background thread.
    pub fn start(addr: &str, tracker: Arc<ProgressTracker>) -> std::io::Result<StatsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("gsnp-stats".to_string())
            .spawn(move || serve_loop(listener, tracker, stop2))
            .expect("spawn stats thread");
        Ok(StatsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, unblock the accept loop, and join the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for StatsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

fn serve_loop(listener: TcpListener, tracker: Arc<ProgressTracker>, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        if let Ok(stream) = stream {
            handle_conn(stream, &tracker);
        }
    }
}

fn handle_conn(mut stream: TcpStream, tracker: &Arc<ProgressTracker>) {
    // A slow or stuck client must not wedge the single-threaded loop.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 1024];
    let mut used = 0usize;
    // Read until the end of the request head (or the buffer fills; the
    // request line always fits in 1 KiB).
    while used < buf.len() {
        match stream.read(&mut buf[used..]) {
            Ok(0) => break,
            Ok(n) => {
                used += n;
                if buf[..used].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let head = String::from_utf8_lossy(&buf[..used]);
    let mut first = head.lines().next().unwrap_or("").split(' ');
    let method = first.next().unwrap_or("");
    let path = first.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "application/json",
            "{\"error\":\"method not allowed\"}\n".to_string(),
        )
    } else {
        match path {
            "/health" => (
                "200 OK",
                "application/json",
                format!(
                    "{{\"status\":\"ok\",\"done\":{},\"elapsed_seconds\":{:.3}}}\n",
                    tracker.is_done(),
                    tracker.elapsed_seconds()
                ),
            ),
            "/progress" => (
                "200 OK",
                "application/json",
                tracker.progress().to_json() + "\n",
            ),
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                tracker.metrics().render_text(),
            ),
            _ => (
                "404 Not Found",
                "application/json",
                "{\"error\":\"not found\",\"routes\":[\"/health\",\"/progress\",\"/metrics\"]}\n"
                    .to_string(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_health_progress_metrics_and_404() {
        let tracker = Arc::new(ProgressTracker::new());
        tracker.set_total_windows(4);
        tracker.lane_batch(0, 2, 2000, 0.01);
        let server = StatsServer::start("127.0.0.1:0", Arc::clone(&tracker)).unwrap();
        let addr = server.addr();

        let health = get(addr, "/health");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.contains("\"status\":\"ok\""), "{health}");
        assert!(health.contains("\"done\":false"), "{health}");

        let progress = get(addr, "/progress");
        assert!(progress.contains("\"windows_done\":2"), "{progress}");
        let body = progress.split("\r\n\r\n").nth(1).unwrap().trim();
        gpu_sim::parse_json(body).expect("progress body is valid JSON");

        let metrics = get(addr, "/metrics");
        assert!(
            metrics.contains("# TYPE gsnp_window_seconds histogram"),
            "{metrics}"
        );
        assert!(metrics.contains("gsnp_build_info{"), "{metrics}");

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        tracker.finish();
        let health = get(addr, "/health");
        assert!(health.contains("\"done\":true"), "{health}");

        // shutdown joins the accept thread; reaching the next line
        // proves the loop exited cleanly.
        server.shutdown();
    }

    #[test]
    fn rejects_non_get() {
        let tracker = Arc::new(ProgressTracker::new());
        let server = StatsServer::start("127.0.0.1:0", tracker).unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        write!(s, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");
        server.shutdown();
    }
}
