//! The GSNP windowed pipeline (Fig. 2).
//!
//! ```text
//! cal_p_matrix ──► load_table ──► [ read_site → counting → likelihood
//!        │                          → posterior → output → recycle ]*
//!        └── compressed temporary input ──────────┘
//! ```
//!
//! The window loop runs either serially (`pipeline_depth = 1`) or as a
//! bounded four-stage streaming pipeline (`pipeline_depth ≥ 2`, the
//! default): producer (`read_site`), device (`counting` + likelihood),
//! `posterior`, and output each on a dedicated host thread, connected by
//! bounded channels so successive windows overlap. The output stage
//! reassembles windows in index order, keeping results and the compressed
//! file byte-identical to a serial run (§IV-G); per-stage busy/stall time
//! is reported in [`PipelineStats::overlap`].
//!
//! Every device component reports both the **host wall-clock** of the
//! simulation and the **modelled device time** from the cost model; the
//! reproduction harness reports the latter for "GPU" series and wall time
//! for CPU series (see `EXPERIMENTS.md`).

use std::time::Instant;

use compress::{column, input_codec};
use crossbeam::channel::bounded;
use gpu_sim::{
    AutoPolicy, BackendChoice, BackendDispatcher, ComputeBackend, DeviceConfig, DeviceGroup,
    LaunchStats,
};
use rayon::prelude::*;
use seqio::fasta::Reference;
use seqio::prior::PriorMap;
use seqio::result::{SnpRow, SnpTable};
use seqio::soap::AlignedRead;
use seqio::window::WindowReader;

use crate::arena::{ArenaPool, ArenaPoolStats, WindowArena};
use crate::counting::SparseWindow;
use crate::journal::Journal;
use crate::likelihood::{
    likelihood_comp_fused_gpu_into, likelihood_sort_gpu_into, DeviceTables, KernelVariant,
};
use crate::model::{posterior, ModelParams, SiteSummary, NUM_GENOTYPES};
use crate::progress::{LatencyHists, ProgressTracker, STAGE_OUTPUT, STAGE_POSTERIOR, STAGE_READ};
use crate::stream::{DeviceLaneStats, OrderedReassembler, OverlapStats, PipelineTrace, StageStats};
use crate::tables::SharedTables;

/// Per-component elapsed time in seconds, matching the columns of the
/// paper's Tables I and IV.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ComponentTimes {
    /// `cal_p_matrix` (+ table generation and upload in GSNP).
    pub cal_p: f64,
    /// `read_site` (window loading; includes temporary-input decompression).
    pub read_site: f64,
    /// `counting`.
    pub counting: f64,
    /// `likelihood_sort` (zero for the dense baseline).
    pub likelihood_sort: f64,
    /// `likelihood_comp`.
    pub likelihood_comp: f64,
    /// `posterior`.
    pub posterior: f64,
    /// `output` (compression + serialization).
    pub output: f64,
    /// `recycle`.
    pub recycle: f64,
}

impl ComponentTimes {
    /// Total of the likelihood sub-steps (the paper's `likeli.` column).
    pub fn likelihood(&self) -> f64 {
        self.likelihood_sort + self.likelihood_comp
    }

    /// End-to-end total.
    pub fn total(&self) -> f64 {
        self.cal_p
            + self.read_site
            + self.counting
            + self.likelihood()
            + self.posterior
            + self.output
            + self.recycle
    }
}

/// Aggregate pipeline statistics.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// Samples called in this run: 1 for the single-sample pipelines, `N`
    /// for a cohort run (where the site/observation/window totals below
    /// sum over all samples' lanes).
    pub samples: u64,
    /// Sites processed.
    pub num_sites: u64,
    /// Aligned-base observations processed.
    pub num_obs: u64,
    /// Windows processed.
    pub windows: u64,
    /// Variant calls emitted.
    pub snp_count: u64,
    /// Peak simulated-device memory, bytes (per device — each member of a
    /// sharded group holds its own tables and in-flight window).
    pub peak_device_bytes: u64,
    /// Peak host memory attributable to the pipeline's buffers, bytes.
    pub peak_host_bytes: u64,
    /// Per-stage busy/stall accounting for the window loop, including the
    /// per-device-worker breakdown ([`OverlapStats::devices`]).
    pub overlap: OverlapStats,
    /// Host arena recycling counters for the window loop.
    pub arena: ArenaPoolStats,
    /// Device buffer-pool counters at end of run, summed across the group.
    pub pool: gpu_sim::PoolStats,
    /// Sanitizer finding totals (summed across the group); all-zero unless
    /// [`GsnpConfig::sanitize`].
    pub sanitizer: gpu_sim::SanitizerCounts,
    /// End-of-run ledger snapshot of every device in the group, in device
    /// order (one entry per [`GsnpConfig::num_devices`]).
    pub ledgers: Vec<gpu_sim::DeviceLedger>,
    /// H2D bytes of one device's score-table upload. Every ledger in
    /// [`PipelineStats::ledgers`] records exactly one such charge, which is
    /// what lets sum-invariance tests compare an `N`-device run against a
    /// serial one.
    pub table_bytes: u64,
    /// Whole-run multipass size-class histogram (the paper's Fig. 7b
    /// classes `[0,1] … >64`): per-window [`sortnet::ClassTally`] reports
    /// merged across every window and device worker. Empty only when no
    /// window ran a sort.
    pub sort_classes: Vec<sortnet::ClassTally>,
    /// Per-kernel launch attribution merged across the device group:
    /// launches and modelled launch-overhead seconds by kernel name
    /// (sorted). The mega-batching layer's figure of merit — launches per
    /// site — derives from this and [`PipelineStats::num_sites`].
    pub kernel_launches: Vec<gpu_sim::KernelTally>,
    /// Static access-contract proof table merged across the device group
    /// (per-kernel verified/refuted/assumed tallies plus retained
    /// refutation diagnostics); empty unless [`GsnpConfig::contracts`].
    pub contracts: gpu_sim::ContractReport,
    /// Latency histograms accumulated by the run's
    /// [`crate::progress::ProgressTracker`]: per-window wall time,
    /// per-stage busy/stall, per-kernel launch wall, and device queue
    /// wait. Always populated (the pipeline creates a private tracker
    /// when [`GsnpConfig::progress`] is `None`); rendered by
    /// `gsnp profile` and the Prometheus expositions.
    pub hists: LatencyHists,
}

/// GSNP configuration.
#[derive(Debug, Clone)]
pub struct GsnpConfig {
    /// Sites per window (the paper's default: 256,000).
    pub window_size: usize,
    /// Simulated device.
    pub device: DeviceConfig,
    /// Bayesian model parameters.
    pub params: ModelParams,
    /// Which `likelihood_comp` kernel to run (GSNP uses `Optimized`).
    pub variant: KernelVariant,
    /// Write + re-read the compressed temporary input (§V-A). Disabling
    /// reads the in-memory alignments directly (used by ablations).
    pub compress_input: bool,
    /// Run output RLE-DICT columns on the device (§V-B).
    pub gpu_output: bool,
    /// Bounded-channel depth of the streaming window loop. `1` runs the
    /// stages serially on one thread; `2` (the default) double-buffers —
    /// window *k*'s host stages overlap window *k+1*'s device stage.
    /// Results are byte-identical at every depth (§IV-G).
    pub pipeline_depth: usize,
    /// Windows coalesced per mega-batched launch group. Each batch pays
    /// ONE launch per kernel — one multipass-sort pass per size class, one
    /// fused counting+likelihood kernel, one RLE-DICT chain for all its
    /// output columns — instead of one per window, amortising the cost
    /// model's per-launch overhead across the whole group. `0` (the
    /// default) tracks `pipeline_depth` so the in-flight window count and
    /// the launch-batch size stay matched per device lane. Results are
    /// byte-identical at every batch size (`tests/batch_parity.rs`).
    pub launch_batch: usize,
    /// Devices sharding the window loop. `1` (the default) is the
    /// single-device pipeline; `N ≥ 2` runs the device stage as `N`
    /// workers — each owning one member of a [`DeviceGroup`] and its own
    /// `DeviceTables` copy — pulling windows from a shared work-queue
    /// (greedy dispatch, so a skewed window never idles a sibling device),
    /// with the output stage reassembling window order. Results are
    /// byte-identical at every `(pipeline_depth, num_devices)`
    /// (`tests/shard_parity.rs`).
    pub num_devices: usize,
    /// Recycle window buffers: device allocations come from the
    /// [`gpu_sim::BufferPool`] and host buffers from an [`ArenaPool`], so
    /// the steady-state window loop allocates nothing. Disabling reverts
    /// to fresh allocations every window (the baseline pooled runs are
    /// proven byte-identical against).
    pub pooled: bool,
    /// Run the device under the full dynamic-checker suite
    /// ([`gpu_sim::SanitizerConfig::all`]): racecheck, initcheck,
    /// boundscheck and leakcheck on every kernel. Slower; results and
    /// hardware counters are unchanged. Findings land in
    /// [`PipelineStats::sanitizer`]. Off by default — recorded experiments
    /// must never enable it.
    pub sanitize: bool,
    /// Statically verify every kernel's declared [`gpu_sim::AccessContract`]
    /// before it launches (bounds + inter-block race-freedom by interval
    /// arithmetic — no lane executes on a refuted contract) and tally the
    /// per-kernel proof table into [`PipelineStats::contracts`]. Cheap
    /// (symbolic, per launch); results and hardware counters are
    /// unchanged. Off by default.
    pub contracts: bool,
    /// Attach a shared [`gpu_sim::TraceRecorder`]: every device in the
    /// group records kernel/transfer/pool events under its own
    /// `device{i}` process (simulated device clock), and the window loop
    /// records one host-clock track per pipeline stage and device lane,
    /// with steal and stall intervals marked. `None` (the default) records
    /// nothing, costs zero allocations, and leaves all outputs
    /// byte-identical (`tests/trace_layer.rs`). Export the recorder with
    /// [`gpu_sim::TraceRecorder::snapshot`] after the run. Ignored by
    /// [`GsnpCpuPipeline`], which has no device or stage structure to
    /// trace.
    pub trace: Option<std::sync::Arc<gpu_sim::TraceRecorder>>,
    /// Which compute backend executes the kernels: the instrumented
    /// simulator (`Sim`, the default — source of truth for Table III
    /// counters, sanitizer, and trace), the uninstrumented rayon host
    /// executor (`Native`, bit-identical results at real wall-clock
    /// speed), or per-launch adaptive dispatch (`Auto`). `Native` refuses
    /// configs that need sim-only features (`sanitize`, `trace`); `Auto`
    /// falls back to the simulator for those launches.
    pub backend: BackendChoice,
    /// Routing policy for the `Auto` backend (ignored by `Sim`/`Native`).
    /// [`AutoPolicy::native_min_blocks`] is the occupancy threshold below
    /// which a launch stays on the simulator; the CLI exposes it as
    /// `--auto-threshold`.
    pub auto: AutoPolicy,
    /// Pre-calibrated score tables to run against, skipping this run's own
    /// `cal_p_matrix`/`precompute` pass. `None` (the default) calibrates
    /// from the input reads as usual. The cohort pipeline sets this so one
    /// pooled calibration serves every sample; it is also how the parity
    /// suite makes a single-sample run comparable to a cohort lane.
    pub shared_tables: Option<std::sync::Arc<SharedTables>>,
    /// Live heartbeat/latency tracker, shared with the CLI's `--progress`
    /// stderr thread and the `--stats-addr` HTTP endpoint so the run can
    /// be observed while the window loop executes. `None` (the default)
    /// makes the pipeline create a private tracker — there is exactly
    /// one recording path either way — whose histograms still land in
    /// [`PipelineStats::hists`]. Recording never touches results: output
    /// is byte-identical with or without an external tracker.
    pub progress: Option<std::sync::Arc<ProgressTracker>>,
    /// Structured JSONL run journal (`--journal`). The pipeline appends
    /// per-batch, per-stage, per-lane, and per-device lifecycle events;
    /// the CLI brackets them with the `run_start` manifest and `run_end`
    /// summary. `None` (the default) journals nothing.
    pub journal: Option<std::sync::Arc<Journal>>,
}

impl Default for GsnpConfig {
    fn default() -> Self {
        GsnpConfig {
            window_size: 256_000,
            device: DeviceConfig::tesla_m2050(),
            params: ModelParams::default(),
            variant: KernelVariant::Optimized,
            compress_input: true,
            gpu_output: true,
            pipeline_depth: 2,
            launch_batch: 0,
            num_devices: 1,
            pooled: true,
            sanitize: false,
            contracts: false,
            trace: None,
            backend: BackendChoice::Sim,
            auto: AutoPolicy::default(),
            shared_tables: None,
            progress: None,
            journal: None,
        }
    }
}

impl GsnpConfig {
    /// The effective launch-batch size: [`GsnpConfig::launch_batch`], or
    /// `pipeline_depth.max(1)` when it is 0 (auto).
    pub fn launch_batch_size(&self) -> usize {
        if self.launch_batch == 0 {
            self.pipeline_depth.max(1)
        } else {
            self.launch_batch
        }
    }
}

/// Everything a GSNP run produces.
#[derive(Debug)]
pub struct GsnpOutput {
    /// Per-window result tables (kept for verification against SOAPsnp).
    pub tables: Vec<SnpTable>,
    /// The compressed result file (sequence of length-prefixed windows).
    pub compressed: Vec<u8>,
    /// Modelled component times: device components use the cost model's
    /// device time, host-side components use wall clock.
    pub times: ComponentTimes,
    /// Pure host wall-clock per component (what the simulation itself cost).
    pub wall: ComponentTimes,
    /// Aggregate statistics.
    pub stats: PipelineStats,
}

impl GsnpOutput {
    /// Flatten all windows into rows (for comparisons).
    pub fn all_rows(&self) -> Vec<SnpRow> {
        self.tables
            .iter()
            .flat_map(|t| t.rows.iter().copied())
            .collect()
    }
}

/// The GSNP pipeline driver.
pub struct GsnpPipeline {
    config: GsnpConfig,
}

impl GsnpPipeline {
    /// Create a pipeline with the given configuration.
    pub fn new(config: GsnpConfig) -> Self {
        GsnpPipeline { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &GsnpConfig {
        &self.config
    }

    /// Run over in-memory inputs.
    pub fn run(
        &self,
        reads: &[AlignedRead],
        reference: &Reference,
        priors: &PriorMap,
    ) -> GsnpOutput {
        let cfg = &self.config;
        // One tracker per run, external or private — every latency
        // observation flows through it either way (see
        // [`PipelineStats::hists`]).
        let tracker = cfg
            .progress
            .clone()
            .unwrap_or_else(|| std::sync::Arc::new(ProgressTracker::new()));
        let journal = cfg.journal.clone();
        let mut group = DeviceGroup::new(cfg.device.clone(), cfg.num_devices)
            .with_launch_hist(&tracker.kernel_hist());
        if cfg.sanitize {
            group = group.with_sanitizer(gpu_sim::SanitizerConfig::all());
        }
        if cfg.contracts {
            group = group.with_contracts();
        }
        if let Some(rec) = &cfg.trace {
            group = group.with_trace(rec);
        }
        tracker.set_total_windows((reference.len() as u64).div_ceil(cfg.window_size.max(1) as u64));
        tracker.begin_lanes(group.len());
        // Host-side pipeline tracks (one per stage + device lane); all
        // registration and interning happens here, before the first window.
        let ptrace = cfg
            .trace
            .as_ref()
            .map(|rec| PipelineTrace::new(rec, group.len()));
        group.set_pool_enabled(cfg.pooled);
        // One per-device dispatcher routes every kernel launch to the
        // configured backend. Construction refuses `Native` when sim-only
        // features (sanitizer, trace) are attached; `Auto` falls back to
        // the simulator for those launches instead.
        let dispatchers: Vec<BackendDispatcher<'_>> = group
            .devices()
            .iter()
            .map(|d| {
                BackendDispatcher::with_policy(d, cfg.backend, cfg.auto)
                    .unwrap_or_else(|e| panic!("gsnp: {e}"))
            })
            .collect();
        let mut times = ComponentTimes::default();
        let mut wall = ComponentTimes::default();
        let mut stats = PipelineStats {
            samples: 1,
            ..PipelineStats::default()
        };

        // ---- cal_p_matrix + load_table (Fig. 2 left column) ----
        let t0 = Instant::now();
        // Cohort runs inject pre-pooled tables (paying calibration once for
        // all samples); a plain run calibrates from its own reads.
        let shared = match &cfg.shared_tables {
            Some(st) => std::sync::Arc::clone(st),
            None => std::sync::Arc::new(SharedTables::calibrate(reads, reference, &cfg.params)),
        };
        // One host image, one upload (and one ledger charge) per device.
        let tables =
            DeviceTables::upload_group(&group, &shared.p_matrix, &shared.new_p, &shared.log_table);
        // Temporary compressed input written during the first pass (§V-A).
        let temp_input = if cfg.compress_input {
            Some(input_codec::compress_reads(&reference.name, reads))
        } else {
            None
        };
        let cal_wall = t0.elapsed().as_secs_f64();
        wall.cal_p = cal_wall;
        // Device time: table upload over PCIe on top of the host compute.
        // Each device's copy travels its own PCIe link, so the group pays
        // one upload of modelled latency regardless of its size.
        stats.table_bytes = tables[0].upload_bytes();
        times.cal_p = cal_wall + stats.table_bytes as f64 / cfg.device.pcie_bw;
        stats.peak_host_bytes += temp_input.as_ref().map_or(0, |t| t.len() as u64);

        let mut out = if cfg.pipeline_depth <= 1 && group.len() == 1 {
            self.window_loop_serial(
                &group,
                &dispatchers,
                &tables,
                temp_input,
                reads,
                reference,
                priors,
                ptrace.as_ref(),
                &tracker,
                journal.as_deref(),
                times,
                wall,
                stats,
            )
        } else {
            // A multi-device run always streams: even at depth 1 the
            // device workers need the channel topology to shard windows.
            self.window_loop_streamed(
                &group,
                &dispatchers,
                &tables,
                temp_input,
                reads,
                reference,
                priors,
                ptrace.as_ref(),
                &tracker,
                journal.as_deref(),
                times,
                wall,
                stats,
            )
        };
        out.stats.hists = tracker.latency();
        if let Some(j) = &journal {
            journal_run_stats(j, &out.stats);
        }
        out
    }

    /// The window loop at `pipeline_depth = 1`, `num_devices = 1`: every
    /// stage on the caller's thread, one window at a time.
    #[allow(clippy::too_many_arguments)]
    fn window_loop_serial(
        &self,
        group: &DeviceGroup,
        dispatchers: &[BackendDispatcher<'_>],
        tables: &[DeviceTables],
        temp_input: Option<Vec<u8>>,
        reads: &[AlignedRead],
        reference: &Reference,
        priors: &PriorMap,
        ptrace: Option<&PipelineTrace>,
        tracker: &ProgressTracker,
        journal: Option<&Journal>,
        mut times: ComponentTimes,
        mut wall: ComponentTimes,
        mut stats: PipelineStats,
    ) -> GsnpOutput {
        let cfg = &self.config;
        let dev = group.device(0);
        let disp = &dispatchers[0];
        let tables = &tables[0];
        let loop_start = Instant::now();

        // ---- read_site source: decompress the temporary input ----
        let t0 = Instant::now();
        let ts = trace_now(ptrace);
        let owned_reads;
        let read_source: &[AlignedRead] = match &temp_input {
            Some(bytes) => {
                owned_reads = input_codec::decompress_reads(bytes)
                    .expect("pipeline-internal temporary input must decode");
                &owned_reads
            }
            None => reads,
        };
        let decompress_wall = t0.elapsed().as_secs_f64();
        tracker.stage_busy(STAGE_READ, decompress_wall);
        if let Some(pt) = ptrace {
            pt.read_span(ts, decompress_wall);
        }

        let mut reader = WindowReader::new(
            read_source.iter().cloned().map(Ok),
            reference.len() as u64,
            cfg.window_size,
        );
        wall.read_site += decompress_wall;
        times.read_site += decompress_wall;

        let mut out_tables = Vec::new();
        let mut compressed = Vec::new();
        let device_table_bytes = tables.upload_bytes();
        let arena_pool = ArenaPool::new(cfg.pooled);

        let batch_size = cfg.launch_batch_size();
        let mut scratch = BatchScratch::default();
        let mut batch: Vec<WindowArena> = Vec::with_capacity(batch_size);
        let mut batch_tables: Vec<SnpTable> = Vec::with_capacity(batch_size);
        let mut eof = false;
        let mut batch_idx = 0usize;

        while !eof {
            // ---- read_site: fill one launch batch ----
            while batch.len() < batch_size {
                let mut arena = arena_pool.checkout();
                let t0 = Instant::now();
                let ts = trace_now(ptrace);
                let got = reader
                    .next_window_into(&mut arena.window)
                    .expect("in-memory reads are valid");
                let dt = t0.elapsed().as_secs_f64();
                wall.read_site += dt;
                times.read_site += dt;
                tracker.stage_busy(STAGE_READ, dt);
                if let Some(pt) = ptrace {
                    pt.read_span(ts, dt);
                }
                if !got {
                    eof = true;
                    arena_pool.checkin(arena);
                    break;
                }
                batch.push(arena);
            }
            if batch.is_empty() {
                break;
            }

            // ---- counting + likelihood + recycle: ONE launch group ----
            // The serial loop's device-lane busy time is the growth of the
            // four device-component wall clocks across this batch.
            let first_window = stats.windows;
            let sites_before = stats.num_sites;
            let dev_wall_before =
                wall.counting + wall.likelihood_sort + wall.likelihood_comp + wall.recycle;
            let ts = trace_now(ptrace);
            let tl_bytes = run_device_batch(
                disp,
                tables,
                cfg.variant,
                device_table_bytes,
                cfg.device.coalesced_bw,
                &mut batch,
                &mut scratch,
                &mut times,
                &mut wall,
                &mut stats,
            );
            let dev_dt = wall.counting + wall.likelihood_sort + wall.likelihood_comp + wall.recycle
                - dev_wall_before;
            tracker.lane_batch(
                0,
                batch.len() as u64,
                stats.num_sites - sites_before,
                dev_dt,
            );
            if let Some(j) = journal {
                j.event(
                    "batch",
                    &format!(
                        "\"lane\":0,\"idx\":{batch_idx},\"windows\":{},\"busy_seconds\":{dev_dt:.6}",
                        batch.len()
                    ),
                );
            }
            batch_idx += 1;
            if let Some(pt) = ptrace {
                emit_lane_batch(pt, 0, ts, dev_dt, first_window, batch.len());
            }

            // ---- posterior (per window; one readback charge per batch) ----
            let mut row_count = 0u64;
            let mut post_dt = 0.0;
            batch_tables.clear();
            for arena in batch.drain(..) {
                let t0 = Instant::now();
                let ts = trace_now(ptrace);
                let rows = posterior_rows(
                    arena.window.start,
                    &arena.type_likely,
                    &arena.sw.summaries,
                    reference,
                    priors,
                    &cfg.params,
                );
                stats.snp_count += rows.iter().filter(|r| r.is_variant()).count() as u64;
                row_count += rows.len() as u64;
                let dt = t0.elapsed().as_secs_f64();
                wall.posterior += dt;
                post_dt += dt;
                if let Some(pt) = ptrace {
                    pt.posterior_span(ts, dt);
                }
                batch_tables.push(SnpTable::new(
                    reference.name.clone(),
                    arena.window.start,
                    rows,
                ));
                arena_pool.checkin(arena);
            }
            // Device model for posterior: the per-site arithmetic is cheap;
            // the cost is dominated by moving type_likely down and result
            // columns back (the paper attributes its modest posterior
            // speedup to exactly this transfer overhead). Batching merges
            // the batch's readbacks into one transfer.
            let mut post_stats = LaunchStats::default();
            dev.charge_d2h(&mut post_stats, tl_bytes + row_count * 32);
            times.posterior += post_dt.min(post_stats.sim_time * 4.0) + post_stats.sim_time;
            tracker.stage_busy(STAGE_POSTERIOR, post_dt);

            // ---- output: ONE batched compress chain per batch ----
            let t0 = Instant::now();
            let ts = trace_now(ptrace);
            let out_stats = if cfg.gpu_output {
                column::write_windows_gpu_batch(disp, &mut compressed, &batch_tables)
            } else {
                for table in &batch_tables {
                    column::write_window(&mut compressed, table);
                }
                LaunchStats::default()
            };
            let dt = t0.elapsed().as_secs_f64();
            wall.output += dt;
            tracker.stage_busy(STAGE_OUTPUT, dt);
            if let Some(pt) = ptrace {
                pt.output_span(ts, dt);
            }
            times.output += if cfg.gpu_output {
                // Device columns overlap host columns; charge the slower
                // plus the (dominant) host write of the compressed bytes.
                out_stats.sim_time + dt * 0.25
            } else {
                dt
            };

            out_tables.append(&mut batch_tables);
        }
        stats.arena = arena_pool.stats();
        let ledger = group.ledger();
        let total = ledger.total();
        stats.pool = total.pool;
        stats.sanitizer = total.sanitizer;
        stats.ledgers = ledger.per_device;
        stats.kernel_launches = group.kernel_launches();
        stats.contracts = group.contract_report();

        // A serial run is, by definition, one stage busy at a time.
        let device_busy =
            wall.counting + wall.likelihood_sort + wall.likelihood_comp + wall.recycle;
        stats.overlap = OverlapStats {
            depth: 1,
            read: StageStats {
                busy: wall.read_site,
                ..Default::default()
            },
            device: StageStats {
                busy: device_busy,
                ..Default::default()
            },
            devices: vec![DeviceLaneStats {
                stage: StageStats {
                    busy: device_busy,
                    ..Default::default()
                },
                windows: stats.windows,
                steals: 0,
            }],
            posterior: StageStats {
                busy: wall.posterior,
                ..Default::default()
            },
            output: StageStats {
                busy: wall.output,
                ..Default::default()
            },
            wall: loop_start.elapsed().as_secs_f64(),
        };
        debug_verify_trace(ptrace, &stats.overlap);

        GsnpOutput {
            tables: out_tables,
            compressed,
            times,
            wall,
            stats,
        }
    }

    /// The streaming window loop (`pipeline_depth ≥ 2` or
    /// `num_devices ≥ 2`): producer, `N` device workers, posterior, and
    /// output on dedicated threads connected by bounded channels.
    ///
    /// The device stage is a **sharded dispatcher**: all workers pull from
    /// one shared bounded work-queue, so windows go to whichever device
    /// frees up first — equivalent to work-stealing from a single global
    /// deque, without the idle devices a static `idx % N` round-robin
    /// produces on skewed (deep-coverage) windows. Windows a worker
    /// processes off its round-robin home are counted as steals in
    /// [`DeviceLaneStats`]. The output stage reassembles windows in index
    /// order — results and the compressed stream are byte-identical to
    /// [`Self::window_loop_serial`] at any `(depth, devices)` (§IV-G,
    /// tested in `tests/shard_parity.rs`).
    #[allow(clippy::too_many_arguments)]
    fn window_loop_streamed(
        &self,
        group: &DeviceGroup,
        dispatchers: &[BackendDispatcher<'_>],
        tables: &[DeviceTables],
        temp_input: Option<Vec<u8>>,
        reads: &[AlignedRead],
        reference: &Reference,
        priors: &PriorMap,
        ptrace: Option<&PipelineTrace>,
        tracker: &ProgressTracker,
        journal: Option<&Journal>,
        mut times: ComponentTimes,
        mut wall: ComponentTimes,
        mut stats: PipelineStats,
    ) -> GsnpOutput {
        let cfg = &self.config;
        let depth = cfg.pipeline_depth.max(1);
        let num_devices = group.len();
        let params = &cfg.params;
        let variant = cfg.variant;
        let gpu_output = cfg.gpu_output;
        let window_size = cfg.window_size;
        let coalesced_bw = cfg.device.coalesced_bw;
        let batch_size = cfg.launch_batch_size();
        let ref_len = reference.len() as u64;
        let device_table_bytes = tables[0].upload_bytes();

        let (win_tx, win_rx) = bounded::<Produced>(depth);
        let (score_tx, score_rx) = bounded::<Scored>(depth);
        let (call_tx, call_rx) = bounded::<Called>(depth);

        let mut out_tables = Vec::new();
        let mut compressed = Vec::new();
        let mut out_rep = StageReport::default();
        let arena_pool = ArenaPool::new(cfg.pooled);
        let loop_start = Instant::now();

        let (read_rep, device_reps, post_rep) = std::thread::scope(|s| {
            // ---- producer stage: read_site ----
            let prod_pool = std::sync::Arc::clone(&arena_pool);
            let producer = s.spawn(move || {
                let mut rep = StageReport::default();
                let t0 = Instant::now();
                let ts = trace_now(ptrace);
                let owned: Vec<AlignedRead> = match temp_input {
                    Some(bytes) => input_codec::decompress_reads(&bytes)
                        .expect("pipeline-internal temporary input must decode"),
                    None => reads.to_vec(),
                };
                let mut reader = WindowReader::from_reads(owned, ref_len, window_size);
                let dt = t0.elapsed().as_secs_f64();
                rep.wall.read_site += dt;
                rep.times.read_site += dt;
                rep.stage.busy += dt;
                tracker.stage_busy(STAGE_READ, dt);
                if let Some(pt) = ptrace {
                    pt.read_span(ts, dt);
                }
                let mut idx = 0usize;
                let mut eof = false;
                while !eof {
                    let mut arenas = Vec::with_capacity(batch_size);
                    while arenas.len() < batch_size {
                        let mut arena = prod_pool.checkout();
                        let t0 = Instant::now();
                        let ts = trace_now(ptrace);
                        let got = reader
                            .next_window_into(&mut arena.window)
                            .expect("in-memory reads are valid");
                        let dt = t0.elapsed().as_secs_f64();
                        rep.wall.read_site += dt;
                        rep.times.read_site += dt;
                        rep.stage.busy += dt;
                        tracker.stage_busy(STAGE_READ, dt);
                        if let Some(pt) = ptrace {
                            pt.read_span(ts, dt);
                        }
                        if !got {
                            eof = true;
                            prod_pool.checkin(arena);
                            break;
                        }
                        arenas.push(arena);
                    }
                    if arenas.is_empty() {
                        break;
                    }

                    let t0 = Instant::now();
                    let ts = trace_now(ptrace);
                    if win_tx.send(Produced { idx, arenas }).is_err() {
                        break; // downstream died; its panic surfaces at join
                    }
                    let dt = t0.elapsed().as_secs_f64();
                    rep.stage.stall_out += dt;
                    tracker.stage_stall(STAGE_READ, dt);
                    if let Some(pt) = ptrace {
                        pt.read_stall_out(ts, dt);
                    }
                    idx += 1;
                }
                rep
            });

            // ---- device stage: N workers over one shared work-queue ----
            let mut workers = Vec::with_capacity(num_devices);
            for (worker_id, dev_tables) in tables.iter().enumerate().take(num_devices) {
                let win_rx = win_rx.clone();
                let score_tx = score_tx.clone();
                let disp = &dispatchers[worker_id];
                workers.push(s.spawn(move || {
                    let mut rep = StageReport::default();
                    let mut lane = DeviceLaneStats::default();
                    let mut scratch = BatchScratch::default();
                    loop {
                        let t0 = Instant::now();
                        let ts = trace_now(ptrace);
                        let Produced { idx, mut arenas } = match win_rx.recv() {
                            Ok(p) => p,
                            Err(_) => break,
                        };
                        let dt = t0.elapsed().as_secs_f64();
                        rep.stage.stall_in += dt;
                        lane.stage.stall_in += dt;
                        tracker.lane_wait(worker_id, dt);
                        if let Some(pt) = ptrace {
                            pt.lane_stall_in(worker_id, ts, dt);
                        }
                        let busy_start = Instant::now();
                        let ts = trace_now(ptrace);

                        let k = arenas.len();
                        let sites_before = rep.stats.num_sites;
                        let tl_bytes = run_device_batch(
                            disp,
                            dev_tables,
                            variant,
                            device_table_bytes,
                            coalesced_bw,
                            &mut arenas,
                            &mut scratch,
                            &mut rep.times,
                            &mut rep.wall,
                            &mut rep.stats,
                        );
                        lane.windows += k as u64;
                        if idx % num_devices != worker_id {
                            lane.steals += k as u64;
                            tracker.lane_steal(worker_id, k as u64);
                            if let Some(pt) = ptrace {
                                for _ in 0..k {
                                    pt.lane_steal(worker_id, ts);
                                }
                            }
                        }
                        let dt = busy_start.elapsed().as_secs_f64();
                        rep.stage.busy += dt;
                        lane.stage.busy += dt;
                        tracker.lane_batch(
                            worker_id,
                            k as u64,
                            rep.stats.num_sites - sites_before,
                            dt,
                        );
                        if let Some(j) = journal {
                            j.event(
                                "batch",
                                &format!(
                                    "\"lane\":{worker_id},\"idx\":{idx},\"windows\":{k},\
                                     \"busy_seconds\":{dt:.6}"
                                ),
                            );
                        }
                        if let Some(pt) = ptrace {
                            // Every batch but the last is full, so the
                            // batch's first global window index is exact.
                            emit_lane_batch(pt, worker_id, ts, dt, (idx * batch_size) as u64, k);
                        }

                        let t0 = Instant::now();
                        let ts = trace_now(ptrace);
                        let scored = Scored {
                            idx,
                            arenas,
                            tl_bytes,
                            dev: worker_id,
                        };
                        if score_tx.send(scored).is_err() {
                            break;
                        }
                        let dt = t0.elapsed().as_secs_f64();
                        rep.stage.stall_out += dt;
                        lane.stage.stall_out += dt;
                        if let Some(pt) = ptrace {
                            pt.lane_stall_out(worker_id, ts, dt);
                        }
                    }
                    (rep, lane)
                }));
            }
            // The workers hold clones; dropping the originals lets the
            // posterior stage's `recv` disconnect once every worker exits.
            drop(win_rx);
            drop(score_tx);

            // ---- posterior stage ----
            let post_pool = std::sync::Arc::clone(&arena_pool);
            let posterior_stage = s.spawn(move || {
                let mut rep = StageReport::default();
                loop {
                    let t0 = Instant::now();
                    let ts = trace_now(ptrace);
                    let Scored {
                        idx,
                        arenas,
                        tl_bytes,
                        dev,
                    } = match score_rx.recv() {
                        Ok(sc) => sc,
                        Err(_) => break,
                    };
                    let dt = t0.elapsed().as_secs_f64();
                    rep.stage.stall_in += dt;
                    tracker.stage_stall(STAGE_POSTERIOR, dt);
                    if let Some(pt) = ptrace {
                        pt.posterior_stall_in(ts, dt);
                    }
                    let busy_start = Instant::now();
                    let busy_ts = trace_now(ptrace);

                    let t0 = Instant::now();
                    let mut windows = Vec::with_capacity(arenas.len());
                    let mut row_count = 0u64;
                    for arena in arenas {
                        let rows = posterior_rows(
                            arena.window.start,
                            &arena.type_likely,
                            &arena.sw.summaries,
                            reference,
                            priors,
                            params,
                        );
                        rep.stats.snp_count +=
                            rows.iter().filter(|r| r.is_variant()).count() as u64;
                        row_count += rows.len() as u64;
                        windows.push((arena.window.start, rows));
                        post_pool.checkin(arena);
                    }
                    let dt = t0.elapsed().as_secs_f64();
                    rep.wall.posterior += dt;
                    let mut post_stats = LaunchStats::default();
                    // The readback crosses the PCIe link of the device
                    // that scored this batch — one transfer per batch.
                    group
                        .device(dev)
                        .charge_d2h(&mut post_stats, tl_bytes + row_count * 32);
                    rep.times.posterior += dt.min(post_stats.sim_time * 4.0) + post_stats.sim_time;
                    let dt = busy_start.elapsed().as_secs_f64();
                    rep.stage.busy += dt;
                    tracker.stage_busy(STAGE_POSTERIOR, dt);
                    if let Some(pt) = ptrace {
                        pt.posterior_span(busy_ts, dt);
                    }

                    let t0 = Instant::now();
                    let ts = trace_now(ptrace);
                    let called = Called { idx, windows, dev };
                    if call_tx.send(called).is_err() {
                        break;
                    }
                    let dt = t0.elapsed().as_secs_f64();
                    rep.stage.stall_out += dt;
                    if let Some(pt) = ptrace {
                        pt.posterior_stall_out(ts, dt);
                    }
                }
                rep
            });

            // ---- output stage (this thread): reassemble + compress ----
            let mut reasm = OrderedReassembler::new();
            loop {
                let t0 = Instant::now();
                let ts = trace_now(ptrace);
                let called = match call_rx.recv() {
                    Ok(c) => c,
                    Err(_) => break,
                };
                let dt = t0.elapsed().as_secs_f64();
                out_rep.stage.stall_in += dt;
                tracker.stage_stall(STAGE_OUTPUT, dt);
                if let Some(pt) = ptrace {
                    pt.output_stall_in(ts, dt);
                }
                let busy_start = Instant::now();
                let busy_ts = trace_now(ptrace);
                // In-order arrivals (the common case at one device: every
                // stage is one thread over FIFO channels) take the
                // allocation-free `offer` fast path; batches that overtook
                // a sibling on another device drain via `pop_ready`. The
                // reassembler is keyed by batch index, so the compressed
                // stream is byte-identical at any (batch, depth, devices).
                let mut next = reasm.offer(called.idx, (called.windows, called.dev));
                while let Some((windows, dev)) = next {
                    let t0 = Instant::now();
                    let batch_tables: Vec<SnpTable> = windows
                        .into_iter()
                        .map(|(start, rows)| SnpTable::new(reference.name.clone(), start, rows))
                        .collect();
                    let out_stats = if gpu_output {
                        // Column kernels run on the device that already
                        // holds this batch's data: one chain per batch.
                        column::write_windows_gpu_batch(
                            &dispatchers[dev],
                            &mut compressed,
                            &batch_tables,
                        )
                    } else {
                        for table in &batch_tables {
                            column::write_window(&mut compressed, table);
                        }
                        LaunchStats::default()
                    };
                    let dt = t0.elapsed().as_secs_f64();
                    out_rep.wall.output += dt;
                    out_rep.times.output += if gpu_output {
                        out_stats.sim_time + dt * 0.25
                    } else {
                        dt
                    };
                    out_tables.extend(batch_tables);
                    next = reasm.pop_ready();
                }
                let dt = busy_start.elapsed().as_secs_f64();
                out_rep.stage.busy += dt;
                tracker.stage_busy(STAGE_OUTPUT, dt);
                if let Some(pt) = ptrace {
                    pt.output_span(busy_ts, dt);
                }
            }
            assert!(reasm.is_drained(), "streamed pipeline lost a window");

            let device_reps: Vec<(StageReport, DeviceLaneStats)> =
                workers.into_iter().map(join_stage).collect();
            (
                join_stage(producer),
                device_reps,
                join_stage(posterior_stage),
            )
        });
        let loop_wall = loop_start.elapsed().as_secs_f64();

        let mut device_stage = StageStats::default();
        let mut lanes = Vec::with_capacity(num_devices);
        for (rep, lane) in &device_reps {
            add_times(&mut times, &rep.times);
            add_times(&mut wall, &rep.wall);
            merge_stats(&mut stats, &rep.stats);
            device_stage.busy += lane.stage.busy;
            device_stage.stall_in += lane.stage.stall_in;
            device_stage.stall_out += lane.stage.stall_out;
            lanes.push(*lane);
        }
        for rep in [&read_rep, &post_rep, &out_rep] {
            add_times(&mut times, &rep.times);
            add_times(&mut wall, &rep.wall);
            merge_stats(&mut stats, &rep.stats);
        }
        stats.overlap = OverlapStats {
            depth,
            read: read_rep.stage,
            device: device_stage,
            devices: lanes,
            posterior: post_rep.stage,
            output: out_rep.stage,
            wall: loop_wall,
        };
        debug_verify_trace(ptrace, &stats.overlap);
        stats.arena = arena_pool.stats();
        let ledger = group.ledger();
        let total = ledger.total();
        stats.pool = total.pool;
        stats.sanitizer = total.sanitizer;
        stats.ledgers = ledger.per_device;
        stats.kernel_launches = group.kernel_launches();
        stats.contracts = group.contract_report();

        GsnpOutput {
            tables: out_tables,
            compressed,
            times,
            wall,
            stats,
        }
    }
}

/// One launch batch of windows handed from the producer to the device
/// stage (each arena owns its loaded observation lists). `idx` is the
/// batch index; every batch but the last holds exactly the configured
/// batch size, so window `j` of batch `idx` is global window
/// `idx * batch_size + j`.
struct Produced {
    idx: usize,
    arenas: Vec<WindowArena>,
}

/// Likelihood-scored batch handed from a device worker to `posterior`
/// (each arena owns its `summaries` and `type_likely`; `posterior`
/// returns them to the pool once rows are extracted). `dev` is the group
/// index of the device that scored the batch — downstream transfer and
/// output-column charges go to that device's ledger. `tl_bytes` is the
/// batch's total `type_likely` readback size.
struct Scored {
    idx: usize,
    arenas: Vec<WindowArena>,
    tl_bytes: u64,
    dev: usize,
}

/// Called batch handed from `posterior` to the output stage: per window,
/// its reference start and rows.
struct Called {
    idx: usize,
    windows: Vec<(u64, Vec<SnpRow>)>,
    dev: usize,
}

/// Join a scoped stage thread, propagating its panic.
pub(crate) fn join_stage<T>(h: std::thread::ScopedJoinHandle<'_, T>) -> T {
    h.join().unwrap_or_else(|e| std::panic::resume_unwind(e))
}

/// Append the end-of-run lifecycle events the pipeline owns — per-stage
/// busy/stall totals, per-lane window/steal counts, per-device ledger
/// and sanitizer summaries, and the merged contract proof tally — to the
/// run journal. Shared by [`GsnpPipeline`] and
/// [`crate::cohort::CohortPipeline`]; the CLI brackets these with the
/// `run_start` manifest and `run_end` summary.
pub(crate) fn journal_run_stats(j: &Journal, stats: &PipelineStats) {
    let ov = &stats.overlap;
    for (name, st) in [
        ("read", &ov.read),
        ("device", &ov.device),
        ("posterior", &ov.posterior),
        ("output", &ov.output),
    ] {
        j.event(
            "stage",
            &format!(
                "\"stage\":\"{name}\",\"busy_seconds\":{:.6},\"stall_in_seconds\":{:.6},\
                 \"stall_out_seconds\":{:.6}",
                st.busy, st.stall_in, st.stall_out
            ),
        );
    }
    for (i, lane) in ov.devices.iter().enumerate() {
        j.event(
            "lane",
            &format!(
                "\"device\":{i},\"windows\":{},\"steals\":{},\"busy_seconds\":{:.6}",
                lane.windows, lane.steals, lane.stage.busy
            ),
        );
    }
    for (i, led) in stats.ledgers.iter().enumerate() {
        let s = &led.sanitizer;
        let findings = s.races
            + s.uninit_reads
            + s.oob_accesses
            + s.shared_leaks
            + s.conformance_escapes
            + s.overwide_declarations;
        j.event(
            "device",
            &format!(
                "\"device\":{i},\"launches\":{},\"transfers\":{},\"sanitizer_findings\":{findings}",
                led.launches, led.transfers
            ),
        );
    }
    let proofs = stats.contracts.totals();
    if proofs.verified + proofs.refuted + proofs.assumed > 0 {
        j.event(
            "contracts",
            &format!(
                "\"verified\":{},\"refuted\":{},\"assumed\":{}",
                proofs.verified, proofs.refuted, proofs.assumed
            ),
        );
    }
}

/// Reusable host-side staging for one launch batch: the concatenated
/// sparse arrays, rebased spans, per-window site offsets, and the fused
/// kernel's output columns. One per device lane, recycled across batches
/// so the steady state allocates nothing (`tests/alloc_steady_state.rs`).
#[derive(Default)]
pub(crate) struct BatchScratch {
    words: Vec<u32>,
    spans: Vec<(usize, usize)>,
    site_off: Vec<usize>,
    type_likely: Vec<[f64; NUM_GENOTYPES]>,
    summaries: Vec<SiteSummary>,
    sort_scratch: sortnet::MultipassScratch,
}

/// One batch's device-stage work — counting (with a single coalesced
/// upload), ONE multipass sort launch group, ONE fused counting+
/// likelihood launch spanning every batched site, recycle — shared
/// verbatim by the serial loop and every sharded device worker, so the
/// two paths cannot drift. Scatters `type_likely` and `summaries` back
/// into each window's arena. Returns the batch's total `type_likely`
/// byte count the posterior stage charges for reading back.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_device_batch<B: ComputeBackend>(
    dev: &B,
    tables: &DeviceTables,
    variant: KernelVariant,
    device_table_bytes: u64,
    coalesced_bw: f64,
    batch: &mut [WindowArena],
    scratch: &mut BatchScratch,
    times: &mut ComponentTimes,
    wall: &mut ComponentTimes,
    stats: &mut PipelineStats,
) -> u64 {
    // counting: per-window sparse arrays, concatenated into one payload
    let t0 = Instant::now();
    scratch.words.clear();
    scratch.spans.clear();
    scratch.site_off.clear();
    let mut host_peak = 0u64;
    for arena in batch.iter_mut() {
        arena.sw.count_words_into(&arena.window);
        let base = scratch.words.len();
        scratch.site_off.push(scratch.spans.len());
        scratch.words.extend_from_slice(&arena.sw.words);
        scratch
            .spans
            .extend(arena.sw.spans.iter().map(|&(off, len)| (base + off, len)));
        host_peak =
            host_peak.max(arena.sw.size_bytes() as u64 + arena.window.total_obs() as u64 * 8);
    }
    scratch.site_off.push(scratch.spans.len());
    let num_sites = scratch.spans.len();
    let words = dev.upload_pooled(&scratch.words);
    let mut count_stats = LaunchStats::default();
    dev.charge_h2d(&mut count_stats, scratch.words.len() as u64 * 4);
    let dt = t0.elapsed().as_secs_f64();
    wall.counting += dt;
    times.counting += dt + count_stats.sim_time;

    let dep_bytes = (num_sites * 2 * 256) as u64 * 2;
    let tl_bytes = (num_sites * NUM_GENOTYPES) as u64 * 8;
    stats.peak_device_bytes = stats
        .peak_device_bytes
        .max(device_table_bytes + scratch.words.len() as u64 * 4 + dep_bytes + tl_bytes);
    stats.peak_host_bytes = stats.peak_host_bytes.max(host_peak);

    // likelihood: one sort launch group + one fused counting+comp launch
    let t0 = Instant::now();
    likelihood_sort_gpu_into(dev, &words, &scratch.spans, &mut scratch.sort_scratch);
    wall.likelihood_sort += t0.elapsed().as_secs_f64();
    let sort_report = scratch.sort_scratch.report();
    times.likelihood_sort += sort_report.total().sim_time;
    merge_sort_classes(&mut stats.sort_classes, &sort_report.classes);

    // The dependency arrays are sized by the batch-wide maximum read
    // length; read_len only widens per-coordinate slot numbering, never
    // the values, so the per-site results match the per-window launches.
    let read_len = max_read_len(&scratch.words);
    let t0 = Instant::now();
    let comp_stats = likelihood_comp_fused_gpu_into(
        dev,
        variant,
        &words,
        &scratch.spans,
        read_len,
        tables,
        &mut scratch.type_likely,
        &mut scratch.summaries,
    );
    wall.likelihood_comp += t0.elapsed().as_secs_f64();
    times.likelihood_comp += comp_stats.sim_time;

    // scatter the fused outputs back into each window's arena
    for (j, arena) in batch.iter_mut().enumerate() {
        let (s0, s1) = (scratch.site_off[j], scratch.site_off[j + 1]);
        arena.type_likely.clear();
        arena
            .type_likely
            .extend_from_slice(&scratch.type_likely[s0..s1]);
        arena.sw.summaries.clear();
        arena
            .sw
            .summaries
            .extend_from_slice(&scratch.summaries[s0..s1]);
        stats.num_sites += arena.sw.num_sites() as u64;
        stats.num_obs += arena.sw.words.len() as u64;
    }
    stats.windows += batch.len() as u64;

    // recycle
    let t0 = Instant::now();
    let word_bytes = scratch.words.len() as u64 * 4;
    drop(words); // device words park in the buffer pool
    wall.recycle += t0.elapsed().as_secs_f64();
    times.recycle += word_bytes as f64 / coalesced_bw;

    tl_bytes
}

/// Emit `k` per-window lane spans that partition one batch's device-busy
/// interval `[ts, ts + dt)` evenly. The trace verifier requires one span
/// per window (`lane.windows` spans per lane) whose durations sum to the
/// lane's busy time; slicing the measured interval keeps both exact.
fn emit_lane_batch(pt: &PipelineTrace, lane: usize, ts: f64, dt: f64, first_window: u64, k: usize) {
    let slice = dt / k as f64;
    for j in 0..k {
        pt.lane_window(lane, ts + slice * j as f64, slice, first_window + j as u64);
    }
}

/// Per-stage partial accumulators, merged into the run totals at join.
#[derive(Default)]
pub(crate) struct StageReport {
    pub(crate) times: ComponentTimes,
    pub(crate) wall: ComponentTimes,
    pub(crate) stats: PipelineStats,
    pub(crate) stage: StageStats,
}

pub(crate) fn add_times(a: &mut ComponentTimes, b: &ComponentTimes) {
    a.cal_p += b.cal_p;
    a.read_site += b.read_site;
    a.counting += b.counting;
    a.likelihood_sort += b.likelihood_sort;
    a.likelihood_comp += b.likelihood_comp;
    a.posterior += b.posterior;
    a.output += b.output;
    a.recycle += b.recycle;
}

pub(crate) fn merge_stats(a: &mut PipelineStats, b: &PipelineStats) {
    a.num_sites += b.num_sites;
    a.num_obs += b.num_obs;
    a.windows += b.windows;
    a.snp_count += b.snp_count;
    a.peak_device_bytes = a.peak_device_bytes.max(b.peak_device_bytes);
    a.peak_host_bytes = a.peak_host_bytes.max(b.peak_host_bytes);
    merge_sort_classes(&mut a.sort_classes, &b.sort_classes);
}

/// Fold one run's (or window's) per-class sort tallies into the
/// accumulated histogram. The class layout is fixed by the multipass
/// schedule, so after the first window this is pure element-wise
/// addition.
fn merge_sort_classes(acc: &mut Vec<sortnet::ClassTally>, add: &[sortnet::ClassTally]) {
    if add.is_empty() {
        return;
    }
    if acc.is_empty() {
        acc.extend_from_slice(add);
        return;
    }
    debug_assert_eq!(acc.len(), add.len(), "sort class layout changed mid-run");
    for (a, b) in acc.iter_mut().zip(add) {
        a.merge(b);
    }
}

/// Host wall-clock timestamp on the shared trace epoch, or 0 when
/// tracing is off (the value is never read in that case).
fn trace_now(pt: Option<&PipelineTrace>) -> f64 {
    pt.map_or(0.0, PipelineTrace::now)
}

/// Satellite 2: in debug builds a traced run re-derives every
/// [`OverlapStats`] busy/stall total from the recorded spans and panics
/// on divergence; release builds compile this away entirely.
#[cfg(debug_assertions)]
fn debug_verify_trace(pt: Option<&PipelineTrace>, overlap: &OverlapStats) {
    if let Some(pt) = pt {
        if let Err(e) = pt.verify(overlap) {
            panic!("trace/OverlapStats divergence: {e}");
        }
    }
}

#[cfg(not(debug_assertions))]
fn debug_verify_trace(pt: Option<&PipelineTrace>, overlap: &OverlapStats) {
    let _ = (pt, overlap);
}

/// The per-site posterior loop, parallelized over sites (rayon). The map
/// is order-preserving, so results are identical to the sequential loop.
pub(crate) fn posterior_rows(
    start: u64,
    type_likely: &[[f64; NUM_GENOTYPES]],
    summaries: &[crate::model::SiteSummary],
    reference: &Reference,
    priors: &PriorMap,
    params: &ModelParams,
) -> Vec<SnpRow> {
    // The no-known-SNP prior depends only on (ref_base, genotype); table
    // it once per batch instead of ten log10 calls per site.
    let prior_table = crate::model::PriorTable::new(params);
    (0..summaries.len())
        .into_par_iter()
        .map(|site| {
            let pos = start + site as u64;
            crate::model::posterior_cached(
                &type_likely[site],
                &summaries[site],
                reference.seq[pos as usize],
                priors.get(pos),
                params,
                &prior_table,
            )
        })
        .collect()
}

/// GSNP_CPU (§VI-A): the same sparse algorithm — `base_word`, per-site
/// sort, `new_p_matrix` — executed sequentially on the host with no
/// simulated device. The paper reports it 4–5× faster than SOAPsnp on
/// likelihood; it is the middle series of Figs. 5 and 12.
pub struct GsnpCpuPipeline {
    config: GsnpConfig,
}

impl GsnpCpuPipeline {
    /// Create a CPU pipeline (the `device`, `variant`, and `gpu_output`
    /// fields of the config are ignored).
    pub fn new(config: GsnpConfig) -> Self {
        GsnpCpuPipeline { config }
    }

    /// Run over in-memory inputs. Produces results identical to
    /// [`GsnpPipeline::run`] and to SOAPsnp.
    pub fn run(
        &self,
        reads: &[AlignedRead],
        reference: &Reference,
        priors: &PriorMap,
    ) -> GsnpOutput {
        let cfg = &self.config;
        let mut times = ComponentTimes::default();
        let mut stats = PipelineStats {
            samples: 1,
            ..PipelineStats::default()
        };

        let t0 = Instant::now();
        let shared = match &cfg.shared_tables {
            Some(st) => std::sync::Arc::clone(st),
            None => std::sync::Arc::new(SharedTables::calibrate(reads, reference, &cfg.params)),
        };
        let SharedTables {
            p_matrix,
            new_p,
            log_table,
        } = &*shared;
        let temp_input = if cfg.compress_input {
            Some(input_codec::compress_reads(&reference.name, reads))
        } else {
            None
        };
        times.cal_p = t0.elapsed().as_secs_f64();
        stats.peak_host_bytes = p_matrix.size_bytes() as u64 + new_p.size_bytes() as u64;

        let t0 = Instant::now();
        let owned_reads;
        let read_source: &[AlignedRead] = match &temp_input {
            Some(bytes) => {
                owned_reads = input_codec::decompress_reads(bytes)
                    .expect("pipeline-internal temporary input must decode");
                &owned_reads
            }
            None => reads,
        };
        let mut reader = WindowReader::new(
            read_source.iter().cloned().map(Ok),
            reference.len() as u64,
            cfg.window_size,
        );
        times.read_site += t0.elapsed().as_secs_f64();

        let mut out_tables = Vec::new();
        let mut compressed = Vec::new();
        loop {
            let t0 = Instant::now();
            let window = match reader.next_window().expect("in-memory reads are valid") {
                Some(w) => w,
                None => break,
            };
            times.read_site += t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            let mut sw = SparseWindow::count(&window);
            times.counting += t0.elapsed().as_secs_f64();
            stats.peak_host_bytes = stats.peak_host_bytes.max(
                p_matrix.size_bytes() as u64
                    + new_p.size_bytes() as u64
                    + sw.size_bytes() as u64
                    + window.total_obs() as u64 * 8,
            );

            let t0 = Instant::now();
            crate::likelihood::sort_sparse_cpu(&mut sw);
            times.likelihood_sort += t0.elapsed().as_secs_f64();

            let read_len = max_read_len(&sw.words);
            let t0 = Instant::now();
            let type_likely: Vec<_> = (0..sw.num_sites())
                .map(|s| {
                    crate::likelihood::likelihood_sparse_site(
                        sw.site_words(s),
                        read_len,
                        new_p,
                        log_table,
                    )
                })
                .collect();
            times.likelihood_comp += t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            let mut rows = Vec::with_capacity(sw.num_sites());
            for (site, (tl, summary)) in type_likely.iter().zip(&sw.summaries).enumerate() {
                let pos = window.start + site as u64;
                let row = posterior(
                    tl,
                    summary,
                    reference.seq[pos as usize],
                    priors.get(pos),
                    &cfg.params,
                );
                if row.is_variant() {
                    stats.snp_count += 1;
                }
                rows.push(row);
            }
            times.posterior += t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            let table = SnpTable::new(reference.name.clone(), window.start, rows);
            column::write_window(&mut compressed, &table);
            times.output += t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            drop(sw); // sparse recycle: release the tiny word arrays
            times.recycle += t0.elapsed().as_secs_f64();

            stats.num_sites += window.len() as u64;
            stats.num_obs += window.total_obs() as u64;
            stats.windows += 1;
            out_tables.push(table);
        }

        GsnpOutput {
            tables: out_tables,
            compressed,
            times,
            wall: times,
            stats,
        }
    }
}

fn max_read_len(words: &[u32]) -> usize {
    // The coordinate field bounds the read length; derive the maximum
    // over the given words (one window's, or a whole launch batch's) so
    // dep_count arrays are sized tightly.
    let mut max_coord = 0u8;
    for &w in words {
        let (_, _, coord, _, _) = crate::baseword::unpack(w);
        max_coord = max_coord.max(coord);
    }
    usize::from(max_coord) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqio::synth::{Dataset, SynthConfig};

    fn run_tiny(seed: u64, cfg: GsnpConfig) -> (Dataset, GsnpOutput) {
        let d = Dataset::generate(SynthConfig::tiny(seed));
        let out = GsnpPipeline::new(cfg).run(&d.reads, &d.reference, &d.priors);
        (d, out)
    }

    fn tiny_cfg() -> GsnpConfig {
        GsnpConfig {
            window_size: 1_000,
            ..Default::default()
        }
    }

    #[test]
    fn processes_every_site_in_windows() {
        let (d, out) = run_tiny(61, tiny_cfg());
        assert_eq!(out.stats.num_sites, d.config.num_sites);
        assert_eq!(out.stats.windows, 5); // 5000 sites / 1000
        assert_eq!(
            out.tables.iter().map(|t| t.len() as u64).sum::<u64>(),
            d.config.num_sites
        );
        // Windows tile the chromosome.
        for (i, t) in out.tables.iter().enumerate() {
            assert_eq!(t.start_pos, i as u64 * 1_000);
        }
    }

    #[test]
    fn contracted_run_proves_every_launch_and_changes_nothing() {
        let d = Dataset::generate(SynthConfig::tiny(63));
        let plain = GsnpPipeline::new(tiny_cfg()).run(&d.reads, &d.reference, &d.priors);
        let proved = GsnpPipeline::new(GsnpConfig {
            contracts: true,
            ..tiny_cfg()
        })
        .run(&d.reads, &d.reference, &d.priors);
        assert_eq!(
            plain.tables, proved.tables,
            "proofs must not perturb output"
        );
        let report = &proved.stats.contracts;
        let t = report.totals();
        assert!(t.verified > 0, "no contracted launch recorded");
        assert!(
            report.all_verified(),
            "refuted {} / assumed {}: {:?}",
            t.refuted,
            t.assumed,
            report.per_kernel
        );
        // The proof table names the paper kernels.
        assert!(report
            .per_kernel
            .keys()
            .any(|k| k.starts_with("likelihood_comp")));
        assert!(plain.stats.contracts.per_kernel.is_empty());
    }

    #[test]
    fn detects_planted_snps() {
        // Higher SNP rate than `tiny` for statistical power.
        let mut cfg = SynthConfig::tiny(62);
        cfg.num_sites = 20_000;
        cfg.snp_rate = 5e-3;
        let d = Dataset::generate(cfg);
        let out = GsnpPipeline::new(tiny_cfg()).run(&d.reads, &d.reference, &d.priors);
        let rows = out.all_rows();
        let mut hits = 0usize;
        let mut covered = 0usize;
        for t in &d.truth {
            let row = &rows[t.pos as usize];
            if row.depth >= 6 {
                covered += 1;
                if row.is_variant() {
                    hits += 1;
                }
            }
        }
        assert!(
            covered >= 20,
            "expected well-covered truth sites, got {covered}"
        );
        let recall = hits as f64 / covered as f64;
        assert!(
            recall > 0.8,
            "recall {recall:.2} over {covered} covered truth sites"
        );
    }

    #[test]
    fn few_false_positives_at_high_quality() {
        let (d, out) = run_tiny(63, tiny_cfg());
        let truth: std::collections::HashSet<u64> = d.truth.iter().map(|t| t.pos).collect();
        let rows = out.all_rows();
        let fp = rows
            .iter()
            .enumerate()
            .filter(|(pos, r)| r.is_variant() && r.quality >= 20 && !truth.contains(&(*pos as u64)))
            .count();
        let calls = rows
            .iter()
            .filter(|r| r.is_variant() && r.quality >= 20)
            .count();
        assert!(calls > 0);
        let fdr = fp as f64 / calls as f64;
        assert!(fdr < 0.1, "false-discovery rate {fdr:.3} ({fp}/{calls})");
    }

    #[test]
    fn compressed_output_roundtrips() {
        let (_, out) = run_tiny(64, tiny_cfg());
        let windows: Vec<SnpTable> = column::WindowStream::new(&out.compressed)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(windows, out.tables);
    }

    #[test]
    fn run_is_deterministic() {
        let d = Dataset::generate(SynthConfig::tiny(65));
        let a = GsnpPipeline::new(tiny_cfg()).run(&d.reads, &d.reference, &d.priors);
        let b = GsnpPipeline::new(tiny_cfg()).run(&d.reads, &d.reference, &d.priors);
        assert_eq!(a.tables, b.tables);
        assert_eq!(a.compressed, b.compressed);
    }

    #[test]
    fn window_size_does_not_change_results() {
        let d = Dataset::generate(SynthConfig::tiny(66));
        let small = GsnpPipeline::new(GsnpConfig {
            window_size: 333,
            ..Default::default()
        })
        .run(&d.reads, &d.reference, &d.priors);
        let large = GsnpPipeline::new(GsnpConfig {
            window_size: 10_000,
            ..Default::default()
        })
        .run(&d.reads, &d.reference, &d.priors);
        assert_eq!(small.all_rows(), large.all_rows());
    }

    #[test]
    fn kernel_variants_do_not_change_results() {
        let d = Dataset::generate(SynthConfig::tiny(67));
        let rows: Vec<Vec<SnpRow>> = KernelVariant::ALL
            .iter()
            .map(|&variant| {
                GsnpPipeline::new(GsnpConfig {
                    window_size: 1_000,
                    variant,
                    ..Default::default()
                })
                .run(&d.reads, &d.reference, &d.priors)
                .all_rows()
            })
            .collect();
        for r in &rows[1..] {
            assert_eq!(r, &rows[0]);
        }
    }

    #[test]
    fn input_compression_does_not_change_results() {
        let d = Dataset::generate(SynthConfig::tiny(68));
        let with = GsnpPipeline::new(tiny_cfg()).run(&d.reads, &d.reference, &d.priors);
        let without = GsnpPipeline::new(GsnpConfig {
            compress_input: false,
            ..tiny_cfg()
        })
        .run(&d.reads, &d.reference, &d.priors);
        assert_eq!(with.all_rows(), without.all_rows());
    }

    #[test]
    fn gpu_output_is_byte_identical_to_cpu_output() {
        let d = Dataset::generate(SynthConfig::tiny(69));
        let gpu = GsnpPipeline::new(tiny_cfg()).run(&d.reads, &d.reference, &d.priors);
        let cpu = GsnpPipeline::new(GsnpConfig {
            gpu_output: false,
            ..tiny_cfg()
        })
        .run(&d.reads, &d.reference, &d.priors);
        assert_eq!(gpu.compressed, cpu.compressed);
    }

    #[test]
    fn cpu_pipeline_matches_device_pipeline_bitwise() {
        let d = Dataset::generate(SynthConfig::tiny(71));
        let dev_out = GsnpPipeline::new(tiny_cfg()).run(&d.reads, &d.reference, &d.priors);
        let cpu_out = GsnpCpuPipeline::new(GsnpConfig {
            window_size: 777, // different windowing must not matter
            ..Default::default()
        })
        .run(&d.reads, &d.reference, &d.priors);
        assert_eq!(dev_out.all_rows(), cpu_out.all_rows());
    }

    #[test]
    fn times_and_stats_are_populated() {
        let (_, out) = run_tiny(70, tiny_cfg());
        assert!(out.times.total() > 0.0);
        assert!(out.wall.total() > 0.0);
        assert!(out.times.cal_p > 0.0);
        assert!(out.times.likelihood() > 0.0);
        assert!(out.stats.peak_device_bytes > 0);
        assert!(out.stats.num_obs > 0);
    }

    #[test]
    fn streamed_depths_are_byte_identical_to_serial() {
        let d = Dataset::generate(SynthConfig::tiny(72));
        let serial = GsnpPipeline::new(GsnpConfig {
            pipeline_depth: 1,
            ..tiny_cfg()
        })
        .run(&d.reads, &d.reference, &d.priors);
        for depth in [2usize, 3, 4] {
            let streamed = GsnpPipeline::new(GsnpConfig {
                pipeline_depth: depth,
                ..tiny_cfg()
            })
            .run(&d.reads, &d.reference, &d.priors);
            assert_eq!(
                streamed.tables, serial.tables,
                "tables differ at depth {depth}"
            );
            assert_eq!(
                streamed.compressed, serial.compressed,
                "compressed file differs at depth {depth}"
            );
            assert_eq!(streamed.stats.num_sites, serial.stats.num_sites);
            assert_eq!(streamed.stats.snp_count, serial.stats.snp_count);
            assert_eq!(streamed.stats.windows, serial.stats.windows);
        }
    }

    #[test]
    fn overlap_stats_are_populated() {
        // Default config streams at depth 2.
        let (d, out) = run_tiny(73, tiny_cfg());
        let o = &out.stats.overlap;
        assert_eq!(o.depth, 2);
        assert!(o.wall > 0.0);
        assert!(o.read.busy > 0.0);
        assert!(o.device.busy > 0.0);
        assert!(o.output.busy > 0.0);
        assert!(o.achieved_depth() > 0.0);
        assert_eq!(o.devices.len(), 1);
        assert_eq!(o.devices[0].windows, out.stats.windows);
        assert_eq!(o.devices[0].steals, 0, "one worker cannot steal");

        let serial = GsnpPipeline::new(GsnpConfig {
            pipeline_depth: 1,
            ..tiny_cfg()
        })
        .run(&d.reads, &d.reference, &d.priors);
        let o = &serial.stats.overlap;
        assert_eq!(o.depth, 1);
        assert!(o.wall > 0.0);
        // One stage at a time: busy time cannot exceed the loop wall-clock
        // (allow a sliver of timer noise).
        assert!(
            o.achieved_depth() <= 1.05,
            "serial achieved depth {}",
            o.achieved_depth()
        );
        assert_eq!(o.read.stall_in, 0.0);
        assert_eq!(o.device.stall_out, 0.0);
        assert_eq!(o.devices.len(), 1);
    }

    #[test]
    fn sharded_devices_are_byte_identical_to_serial() {
        let d = Dataset::generate(SynthConfig::tiny(74));
        let serial = GsnpPipeline::new(GsnpConfig {
            pipeline_depth: 1,
            ..tiny_cfg()
        })
        .run(&d.reads, &d.reference, &d.priors);
        for devices in [2usize, 3, 4] {
            let sharded = GsnpPipeline::new(GsnpConfig {
                num_devices: devices,
                ..tiny_cfg()
            })
            .run(&d.reads, &d.reference, &d.priors);
            assert_eq!(
                sharded.tables, serial.tables,
                "tables differ at {devices} devices"
            );
            assert_eq!(
                sharded.compressed, serial.compressed,
                "compressed file differs at {devices} devices"
            );
            assert_eq!(sharded.stats.num_sites, serial.stats.num_sites);
            assert_eq!(sharded.stats.snp_count, serial.stats.snp_count);
        }
    }

    #[test]
    fn sharded_lane_stats_account_every_window() {
        let d = Dataset::generate(SynthConfig::tiny(75));
        let out = GsnpPipeline::new(GsnpConfig {
            num_devices: 3,
            ..tiny_cfg()
        })
        .run(&d.reads, &d.reference, &d.priors);
        let o = &out.stats.overlap;
        assert_eq!(o.devices.len(), 3);
        assert_eq!(
            o.devices.iter().map(|l| l.windows).sum::<u64>(),
            out.stats.windows,
            "every window must land on exactly one device"
        );
        // The summed device stage equals the lanes' sum.
        let lane_busy: f64 = o.devices.iter().map(|l| l.stage.busy).sum();
        assert!((o.device.busy - lane_busy).abs() < 1e-9);
        // One ledger per device, each charged the table upload once.
        assert_eq!(out.stats.ledgers.len(), 3);
        assert!(out.stats.table_bytes > 0);
        for led in &out.stats.ledgers {
            assert!(
                led.counters.h2d_bytes >= out.stats.table_bytes,
                "every device ledger must include its own table upload"
            );
        }
    }

    #[test]
    fn depth_one_multi_device_still_shards() {
        // depth 1 + several devices must take the streamed path (and stay
        // byte-identical); the scaling experiment sweeps exactly this.
        let d = Dataset::generate(SynthConfig::tiny(76));
        let serial = GsnpPipeline::new(GsnpConfig {
            pipeline_depth: 1,
            ..tiny_cfg()
        })
        .run(&d.reads, &d.reference, &d.priors);
        let sharded = GsnpPipeline::new(GsnpConfig {
            pipeline_depth: 1,
            num_devices: 4,
            ..tiny_cfg()
        })
        .run(&d.reads, &d.reference, &d.priors);
        assert_eq!(sharded.compressed, serial.compressed);
        assert_eq!(sharded.stats.overlap.devices.len(), 4);
    }
}
