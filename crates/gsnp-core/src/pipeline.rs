//! The GSNP windowed pipeline (Fig. 2).
//!
//! ```text
//! cal_p_matrix ──► load_table ──► [ read_site → counting → likelihood
//!        │                          → posterior → output → recycle ]*
//!        └── compressed temporary input ──────────┘
//! ```
//!
//! Every device component reports both the **host wall-clock** of the
//! simulation and the **modelled device time** from the cost model; the
//! reproduction harness reports the latter for "GPU" series and wall time
//! for CPU series (see `EXPERIMENTS.md`).

use std::time::Instant;

use compress::{column, input_codec};
use gpu_sim::{Device, DeviceConfig, LaunchStats};
use seqio::fasta::Reference;
use seqio::prior::PriorMap;
use seqio::result::{SnpRow, SnpTable};
use seqio::soap::AlignedRead;
use seqio::window::WindowReader;

use crate::counting::SparseWindow;
use crate::likelihood::{likelihood_comp_gpu, likelihood_sort_gpu, DeviceTables, KernelVariant};
use crate::model::{posterior, ModelParams, NUM_GENOTYPES};
use crate::tables::{LogTable, NewPMatrix, PMatrix};

/// Per-component elapsed time in seconds, matching the columns of the
/// paper's Tables I and IV.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ComponentTimes {
    /// `cal_p_matrix` (+ table generation and upload in GSNP).
    pub cal_p: f64,
    /// `read_site` (window loading; includes temporary-input decompression).
    pub read_site: f64,
    /// `counting`.
    pub counting: f64,
    /// `likelihood_sort` (zero for the dense baseline).
    pub likelihood_sort: f64,
    /// `likelihood_comp`.
    pub likelihood_comp: f64,
    /// `posterior`.
    pub posterior: f64,
    /// `output` (compression + serialization).
    pub output: f64,
    /// `recycle`.
    pub recycle: f64,
}

impl ComponentTimes {
    /// Total of the likelihood sub-steps (the paper's `likeli.` column).
    pub fn likelihood(&self) -> f64 {
        self.likelihood_sort + self.likelihood_comp
    }

    /// End-to-end total.
    pub fn total(&self) -> f64 {
        self.cal_p
            + self.read_site
            + self.counting
            + self.likelihood()
            + self.posterior
            + self.output
            + self.recycle
    }
}

/// Aggregate pipeline statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    /// Sites processed.
    pub num_sites: u64,
    /// Aligned-base observations processed.
    pub num_obs: u64,
    /// Windows processed.
    pub windows: u64,
    /// Variant calls emitted.
    pub snp_count: u64,
    /// Peak simulated-device memory, bytes.
    pub peak_device_bytes: u64,
    /// Peak host memory attributable to the pipeline's buffers, bytes.
    pub peak_host_bytes: u64,
}

/// GSNP configuration.
#[derive(Debug, Clone)]
pub struct GsnpConfig {
    /// Sites per window (the paper's default: 256,000).
    pub window_size: usize,
    /// Simulated device.
    pub device: DeviceConfig,
    /// Bayesian model parameters.
    pub params: ModelParams,
    /// Which `likelihood_comp` kernel to run (GSNP uses `Optimized`).
    pub variant: KernelVariant,
    /// Write + re-read the compressed temporary input (§V-A). Disabling
    /// reads the in-memory alignments directly (used by ablations).
    pub compress_input: bool,
    /// Run output RLE-DICT columns on the device (§V-B).
    pub gpu_output: bool,
}

impl Default for GsnpConfig {
    fn default() -> Self {
        GsnpConfig {
            window_size: 256_000,
            device: DeviceConfig::tesla_m2050(),
            params: ModelParams::default(),
            variant: KernelVariant::Optimized,
            compress_input: true,
            gpu_output: true,
        }
    }
}

/// Everything a GSNP run produces.
#[derive(Debug)]
pub struct GsnpOutput {
    /// Per-window result tables (kept for verification against SOAPsnp).
    pub tables: Vec<SnpTable>,
    /// The compressed result file (sequence of length-prefixed windows).
    pub compressed: Vec<u8>,
    /// Modelled component times: device components use the cost model's
    /// device time, host-side components use wall clock.
    pub times: ComponentTimes,
    /// Pure host wall-clock per component (what the simulation itself cost).
    pub wall: ComponentTimes,
    /// Aggregate statistics.
    pub stats: PipelineStats,
}

impl GsnpOutput {
    /// Flatten all windows into rows (for comparisons).
    pub fn all_rows(&self) -> Vec<SnpRow> {
        self.tables.iter().flat_map(|t| t.rows.iter().copied()).collect()
    }
}

/// The GSNP pipeline driver.
pub struct GsnpPipeline {
    config: GsnpConfig,
}

impl GsnpPipeline {
    /// Create a pipeline with the given configuration.
    pub fn new(config: GsnpConfig) -> Self {
        GsnpPipeline { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &GsnpConfig {
        &self.config
    }

    /// Run over in-memory inputs.
    pub fn run(&self, reads: &[AlignedRead], reference: &Reference, priors: &PriorMap) -> GsnpOutput {
        let cfg = &self.config;
        let dev = Device::new(cfg.device.clone());
        let mut times = ComponentTimes::default();
        let mut wall = ComponentTimes::default();
        let mut stats = PipelineStats::default();

        // ---- cal_p_matrix + load_table (Fig. 2 left column) ----
        let t0 = Instant::now();
        let p_matrix = PMatrix::calibrate(reads, reference, &cfg.params);
        let new_p = NewPMatrix::precompute(&p_matrix);
        let log_table = LogTable::new();
        let tables = DeviceTables::upload(&dev, &p_matrix, &new_p, &log_table);
        // Temporary compressed input written during the first pass (§V-A).
        let temp_input = if cfg.compress_input {
            Some(input_codec::compress_reads(&reference.name, reads))
        } else {
            None
        };
        let cal_wall = t0.elapsed().as_secs_f64();
        wall.cal_p = cal_wall;
        // Device time: table upload over PCIe on top of the host compute.
        times.cal_p = cal_wall + tables.upload_bytes() as f64 / cfg.device.pcie_bw;
        stats.peak_host_bytes += temp_input.as_ref().map_or(0, |t| t.len() as u64);

        // ---- read_site source: decompress the temporary input ----
        let t0 = Instant::now();
        let owned_reads;
        let read_source: &[AlignedRead] = match &temp_input {
            Some(bytes) => {
                owned_reads = input_codec::decompress_reads(bytes)
                    .expect("pipeline-internal temporary input must decode");
                &owned_reads
            }
            None => reads,
        };
        let decompress_wall = t0.elapsed().as_secs_f64();

        let mut reader = WindowReader::new(
            read_source.iter().cloned().map(Ok),
            reference.len() as u64,
            cfg.window_size,
        );
        wall.read_site += decompress_wall;
        times.read_site += decompress_wall;

        let mut out_tables = Vec::new();
        let mut compressed = Vec::new();
        let device_table_bytes = tables.upload_bytes();

        loop {
            // ---- read_site ----
            let t0 = Instant::now();
            let window = match reader.next_window().expect("in-memory reads are valid") {
                Some(w) => w,
                None => break,
            };
            let dt = t0.elapsed().as_secs_f64();
            wall.read_site += dt;
            times.read_site += dt;

            // ---- counting ----
            let t0 = Instant::now();
            let sw = SparseWindow::count(&window);
            let words = dev.upload(&sw.words);
            let mut count_stats = LaunchStats::default();
            dev.charge_h2d(&mut count_stats, sw.words.len() as u64 * 4);
            let dt = t0.elapsed().as_secs_f64();
            wall.counting += dt;
            times.counting += dt + count_stats.sim_time;

            let dep_bytes = (sw.num_sites() * 2 * 256) as u64 * 2;
            let tl_bytes = (sw.num_sites() * NUM_GENOTYPES) as u64 * 8;
            stats.peak_device_bytes = stats.peak_device_bytes.max(
                device_table_bytes + sw.words.len() as u64 * 4 + dep_bytes + tl_bytes,
            );
            stats.peak_host_bytes = stats
                .peak_host_bytes
                .max(sw.size_bytes() as u64 + window.total_obs() as u64 * 8);

            // ---- likelihood: sort + comp ----
            let t0 = Instant::now();
            let sort_report = likelihood_sort_gpu(&dev, &words, &sw.spans);
            wall.likelihood_sort += t0.elapsed().as_secs_f64();
            times.likelihood_sort += sort_report.total().sim_time;

            let read_len = max_read_len(&sw);
            let t0 = Instant::now();
            let (type_likely, comp_stats) =
                likelihood_comp_gpu(&dev, cfg.variant, &words, &sw.spans, read_len, &tables);
            wall.likelihood_comp += t0.elapsed().as_secs_f64();
            times.likelihood_comp += comp_stats.sim_time;

            // ---- posterior ----
            let t0 = Instant::now();
            let mut rows = Vec::with_capacity(sw.num_sites());
            for site in 0..sw.num_sites() {
                let pos = window.start + site as u64;
                let ref_base = reference.seq[pos as usize];
                let known = priors.get(pos);
                let row = posterior(
                    &type_likely[site],
                    &sw.summaries[site],
                    ref_base,
                    known,
                    &cfg.params,
                );
                if row.is_variant() {
                    stats.snp_count += 1;
                }
                rows.push(row);
            }
            let dt = t0.elapsed().as_secs_f64();
            wall.posterior += dt;
            // Device model for posterior: the per-site arithmetic is cheap;
            // the cost is dominated by moving type_likely down and result
            // columns back (the paper attributes its modest posterior
            // speedup to exactly this transfer overhead).
            let mut post_stats = LaunchStats::default();
            dev.charge_d2h(&mut post_stats, tl_bytes + rows.len() as u64 * 32);
            times.posterior += dt.min(post_stats.sim_time * 4.0) + post_stats.sim_time;

            // ---- output ----
            let t0 = Instant::now();
            let table = SnpTable::new(reference.name.clone(), window.start, rows);
            let out_stats = if cfg.gpu_output {
                column::write_window_gpu(&dev, &mut compressed, &table)
            } else {
                column::write_window(&mut compressed, &table);
                LaunchStats::default()
            };
            let dt = t0.elapsed().as_secs_f64();
            wall.output += dt;
            times.output += if cfg.gpu_output {
                // Device columns overlap host columns; charge the slower
                // plus the (dominant) host write of the compressed bytes.
                out_stats.sim_time + dt * 0.25
            } else {
                dt
            };

            // ---- recycle ----
            let t0 = Instant::now();
            words.clear();
            let dt = t0.elapsed().as_secs_f64();
            wall.recycle += dt;
            times.recycle += (sw.words.len() as u64 * 4) as f64 / cfg.device.coalesced_bw;

            stats.num_sites += sw.num_sites() as u64;
            stats.num_obs += sw.words.len() as u64;
            stats.windows += 1;
            out_tables.push(table);
        }

        GsnpOutput {
            tables: out_tables,
            compressed,
            times,
            wall,
            stats,
        }
    }
}

/// GSNP_CPU (§VI-A): the same sparse algorithm — `base_word`, per-site
/// sort, `new_p_matrix` — executed sequentially on the host with no
/// simulated device. The paper reports it 4–5× faster than SOAPsnp on
/// likelihood; it is the middle series of Figs. 5 and 12.
pub struct GsnpCpuPipeline {
    config: GsnpConfig,
}

impl GsnpCpuPipeline {
    /// Create a CPU pipeline (the `device`, `variant`, and `gpu_output`
    /// fields of the config are ignored).
    pub fn new(config: GsnpConfig) -> Self {
        GsnpCpuPipeline { config }
    }

    /// Run over in-memory inputs. Produces results identical to
    /// [`GsnpPipeline::run`] and to SOAPsnp.
    pub fn run(&self, reads: &[AlignedRead], reference: &Reference, priors: &PriorMap) -> GsnpOutput {
        let cfg = &self.config;
        let mut times = ComponentTimes::default();
        let mut stats = PipelineStats::default();

        let t0 = Instant::now();
        let p_matrix = PMatrix::calibrate(reads, reference, &cfg.params);
        let new_p = NewPMatrix::precompute(&p_matrix);
        let log_table = LogTable::new();
        let temp_input = if cfg.compress_input {
            Some(input_codec::compress_reads(&reference.name, reads))
        } else {
            None
        };
        times.cal_p = t0.elapsed().as_secs_f64();
        stats.peak_host_bytes =
            p_matrix.size_bytes() as u64 + new_p.size_bytes() as u64;

        let t0 = Instant::now();
        let owned_reads;
        let read_source: &[AlignedRead] = match &temp_input {
            Some(bytes) => {
                owned_reads = input_codec::decompress_reads(bytes)
                    .expect("pipeline-internal temporary input must decode");
                &owned_reads
            }
            None => reads,
        };
        let mut reader = WindowReader::new(
            read_source.iter().cloned().map(Ok),
            reference.len() as u64,
            cfg.window_size,
        );
        times.read_site += t0.elapsed().as_secs_f64();

        let mut out_tables = Vec::new();
        let mut compressed = Vec::new();
        loop {
            let t0 = Instant::now();
            let window = match reader.next_window().expect("in-memory reads are valid") {
                Some(w) => w,
                None => break,
            };
            times.read_site += t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            let mut sw = SparseWindow::count(&window);
            times.counting += t0.elapsed().as_secs_f64();
            stats.peak_host_bytes = stats.peak_host_bytes.max(
                p_matrix.size_bytes() as u64
                    + new_p.size_bytes() as u64
                    + sw.size_bytes() as u64
                    + window.total_obs() as u64 * 8,
            );

            let t0 = Instant::now();
            crate::likelihood::sort_sparse_cpu(&mut sw);
            times.likelihood_sort += t0.elapsed().as_secs_f64();

            let read_len = max_read_len(&sw);
            let t0 = Instant::now();
            let type_likely: Vec<_> = (0..sw.num_sites())
                .map(|s| {
                    crate::likelihood::likelihood_sparse_site(
                        sw.site_words(s),
                        read_len,
                        &new_p,
                        &log_table,
                    )
                })
                .collect();
            times.likelihood_comp += t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            let mut rows = Vec::with_capacity(sw.num_sites());
            for site in 0..sw.num_sites() {
                let pos = window.start + site as u64;
                let row = posterior(
                    &type_likely[site],
                    &sw.summaries[site],
                    reference.seq[pos as usize],
                    priors.get(pos),
                    &cfg.params,
                );
                if row.is_variant() {
                    stats.snp_count += 1;
                }
                rows.push(row);
            }
            times.posterior += t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            let table = SnpTable::new(reference.name.clone(), window.start, rows);
            column::write_window(&mut compressed, &table);
            times.output += t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            drop(sw); // sparse recycle: release the tiny word arrays
            times.recycle += t0.elapsed().as_secs_f64();

            stats.num_sites += window.len() as u64;
            stats.num_obs += window.total_obs() as u64;
            stats.windows += 1;
            out_tables.push(table);
        }

        GsnpOutput {
            tables: out_tables,
            compressed,
            times,
            wall: times,
            stats,
        }
    }
}

fn max_read_len(sw: &SparseWindow) -> usize {
    // The coordinate field bounds the read length; derive the per-window
    // maximum so dep_count arrays are sized tightly.
    let mut max_coord = 0u8;
    for &w in &sw.words {
        let (_, _, coord, _) = crate::baseword::unpack(w);
        max_coord = max_coord.max(coord);
    }
    usize::from(max_coord) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqio::synth::{Dataset, SynthConfig};

    fn run_tiny(seed: u64, cfg: GsnpConfig) -> (Dataset, GsnpOutput) {
        let d = Dataset::generate(SynthConfig::tiny(seed));
        let out = GsnpPipeline::new(cfg).run(&d.reads, &d.reference, &d.priors);
        (d, out)
    }

    fn tiny_cfg() -> GsnpConfig {
        GsnpConfig {
            window_size: 1_000,
            ..Default::default()
        }
    }

    #[test]
    fn processes_every_site_in_windows() {
        let (d, out) = run_tiny(61, tiny_cfg());
        assert_eq!(out.stats.num_sites, d.config.num_sites);
        assert_eq!(out.stats.windows, 5); // 5000 sites / 1000
        assert_eq!(
            out.tables.iter().map(|t| t.len() as u64).sum::<u64>(),
            d.config.num_sites
        );
        // Windows tile the chromosome.
        for (i, t) in out.tables.iter().enumerate() {
            assert_eq!(t.start_pos, i as u64 * 1_000);
        }
    }

    #[test]
    fn detects_planted_snps() {
        // Higher SNP rate than `tiny` for statistical power.
        let mut cfg = SynthConfig::tiny(62);
        cfg.num_sites = 20_000;
        cfg.snp_rate = 5e-3;
        let d = Dataset::generate(cfg);
        let out = GsnpPipeline::new(tiny_cfg()).run(&d.reads, &d.reference, &d.priors);
        let rows = out.all_rows();
        let mut hits = 0usize;
        let mut covered = 0usize;
        for t in &d.truth {
            let row = &rows[t.pos as usize];
            if row.depth >= 6 {
                covered += 1;
                if row.is_variant() {
                    hits += 1;
                }
            }
        }
        assert!(covered >= 20, "expected well-covered truth sites, got {covered}");
        let recall = hits as f64 / covered as f64;
        assert!(
            recall > 0.8,
            "recall {recall:.2} over {covered} covered truth sites"
        );
    }

    #[test]
    fn few_false_positives_at_high_quality() {
        let (d, out) = run_tiny(63, tiny_cfg());
        let truth: std::collections::HashSet<u64> = d.truth.iter().map(|t| t.pos).collect();
        let rows = out.all_rows();
        let fp = rows
            .iter()
            .enumerate()
            .filter(|(pos, r)| r.is_variant() && r.quality >= 20 && !truth.contains(&(*pos as u64)))
            .count();
        let calls = rows
            .iter()
            .filter(|r| r.is_variant() && r.quality >= 20)
            .count();
        assert!(calls > 0);
        let fdr = fp as f64 / calls as f64;
        assert!(fdr < 0.1, "false-discovery rate {fdr:.3} ({fp}/{calls})");
    }

    #[test]
    fn compressed_output_roundtrips() {
        let (_, out) = run_tiny(64, tiny_cfg());
        let windows: Vec<SnpTable> = column::WindowStream::new(&out.compressed)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(windows, out.tables);
    }

    #[test]
    fn run_is_deterministic() {
        let d = Dataset::generate(SynthConfig::tiny(65));
        let a = GsnpPipeline::new(tiny_cfg()).run(&d.reads, &d.reference, &d.priors);
        let b = GsnpPipeline::new(tiny_cfg()).run(&d.reads, &d.reference, &d.priors);
        assert_eq!(a.tables, b.tables);
        assert_eq!(a.compressed, b.compressed);
    }

    #[test]
    fn window_size_does_not_change_results() {
        let d = Dataset::generate(SynthConfig::tiny(66));
        let small = GsnpPipeline::new(GsnpConfig {
            window_size: 333,
            ..Default::default()
        })
        .run(&d.reads, &d.reference, &d.priors);
        let large = GsnpPipeline::new(GsnpConfig {
            window_size: 10_000,
            ..Default::default()
        })
        .run(&d.reads, &d.reference, &d.priors);
        assert_eq!(small.all_rows(), large.all_rows());
    }

    #[test]
    fn kernel_variants_do_not_change_results() {
        let d = Dataset::generate(SynthConfig::tiny(67));
        let rows: Vec<Vec<SnpRow>> = KernelVariant::ALL
            .iter()
            .map(|&variant| {
                GsnpPipeline::new(GsnpConfig {
                    window_size: 1_000,
                    variant,
                    ..Default::default()
                })
                .run(&d.reads, &d.reference, &d.priors)
                .all_rows()
            })
            .collect();
        for r in &rows[1..] {
            assert_eq!(r, &rows[0]);
        }
    }

    #[test]
    fn input_compression_does_not_change_results() {
        let d = Dataset::generate(SynthConfig::tiny(68));
        let with = GsnpPipeline::new(tiny_cfg()).run(&d.reads, &d.reference, &d.priors);
        let without = GsnpPipeline::new(GsnpConfig {
            compress_input: false,
            ..tiny_cfg()
        })
        .run(&d.reads, &d.reference, &d.priors);
        assert_eq!(with.all_rows(), without.all_rows());
    }

    #[test]
    fn gpu_output_is_byte_identical_to_cpu_output() {
        let d = Dataset::generate(SynthConfig::tiny(69));
        let gpu = GsnpPipeline::new(tiny_cfg()).run(&d.reads, &d.reference, &d.priors);
        let cpu = GsnpPipeline::new(GsnpConfig {
            gpu_output: false,
            ..tiny_cfg()
        })
        .run(&d.reads, &d.reference, &d.priors);
        assert_eq!(gpu.compressed, cpu.compressed);
    }

    #[test]
    fn cpu_pipeline_matches_device_pipeline_bitwise() {
        let d = Dataset::generate(SynthConfig::tiny(71));
        let dev_out = GsnpPipeline::new(tiny_cfg()).run(&d.reads, &d.reference, &d.priors);
        let cpu_out = GsnpCpuPipeline::new(GsnpConfig {
            window_size: 777, // different windowing must not matter
            ..Default::default()
        })
        .run(&d.reads, &d.reference, &d.priors);
        assert_eq!(dev_out.all_rows(), cpu_out.all_rows());
    }

    #[test]
    fn times_and_stats_are_populated() {
        let (_, out) = run_tiny(70, tiny_cfg());
        assert!(out.times.total() > 0.0);
        assert!(out.wall.total() > 0.0);
        assert!(out.times.cal_p > 0.0);
        assert!(out.times.likelihood() > 0.0);
        assert!(out.stats.peak_device_bytes > 0);
        assert!(out.stats.num_obs > 0);
    }
}
